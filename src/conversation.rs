//! A conversational NL2VIS session (the paper's §6.2 future-work
//! direction): the first utterance creates a visualization through the full
//! pipeline; later utterances are interpreted as *follow-up revisions*
//! ("make it a pie", "only the BOS team", "sort by the value descending")
//! when they parse as such, and as fresh requests otherwise.

use crate::pipeline::{Pipeline, PipelineError, Visualization};
use nl2vis_data::Database;
use nl2vis_llm::followup::parse_follow_up;
use nl2vis_llm::recover::RecoveredSchema;
use nl2vis_query::ast::VqlQuery;
use nl2vis_query::execute;

/// How a conversation turn was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnKind {
    /// A fresh request through the full pipeline.
    Fresh,
    /// A revision of the previous query.
    FollowUp,
    /// An undo of the previous turn.
    Undo,
}

/// One completed conversation turn.
#[derive(Debug, Clone)]
pub struct Turn {
    /// What the user said.
    pub utterance: String,
    /// How it was handled.
    pub kind: TurnKind,
    /// The resulting visualization.
    pub visualization: Visualization,
}

/// A multi-turn session over one database.
pub struct Conversation<'a> {
    pipeline: &'a Pipeline,
    db: &'a Database,
    schema: RecoveredSchema,
    history: Vec<Turn>,
}

impl<'a> Conversation<'a> {
    /// Opens a session.
    pub fn new(pipeline: &'a Pipeline, db: &'a Database) -> Conversation<'a> {
        Conversation {
            pipeline,
            db,
            schema: RecoveredSchema::from_database(db),
            history: Vec::new(),
        }
    }

    /// The current (latest) query, if any turn succeeded.
    pub fn current(&self) -> Option<&VqlQuery> {
        self.history.last().map(|t| &t.visualization.vql)
    }

    /// All completed turns.
    pub fn history(&self) -> &[Turn] {
        &self.history
    }

    /// Handles one utterance: follow-up revision when the previous chart
    /// exists and the utterance parses as one, "undo" to pop a turn, a fresh
    /// pipeline request otherwise.
    pub fn say(&mut self, utterance: &str) -> Result<&Turn, PipelineError> {
        let trimmed = utterance.trim();
        if trimmed.eq_ignore_ascii_case("undo") && self.history.len() >= 2 {
            self.history.pop();
            let prev = self.history.last_mut().expect("history non-empty");
            prev.kind = TurnKind::Undo;
            return Ok(self.history.last().expect("history non-empty"));
        }

        if let Some(prev) = self.history.last() {
            let know_all = |_: &str| true;
            let edits = parse_follow_up(trimmed, &prev.visualization.vql, &self.schema, &know_all);
            if !edits.is_empty() {
                let mut revised = prev.visualization.vql.clone();
                for e in &edits {
                    revised = e.apply(&revised);
                }
                let data = execute(&revised, self.db)?;
                self.history.push(Turn {
                    utterance: trimmed.to_string(),
                    kind: TurnKind::FollowUp,
                    visualization: Visualization {
                        vql: revised,
                        data,
                        completion: format!("[follow-up: {} edit(s)]", edits.len()),
                    },
                });
                return Ok(self.history.last().expect("just pushed"));
            }
        }

        let vis = self.pipeline.run(self.db, trimmed)?;
        self.history.push(Turn {
            utterance: trimmed.to_string(),
            kind: TurnKind::Fresh,
            visualization: vis,
        });
        Ok(self.history.last().expect("just pushed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType::*;
    use nl2vis_data::Value;
    use nl2vis_query::ast::{ChartType, Predicate};

    fn db() -> Database {
        let mut s = DatabaseSchema::new("club", "sports");
        s.tables.push(TableDef::new(
            "technician",
            vec![
                ColumnDef::new("name", Text),
                ColumnDef::new("team", Text),
                ColumnDef::new("age", Int),
            ],
        ));
        let mut d = Database::new(s);
        for (n, t, a) in [
            ("ann", "NYY", 36),
            ("bob", "BOS", 33),
            ("cat", "BOS", 29),
            ("dan", "LAD", 41),
        ] {
            d.insert("technician", vec![n.into(), t.into(), Value::Int(a)])
                .unwrap();
        }
        d
    }

    #[test]
    fn multi_turn_session() {
        let d = db();
        let pipeline = Pipeline::new("gpt-4", 1);
        let mut session = Conversation::new(&pipeline, &d);

        let t1 = session
            .say("Show a bar chart of the number of technicians for each team.")
            .unwrap();
        assert_eq!(t1.kind, TurnKind::Fresh);
        assert_eq!(t1.visualization.vql.chart, ChartType::Bar);

        let t2 = session.say("make it a pie chart").unwrap();
        assert_eq!(t2.kind, TurnKind::FollowUp);
        assert_eq!(t2.visualization.vql.chart, ChartType::Pie);

        let t3 = session.say("only technicians with age over 30").unwrap();
        assert_eq!(t3.kind, TurnKind::FollowUp);
        assert!(matches!(
            t3.visualization.vql.filter,
            Some(Predicate::Cmp { .. })
        ));
        assert!(t3.visualization.data.rows.len() <= 3);

        // Undo pops back to the pie without the filter.
        let t4 = session.say("undo").unwrap();
        assert!(t4.visualization.vql.filter.is_none());
        assert_eq!(session.history().len(), 2);
    }

    #[test]
    fn fresh_request_after_follow_ups() {
        let d = db();
        let pipeline = Pipeline::new("gpt-4", 1);
        let mut session = Conversation::new(&pipeline, &d);
        session
            .say("Show a bar chart of the number of technicians for each team.")
            .unwrap();
        session.say("make it a pie chart").unwrap();
        let t = session
            .say("Display a scatter plot of age against age in the technician table.")
            .unwrap();
        assert_eq!(t.kind, TurnKind::Fresh);
    }
}
