//! `nl2vis` — an interactive NL2VIS console, the command-line interface of
//! the paper's user study (§5.2.2): pick a database, type natural-language
//! requests, get charts; follow-ups revise the previous chart.
//!
//! ```text
//! cargo run --release
//! nl2vis> :dbs                       # list generated databases
//! nl2vis> :db baseball_club          # choose one
//! nl2vis> :schema                    # show its tables
//! nl2vis> Show a bar chart of the number of technicians for each team.
//! nl2vis> only the "BOS" team        # follow-up revision
//! nl2vis> :vql                       # show the current query
//! nl2vis> :vega                      # show the Vega-Lite spec
//! nl2vis> :model gpt-4               # switch models
//! nl2vis> :quit
//! ```

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::prelude::*;
use std::io::{BufRead, Write as _};

fn main() {
    println!("nl2vis — natural language to visualization (simulated LLM backend)");
    println!("generating benchmark databases ...");
    let corpus = Corpus::build(&CorpusConfig::small(20240115));
    let names: Vec<String> = corpus
        .catalog
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut db_name = names.first().cloned().expect("catalog non-empty");
    let mut model = "text-davinci-003".to_string();
    let mut pipeline = Pipeline::new(&model, 7);
    println!(
        "{} databases ready; current: `{db_name}` (`:dbs` to list, `:help` for commands)\n",
        names.len()
    );

    let stdin = std::io::stdin();
    let mut conversation_vql: Vec<nl2vis::query::ast::VqlQuery> = Vec::new();
    loop {
        print!("nl2vis> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut parts = cmd.split_whitespace();
            match parts.next().unwrap_or("") {
                "quit" | "q" | "exit" => break,
                "help" => {
                    println!(
                        ":dbs | :db <name> | :schema | :model <name> | :vql | :sql | :vega | :svg <path> | :metrics | :reset | :quit"
                    );
                }
                "metrics" => {
                    print!(
                        "{}",
                        nl2vis::obs::report::render_summary(nl2vis::obs::global())
                    );
                }
                "dbs" => {
                    for n in &names {
                        println!("  {n}{}", if *n == db_name { "  (current)" } else { "" });
                    }
                }
                "db" => match parts.next() {
                    Some(n) if names.iter().any(|x| x == n) => {
                        db_name = n.to_string();
                        conversation_vql.clear();
                        println!("switched to `{db_name}`");
                    }
                    Some(n) => println!("unknown database `{n}` (see :dbs)"),
                    None => println!("usage: :db <name>"),
                },
                "schema" => {
                    let db = corpus.catalog.database(&db_name).unwrap();
                    print!("{}", PromptFormat::TableColumn.serialize(db, ""));
                    println!();
                }
                "model" => match parts.next() {
                    Some(m) => {
                        model = m.to_string();
                        pipeline = Pipeline::new(&model, 7);
                        println!("model: {}", pipeline.model());
                    }
                    None => println!("current model: {}", pipeline.model()),
                },
                "vql" => match conversation_vql.last() {
                    Some(q) => println!("{}", nl2vis::query::printer::print(q)),
                    None => println!("no chart yet"),
                },
                "sql" => match conversation_vql.last() {
                    Some(q) => println!("{}", nl2vis::query::to_sql(q)),
                    None => println!("no chart yet"),
                },
                "vega" => match conversation_vql.last() {
                    Some(q) => {
                        let db = corpus.catalog.database(&db_name).unwrap();
                        match nl2vis::query::execute(q, db) {
                            Ok(r) => println!("{}", nl2vis::vega::to_vega_lite(q, &r).to_pretty()),
                            Err(e) => println!("execution error: {e}"),
                        }
                    }
                    None => println!("no chart yet"),
                },
                "svg" => match (conversation_vql.last(), parts.next()) {
                    (Some(q), Some(path)) => {
                        let db = corpus.catalog.database(&db_name).unwrap();
                        match nl2vis::query::execute(q, db) {
                            Ok(r) => {
                                let svg = nl2vis::vega::svg::render_svg(&r);
                                match std::fs::write(path, svg) {
                                    Ok(()) => println!("wrote {path}"),
                                    Err(e) => println!("write failed: {e}"),
                                }
                            }
                            Err(e) => println!("execution error: {e}"),
                        }
                    }
                    (None, _) => println!("no chart yet"),
                    (_, None) => println!("usage: :svg <path>"),
                },
                "reset" => {
                    conversation_vql.clear();
                    println!("conversation reset");
                }
                other => println!("unknown command `:{other}` (try :help)"),
            }
            continue;
        }

        // A natural-language turn: follow-up when possible, fresh otherwise.
        let db = corpus.catalog.database(&db_name).unwrap();
        let mut session = Conversation::new(&pipeline, db);
        // Rebuild session state from the stored queries (cheap; keeps the
        // borrow of `pipeline` scoped to this turn so `:model` can swap it).
        let result = if let Some(prev) = conversation_vql.last() {
            let schema = nl2vis::llm::recover::RecoveredSchema::from_database(db);
            let know_all = |_: &str| true;
            let edits = nl2vis::llm::followup::parse_follow_up(line, prev, &schema, &know_all);
            if edits.is_empty() {
                session.say(line).map(|t| t.visualization.clone())
            } else {
                let mut revised = prev.clone();
                for e in &edits {
                    revised = e.apply(&revised);
                }
                nl2vis::query::execute(&revised, db)
                    .map(|data| Visualization {
                        vql: revised,
                        data,
                        completion: format!("[follow-up: {} edit(s)]", edits.len()),
                    })
                    .map_err(PipelineError::from)
            }
        } else {
            session.say(line).map(|t| t.visualization.clone())
        };

        match result {
            Ok(vis) => {
                conversation_vql.push(vis.vql.clone());
                println!("VQL: {}", nl2vis::query::printer::print(&vis.vql));
                println!("{}", vis.ascii());
            }
            Err(e) => println!("could not visualize: {e}"),
        }
    }
    println!("bye");
}
