//! The end-to-end NL2VIS pipeline of the paper's Figure 3: natural language
//! plus a grounded table goes in; prompt construction, (simulated) LLM
//! completion, VQL parsing, execution, and Vega-Lite / chart rendering come
//! out.

use nl2vis_cache::{CacheLayer, Cached, CachedLlmClient, CompletionCache};
use nl2vis_corpus::Example;
use nl2vis_data::{Database, Json};
use nl2vis_llm::{
    extract_vql, GenOptions, LlmClient, ModelProfile, ServiceClient, SimLlm, TransportError,
};
use nl2vis_obs as obs;
use nl2vis_prompt::{build_prompt, PromptOptions};
use nl2vis_query::ast::VqlQuery;
use nl2vis_query::exec::ResultSet;
use nl2vis_query::{execute, parse, QueryError};
use nl2vis_service::{
    stack_of, validate_stack, CompletionService, Layer, Metrics, MetricsLayer, Retry, RetryLayer,
    RetryPolicy, TieredService, Trace, TraceLayer,
};
use nl2vis_vega::{ascii, spec, svg};

/// Errors the pipeline can surface.
#[derive(Debug)]
pub enum PipelineError {
    /// The request never reached the model: the transport failed (refused
    /// connect, deadline, 5xx, dropped socket). Distinct from [`NoQuery`]
    /// by construction — the model said nothing, so nothing is attributed
    /// to it.
    ///
    /// [`NoQuery`]: PipelineError::NoQuery
    Transport(TransportError),
    /// The model produced no parseable VQL.
    NoQuery {
        /// Raw model output, for inspection.
        completion: String,
    },
    /// The generated query failed to parse or execute.
    Query(QueryError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Transport(e) => write!(f, "{e}"),
            PipelineError::NoQuery { completion } => {
                write!(f, "model produced no VQL: {completion:.80}")
            }
            PipelineError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<QueryError> for PipelineError {
    fn from(e: QueryError) -> PipelineError {
        PipelineError::Query(e)
    }
}

/// A completed visualization: the query, its executed data, and renderers.
#[derive(Debug, Clone)]
pub struct Visualization {
    /// The generated VQL query.
    pub vql: VqlQuery,
    /// Executed result data.
    pub data: ResultSet,
    /// The raw model completion.
    pub completion: String,
}

impl Visualization {
    /// The Vega-Lite v5 specification with inline data.
    pub fn vega_lite(&self) -> Json {
        spec::to_vega_lite(&self.vql, &self.data)
    }

    /// A standalone SVG document.
    pub fn svg(&self) -> String {
        svg::render_svg(&self.data)
    }

    /// A terminal rendering.
    pub fn ascii(&self) -> String {
        ascii::render_ascii(&self.data)
    }
}

/// Typestate markers for [`StackBuilder`]: which layer is currently
/// outermost, and which layers may still be applied on top of it.
///
/// The canonical serving order, outermost first, is
/// `Trace(Metrics(Cache(Retry(leaf))))`. Each marker names a position in
/// that order; the gating traits ([`BelowCache`](stage::BelowCache),
/// [`BelowMetrics`](stage::BelowMetrics)) admit exactly the positions a
/// layer may legally wrap, so a misordered stack — a cache inside retry,
/// metrics under the cache — is a *compile error*, not a runtime surprise.
pub mod stage {
    /// Nothing but the leaf service so far.
    pub enum AtLeaf {}
    /// A retry layer is outermost.
    pub enum AtRetry {}
    /// A cache layer is outermost.
    pub enum AtCache {}
    /// A metrics layer is outermost.
    pub enum AtMetrics {}
    /// A trace layer is outermost — the stack is complete.
    pub enum AtTrace {}
    /// A tier router is outermost. Deliberately *not* [`BelowCache`]: a
    /// cache outside the router would collapse the tiers' tier-qualified
    /// keyspaces into one — per-tier caches live inside each tier.
    pub enum AtTier {}
    /// A retry layer wraps a tier router (the only legal retry/tier
    /// nesting: a retried attempt re-enters tier selection). Also not
    /// [`BelowCache`], for the same reason as [`AtTier`].
    pub enum AtTierRetry {}

    /// Positions a cache layer may wrap: the leaf or a retry layer. A
    /// cache *inside* retry would memoize per-attempt state.
    pub trait BelowCache {}
    impl BelowCache for AtLeaf {}
    impl BelowCache for AtRetry {}

    /// Positions a metrics layer may wrap: anything below trace. Metrics
    /// sits outside the cache so attribution covers cached traffic too.
    pub trait BelowMetrics {}
    impl BelowMetrics for AtLeaf {}
    impl BelowMetrics for AtRetry {}
    impl BelowMetrics for AtCache {}
    impl BelowMetrics for AtTier {}
    impl BelowMetrics for AtTierRetry {}
}

/// A compile-time-ordered builder for the layered completion stack.
///
/// Layers are applied bottom-up — each call wraps the current stack — and
/// the typestate parameter only offers the layers that are still legal at
/// the current position, so the canonical order
/// `Trace(Metrics(Cache(Retry(leaf))))` is the *only* order that
/// compiles (every layer is optional; skipping one is fine):
///
/// ```
/// use nl2vis::pipeline::StackBuilder;
/// use nl2vis::llm::{ModelProfile, SimLlm};
/// use nl2vis_service::{stack_of, RetryPolicy};
///
/// let stack = StackBuilder::over(SimLlm::new(ModelProfile::gpt_4(), 7))
///     .retry(RetryPolicy::default())
///     .cache(256)
///     .metrics()
///     .trace()
///     .build();
/// assert_eq!(stack_of(&stack), vec!["trace", "metrics", "cache", "retry", "sim"]);
/// ```
///
/// [`build`](StackBuilder::build) additionally debug-asserts
/// [`validate_stack`] over the composed stack's runtime tags, which
/// catches the one hole the types cannot: a "leaf" passed to
/// [`over`](StackBuilder::over) that is itself already a wrapped stack.
pub struct StackBuilder<S, Stage = stage::AtLeaf> {
    service: S,
    _stage: std::marker::PhantomData<Stage>,
}

impl<S: CompletionService> StackBuilder<S, stage::AtLeaf> {
    /// Starts a stack over a leaf service (the HTTP client, the simulated
    /// model, or a `service_fn` test double).
    pub fn over(leaf: S) -> StackBuilder<S, stage::AtLeaf> {
        StackBuilder {
            service: leaf,
            _stage: std::marker::PhantomData,
        }
    }

    /// Adds bounded retry with deterministic backoff (and 429
    /// `Retry-After` honoring) directly around the leaf.
    pub fn retry(self, policy: RetryPolicy) -> StackBuilder<Retry<S>, stage::AtRetry> {
        StackBuilder {
            service: RetryLayer::new(policy).layer(self.service),
            _stage: std::marker::PhantomData,
        }
    }
}

impl StackBuilder<TieredService, stage::AtTier> {
    /// Starts a stack over a tier router (the output of
    /// [`nl2vis_service::RouteLayer::build`]). The router occupies exactly
    /// one position in the canonical order: above per-tier caches, below
    /// retry/metrics/trace — so this builder offers
    /// [`retry`](StackBuilder::<TieredService, stage::AtTier>::retry),
    /// [`metrics`](StackBuilder::metrics) and [`trace`](StackBuilder::trace),
    /// but *not* `cache`:
    ///
    /// ```
    /// use nl2vis::pipeline::StackBuilder;
    /// use nl2vis_service::{service_fn, stack_of, RetryPolicy, RouteLayer, RoutePolicy};
    ///
    /// let tiers = RouteLayer::new(RoutePolicy::CheapFirst)
    ///     .tier("only", 1, service_fn("m", |_, _| Ok("x".into())))
    ///     .build()
    ///     .unwrap();
    /// let stack = StackBuilder::over_tiers(tiers)
    ///     .retry(RetryPolicy::no_retry())
    ///     .metrics()
    ///     .trace()
    ///     .build();
    /// assert_eq!(stack_of(&stack), vec!["trace", "metrics", "retry", "tier"]);
    /// ```
    ///
    /// A cache outside the router is a *compile error* (the tier stages
    /// are not [`stage::BelowCache`]):
    ///
    /// ```compile_fail
    /// use nl2vis::pipeline::StackBuilder;
    /// use nl2vis_service::{service_fn, RouteLayer, RoutePolicy};
    ///
    /// let tiers = RouteLayer::new(RoutePolicy::CheapFirst)
    ///     .tier("only", 1, service_fn("m", |_, _| Ok("x".into())))
    ///     .build()
    ///     .unwrap();
    /// let _ = StackBuilder::over_tiers(tiers).cache(16); // no such method here
    /// ```
    ///
    /// And so is a cache above the retry that wraps the router:
    ///
    /// ```compile_fail
    /// use nl2vis::pipeline::StackBuilder;
    /// use nl2vis_service::{service_fn, RetryPolicy, RouteLayer, RoutePolicy};
    ///
    /// let tiers = RouteLayer::new(RoutePolicy::CheapFirst)
    ///     .tier("only", 1, service_fn("m", |_, _| Ok("x".into())))
    ///     .build()
    ///     .unwrap();
    /// let _ = StackBuilder::over_tiers(tiers)
    ///     .retry(RetryPolicy::no_retry())
    ///     .cache(16);
    /// ```
    pub fn over_tiers(tiers: TieredService) -> StackBuilder<TieredService, stage::AtTier> {
        StackBuilder {
            service: tiers,
            _stage: std::marker::PhantomData,
        }
    }

    /// Adds bounded retry around the tier router: a retried attempt
    /// re-enters tier selection, so transient failures can fail over to a
    /// stronger tier. (Validation rejections carry status 422, which the
    /// standard policy treats as non-retryable — the router already
    /// escalated those.)
    pub fn retry(
        self,
        policy: RetryPolicy,
    ) -> StackBuilder<Retry<TieredService>, stage::AtTierRetry> {
        StackBuilder {
            service: RetryLayer::new(policy).layer(self.service),
            _stage: std::marker::PhantomData,
        }
    }
}

impl<S: CompletionService, Stage: stage::BelowCache> StackBuilder<S, Stage> {
    /// Adds a fresh in-memory completion cache of `capacity` entries.
    /// Only full-request successes are memoized — the cache always sits
    /// outside retry, a constraint this method's receiver type enforces.
    pub fn cache(self, capacity: usize) -> StackBuilder<Cached<S>, stage::AtCache> {
        self.shared_cache(std::sync::Arc::new(CompletionCache::in_memory(capacity)))
    }

    /// Like [`cache`](StackBuilder::cache), over a caller-owned cache —
    /// share one across stacks or keep the handle for
    /// [`nl2vis_cache::CacheStats`].
    pub fn shared_cache(
        self,
        cache: std::sync::Arc<CompletionCache>,
    ) -> StackBuilder<Cached<S>, stage::AtCache> {
        StackBuilder {
            service: CacheLayer::with_cache(cache).layer(self.service),
            _stage: std::marker::PhantomData,
        }
    }
}

impl<S: CompletionService, Stage: stage::BelowMetrics> StackBuilder<S, Stage> {
    /// Adds transport-failure attribution counters under the standard
    /// `llm` component.
    pub fn metrics(self) -> StackBuilder<Metrics<S>, stage::AtMetrics> {
        StackBuilder {
            service: MetricsLayer::default().layer(self.service),
            _stage: std::marker::PhantomData,
        }
    }
}

impl<S: CompletionService, Stage> StackBuilder<S, Stage> {
    /// Adds the outermost request span (`llm.request`), tying every inner
    /// layer's annotations and child spans into one trace.
    pub fn trace(self) -> StackBuilder<Trace<S>, stage::AtTrace> {
        StackBuilder {
            service: TraceLayer::request().layer(self.service),
            _stage: std::marker::PhantomData,
        }
    }

    /// Finishes the stack. In debug builds the composed stack's runtime
    /// tags are checked against [`validate_stack`] — the backstop for
    /// pre-wrapped "leaves" the typestate cannot see through.
    pub fn build(self) -> S {
        let service = self.service;
        if cfg!(debug_assertions) {
            if let Err(violation) = validate_stack(&stack_of(&service)) {
                panic!("StackBuilder composed an invalid stack: {violation}");
            }
        }
        service
    }

    /// Finishes the stack and adapts it to the [`LlmClient`] trait, ready
    /// for [`Pipeline::with_client`] call sites.
    pub fn build_client(self) -> ServiceClient<S> {
        ServiceClient::new(self.build())
    }
}

/// The end-to-end pipeline over a pluggable model.
pub struct Pipeline {
    client: Box<dyn LlmClient + Send + Sync>,
    /// Prompt construction options (format, budget, CoT, persona).
    pub options: PromptOptions,
}

impl Pipeline {
    /// Builds a pipeline over a simulated model by API name (`"gpt-4"`,
    /// `"text-davinci-003"`, ...). Unknown names fall back to
    /// `text-davinci-003`, the paper's workhorse.
    pub fn new(model: &str, seed: u64) -> Pipeline {
        let profile = ModelProfile::by_name(model).unwrap_or_else(ModelProfile::davinci_003);
        Pipeline::with_client(Box::new(SimLlm::new(profile, seed)))
    }

    /// Builds a pipeline over any [`LlmClient`] (e.g. the HTTP client).
    pub fn with_client(client: Box<dyn LlmClient + Send + Sync>) -> Pipeline {
        Pipeline {
            client,
            options: PromptOptions::default(),
        }
    }

    /// Builds a pipeline over a layered [`CompletionService`] stack —
    /// typically the output of [`StackBuilder::build`].
    pub fn with_service<S>(service: S) -> Pipeline
    where
        S: CompletionService + Send + Sync + 'static,
    {
        Pipeline::with_client(Box::new(ServiceClient::new(service)))
    }

    /// Wraps the pipeline's model client in a bounded completion cache:
    /// repeated identical `(model, options, prompt)` requests are served
    /// from memory, concurrent identical misses collapse into one upstream
    /// call, and transport failures are never cached. The cache sits
    /// *outside* any retry layer already in the client, so only
    /// completions that survived the full transport path are stored.
    pub fn with_completion_cache(self, capacity: usize) -> Pipeline {
        self.with_shared_cache(std::sync::Arc::new(CompletionCache::in_memory(capacity)))
    }

    /// Like [`Pipeline::with_completion_cache`], but over a caller-owned
    /// cache — share one cache across pipelines (or keep the handle to
    /// read [`nl2vis_cache::CacheStats`] afterwards).
    pub fn with_shared_cache(self, cache: std::sync::Arc<CompletionCache>) -> Pipeline {
        Pipeline {
            client: Box::new(CachedLlmClient::with_cache(self.client, cache)),
            options: self.options,
        }
    }

    /// The backing model's name.
    pub fn model(&self) -> &str {
        self.client.name()
    }

    /// Runs the zero-shot pipeline: question in, rendered visualization out.
    pub fn run(&self, db: &Database, question: &str) -> Result<Visualization, PipelineError> {
        self.run_with_demos(db, question, &[], |_| unreachable!("no demonstrations"))
    }

    /// Runs the pipeline with in-context demonstrations (each resolved to
    /// its own database by `db_of`).
    ///
    /// Every run is one trace: a `pipeline.run` root span with child spans
    /// for the five stages (`prompt_build`, `completion`, `extract`,
    /// `parse`, `execute`), plus per-error-kind counters
    /// (`pipeline.error.{no_query,parse,execute}`). The root span is
    /// annotated with the model name and, on success, `outcome=ok`; error
    /// paths attach their error note to the trace in the flight recorder.
    pub fn run_with_demos<'a, F>(
        &self,
        db: &Database,
        question: &str,
        demos: &[&'a Example],
        db_of: F,
    ) -> Result<Visualization, PipelineError>
    where
        F: Fn(&'a Example) -> &'a Database,
    {
        let trace = obs::span!("pipeline.run");
        trace.annotate("model", self.client.name());
        obs::count("pipeline.runs_total", 1);
        let prompt = {
            let _s = obs::span!("pipeline.prompt_build");
            build_prompt(&self.options, db, question, demos, db_of)
        };
        let completion = {
            let _s = obs::span!("pipeline.completion");
            self.client
                .try_complete_with(&prompt.text, &GenOptions::default())
        };
        let completion = completion.map_err(|e| {
            obs::error("pipeline", "transport", &e.to_string());
            PipelineError::Transport(e)
        })?;
        let vql_text = {
            let _s = obs::span!("pipeline.extract");
            extract_vql(&completion)
        };
        let Some(vql_text) = vql_text else {
            obs::error("pipeline", "no_query", &completion);
            return Err(PipelineError::NoQuery { completion });
        };
        let vql = {
            let _s = obs::span!("pipeline.parse");
            parse(vql_text)
        }
        .map_err(|e| {
            obs::error("pipeline", "parse", &e.to_string());
            PipelineError::Query(e)
        })?;
        let data = {
            let _s = obs::span!("pipeline.execute");
            execute(&vql, db)
        }
        .map_err(|e| {
            obs::error("pipeline", "execute", &e.to_string());
            PipelineError::Query(e)
        })?;
        obs::count("pipeline.success_total", 1);
        trace.annotate("outcome", "ok");
        Ok(Visualization {
            vql,
            data,
            completion,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType::*;
    use nl2vis_data::Value;

    fn db() -> Database {
        let mut s = DatabaseSchema::new("shop", "retail");
        s.tables.push(TableDef::new(
            "sales",
            vec![
                ColumnDef::new("region", Text),
                ColumnDef::new("amount", Int),
            ],
        ));
        let mut d = Database::new(s);
        for (r, a) in [("east", 10i64), ("west", 25), ("east", 5), ("north", 40)] {
            d.insert("sales", vec![r.into(), Value::Int(a)]).unwrap();
        }
        d
    }

    #[test]
    fn zero_shot_pipeline_end_to_end() {
        let p = Pipeline::new("gpt-4", 7);
        let vis = p
            .run(
                &db(),
                "Show a bar chart of the total amount for each region.",
            )
            .expect("pipeline succeeds");
        assert!(!vis.data.rows.is_empty());
        assert!(vis.svg().starts_with("<svg"));
        assert!(vis.ascii().contains('█'));
        let spec = vis.vega_lite();
        assert_eq!(spec.get("mark").and_then(Json::as_str), Some("bar"));
    }

    #[test]
    fn unknown_model_falls_back() {
        let p = Pipeline::new("nonexistent-model", 1);
        assert_eq!(p.model(), "text-davinci-003");
    }

    #[test]
    fn pipeline_surfaces_model_failures() {
        // A question over an empty schema cannot be grounded.
        let s = DatabaseSchema::new("empty", "none");
        let d = Database::new(s);
        let p = Pipeline::new("gpt-4", 7);
        let errors_before = obs::global().counter("pipeline.errors_total").get();
        let out = p.run(&d, "Show a bar chart of things.");
        assert!(out.is_err());
        assert!(
            obs::global().counter("pipeline.errors_total").get() > errors_before,
            "a failed run must bump the pipeline error counter"
        );
    }

    /// A dead endpoint must surface as a typed transport error — counted
    /// under `pipeline.error.transport`, never scored as model output.
    #[test]
    fn transport_failure_is_typed_not_scoreable() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = nl2vis_llm::http::HttpLlmClient::new(addr, "gpt-4");
        let p = Pipeline::with_client(Box::new(client));
        let transport_before = obs::global().counter("pipeline.error.transport").get();
        match p.run(
            &db(),
            "Show a bar chart of the total amount for each region.",
        ) {
            Err(PipelineError::Transport(e)) => {
                assert!(e.attempts >= 1);
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
        assert_eq!(
            obs::global().counter("pipeline.error.transport").get(),
            transport_before + 1
        );
    }

    /// The typestate builder composes the canonical stack order and the
    /// result drives the pipeline end-to-end like any other client.
    #[test]
    fn stack_builder_composes_the_canonical_order() {
        let cache = std::sync::Arc::new(CompletionCache::in_memory(16));
        let stack = StackBuilder::over(SimLlm::new(ModelProfile::by_name("gpt-4").unwrap(), 7))
            .retry(RetryPolicy::no_retry())
            .shared_cache(std::sync::Arc::clone(&cache))
            .metrics()
            .trace()
            .build();
        assert_eq!(
            stack_of(&stack),
            vec!["trace", "metrics", "cache", "retry", "sim"]
        );

        let p = Pipeline::with_service(stack);
        assert_eq!(p.model(), "gpt-4");
        let q = "Show a bar chart of the total amount for each region.";
        p.run(&db(), q).expect("layered pipeline succeeds");
        p.run(&db(), q).expect("cached rerun succeeds");
        assert_eq!(cache.stats().hits, 1, "the repeat must hit the cache");
    }

    /// Layers are optional: a partial stack (no retry, no cache) still
    /// builds and keeps the leaf's model identity.
    #[test]
    fn stack_builder_allows_skipping_layers() {
        let stack = StackBuilder::over(SimLlm::new(ModelProfile::davinci_003(), 3))
            .metrics()
            .trace()
            .build();
        assert_eq!(stack_of(&stack), vec!["trace", "metrics", "sim"]);
        assert_eq!(stack.model(), "text-davinci-003");
    }

    /// The debug backstop: a "leaf" that is secretly a cached stack puts
    /// the cache inside the builder's retry layer — invisible to the
    /// typestate, caught by `build`'s `validate_stack` assertion.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cache sits inside retry")]
    fn stack_builder_rejects_prewrapped_cache_under_retry() {
        let hidden = CacheLayer::new(4).layer(SimLlm::new(ModelProfile::davinci_003(), 3));
        let _ = StackBuilder::over(hidden)
            .retry(RetryPolicy::no_retry())
            .build();
    }
    /// A tiered stack drives the pipeline end-to-end: the deliberately-bad
    /// cheap tier is validation-rejected, the strong tier answers, and the
    /// composed stack sits in the canonical position under retry/metrics.
    #[test]
    fn tiered_stack_drives_the_pipeline() {
        use nl2vis_service::{service_fn, RouteLayer, RoutePolicy, ValidateLayer};

        let tiers = RouteLayer::new(RoutePolicy::CheapFirst)
            .model("tiered")
            .tier(
                "cheap",
                1,
                ValidateLayer::new(nl2vis_service::VqlSyntaxValidator)
                    .layer(service_fn("bad", |_, _| Ok("I cannot answer.".into()))),
            )
            .tier(
                "strong",
                10,
                SimLlm::new(ModelProfile::by_name("gpt-4").unwrap(), 7),
            )
            .build()
            .unwrap();
        let stack = StackBuilder::over_tiers(tiers)
            .retry(RetryPolicy::no_retry())
            .metrics()
            .trace()
            .build();
        assert_eq!(stack_of(&stack), vec!["trace", "metrics", "retry", "tier"]);

        let p = Pipeline::with_service(stack);
        assert_eq!(p.model(), "tiered");
        let vis = p
            .run(
                &db(),
                "Show a bar chart of the total amount for each region.",
            )
            .expect("escalation recovers the strong tier's answer");
        assert!(!vis.data.rows.is_empty());
    }

    #[test]
    fn cached_pipeline_hits_on_repeat_questions() {
        let cache = std::sync::Arc::new(CompletionCache::in_memory(64));
        let p = Pipeline::new("gpt-4", 7).with_shared_cache(std::sync::Arc::clone(&cache));
        let q = "Show a bar chart of the total amount for each region.";
        let first = p.run(&db(), q).expect("pipeline succeeds");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);
        let second = p.run(&db(), q).expect("cached run succeeds");
        assert_eq!(cache.stats().hits, 1, "the repeat must be a cache hit");
        assert_eq!(first.completion, second.completion);
        assert!(first.data.same_data(&second.data));
    }

    /// The five stage spans of one request land in the JSONL sink, share
    /// the request's trace id, and carry non-negative durations.
    #[test]
    fn stage_spans_reach_the_jsonl_sink() {
        let sink = std::sync::Arc::new(obs::MemorySink::new());
        obs::set_sink(sink.clone());
        let p = Pipeline::new("gpt-4", 7);
        p.run(
            &db(),
            "Show a bar chart of the total amount for each region.",
        )
        .expect("pipeline succeeds");
        obs::disable_sink();

        let events: Vec<Json> = sink
            .lines()
            .iter()
            .map(|l| Json::parse(l).expect("sink lines are valid JSON"))
            .collect();
        // The trace of this request: the one owning the last
        // `pipeline.execute` close (other tests may run concurrently).
        let trace = events
            .iter()
            .rev()
            .find(|e| {
                e.get("event").and_then(Json::as_str) == Some("span_close")
                    && e.get("name").and_then(Json::as_str) == Some("pipeline.execute")
            })
            .and_then(|e| e.get("trace").and_then(Json::as_f64))
            .expect("an execute span closed");
        let closed: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("event").and_then(Json::as_str) == Some("span_close")
                    && e.get("trace").and_then(Json::as_f64) == Some(trace)
            })
            .collect();
        for stage in [
            "pipeline.prompt_build",
            "pipeline.completion",
            "pipeline.extract",
            "pipeline.parse",
            "pipeline.execute",
            "pipeline.run",
        ] {
            let span = closed
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(stage))
                .unwrap_or_else(|| panic!("stage span `{stage}` missing from trace"));
            let duration = span
                .get("duration_us")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("`{stage}` close lacks duration_us"));
            assert!(duration >= 0.0, "{stage} duration {duration}");
        }
        // Stage spans nest under the root span: same trace, parent set.
        let opens: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("event").and_then(Json::as_str) == Some("span_open")
                    && e.get("trace").and_then(Json::as_f64) == Some(trace)
                    && e.get("name").and_then(Json::as_str) != Some("pipeline.run")
            })
            .collect();
        assert_eq!(opens.len(), 5, "five stage spans open");
        assert!(opens
            .iter()
            .all(|e| e.get("parent").and_then(Json::as_f64).is_some()));
    }
}
