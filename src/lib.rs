//! # nl2vis
//!
//! Automated data visualization from natural language via (simulated) large
//! language models — a production-grade Rust reproduction of
//! *"Automated Data Visualization from Natural Language via Large Language
//! Models: An Exploratory Study"* (SIGMOD 2024).
//!
//! The workspace implements the paper's entire stack from scratch:
//!
//! - [`data`]: typed values, relational schemas, an in-memory database,
//!   JSON/CSV infrastructure, a deterministic RNG;
//! - [`query`]: the VQL visualization query language — parser, binder,
//!   executor, canonicalizer, component taxonomy;
//! - [`vega`]: VQL → Vega-Lite translation plus SVG and terminal renderers;
//! - [`corpus`]: a synthetic nvBench-style benchmark generator with
//!   in-domain / cross-domain splits;
//! - [`prompt`]: the fourteen table-serialization strategies of the paper's
//!   Figure 4 and in-context-learning prompt assembly;
//! - [`llm`]: a mechanistic simulated LLM (schema recovery, linking,
//!   grounding, failure-taxonomy error model) behind an OpenAI-compatible
//!   HTTP transport;
//! - [`baselines`]: trained Seq2Vis / Transformer / ncNet / RGVisNet /
//!   Chat2Vis / T5 models;
//! - [`eval`]: the paper's metrics, failure analysis, iterative-repair
//!   strategies, and user-study simulation;
//! - [`obs`]: the std-only observability substrate — metrics registry,
//!   RAII spans, JSONL event sinks, text reports — every layer above
//!   records into;
//! - [`service`]: the tower-style [`service::CompletionService`] /
//!   [`service::Layer`] middleware architecture — retry, cache, trace,
//!   metrics, and fault-injection layers that compose into the serving
//!   stack (ordered at compile time by [`StackBuilder`]);
//! - `bench` ([`crate::bench`]): the experiment harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use nl2vis::prelude::*;
//!
//! // A small database.
//! let mut schema = DatabaseSchema::new("shop", "retail");
//! schema.tables.push(TableDef::new(
//!     "sales",
//!     vec![
//!         ColumnDef::new("region", DataType::Text),
//!         ColumnDef::new("amount", DataType::Int),
//!     ],
//! ));
//! let mut db = Database::new(schema);
//! for (r, a) in [("east", 10), ("west", 25), ("east", 5)] {
//!     db.insert("sales", vec![r.into(), Value::Int(a)]).unwrap();
//! }
//!
//! // Ask in natural language.
//! let pipeline = Pipeline::new("gpt-4", 1);
//! let vis = pipeline
//!     .run(&db, "Show a bar chart of the total amount for each region.")
//!     .unwrap();
//! assert_eq!(vis.vql.chart, ChartType::Bar);
//! assert!(!vis.data.rows.is_empty());
//! println!("{}", vis.ascii());
//! ```

pub use nl2vis_baselines as baselines;
pub use nl2vis_bench as bench;
pub use nl2vis_cache as cache;
pub use nl2vis_corpus as corpus;
pub use nl2vis_data as data;
pub use nl2vis_eval as eval;
pub use nl2vis_llm as llm;
pub use nl2vis_obs as obs;
pub use nl2vis_prompt as prompt;
pub use nl2vis_query as query;
pub use nl2vis_service as service;
pub use nl2vis_vega as vega;

pub mod conversation;
pub mod pipeline;

pub use conversation::{Conversation, Turn, TurnKind};
pub use pipeline::{Pipeline, PipelineError, StackBuilder, Visualization};

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::conversation::{Conversation, Turn, TurnKind};
    pub use crate::pipeline::{Pipeline, PipelineError, StackBuilder, Visualization};
    pub use nl2vis_corpus::{Corpus, CorpusConfig, Example, Hardness};
    pub use nl2vis_data::schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
    pub use nl2vis_data::value::{DataType, Date, Value};
    pub use nl2vis_data::{database_from_csv, Catalog, Database, Json, Rng};
    pub use nl2vis_llm::{LlmClient, ModelProfile, SimLlm};
    pub use nl2vis_prompt::{PromptFormat, PromptOptions};
    pub use nl2vis_query::ast::{ChartType, VqlQuery};
    pub use nl2vis_query::exec::ResultSet;
    pub use nl2vis_query::{execute, parse};
}
