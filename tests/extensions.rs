//! Integration tests for the §6.2 extension features: conversational
//! sessions, Vega-Lite import/export, CSV data loading, corpus persistence,
//! and SQL export — all through the public facade.

use nl2vis::corpus::{corpus_from_json, corpus_to_json, Corpus, CorpusConfig};
use nl2vis::data::database_from_csv;
use nl2vis::prelude::*;

#[test]
fn conversation_over_generated_database() {
    let corpus = Corpus::build(&CorpusConfig::small(5));
    let db = corpus.catalog.database("baseball_club").unwrap();
    let pipeline = Pipeline::new("gpt-4", 2);
    let mut session = Conversation::new(&pipeline, db);

    let t1 = session
        .say("Show a bar chart of the number of technicians for each team.")
        .expect("first turn")
        .clone();
    assert_eq!(t1.kind, TurnKind::Fresh);

    let t2 = session
        .say("make it a pie chart")
        .expect("follow-up")
        .clone();
    assert_eq!(t2.kind, TurnKind::FollowUp);
    assert_eq!(t2.visualization.vql.chart, ChartType::Pie);
    // The revision kept the rest of the query.
    assert_eq!(t2.visualization.vql.from, t1.visualization.vql.from);

    let t3 = session
        .say("sort by the value descending")
        .expect("second follow-up");
    assert!(t3.visualization.vql.order.is_some());
    assert_eq!(session.history().len(), 3);
}

#[test]
fn vega_lite_export_import_execution_equivalence() {
    // Gold queries → named Vega-Lite spec → import → same execution, for
    // every non-join, non-nested gold query of a small corpus.
    let corpus = Corpus::build(&CorpusConfig::small(5));
    let mut checked = 0;
    for e in corpus.examples.iter().take(120) {
        if e.is_join || e.vql.filter.as_ref().is_some_and(|f| f.has_subquery()) {
            continue; // Vega-Lite cannot express these (documented lossiness)
        }
        let db = corpus.catalog.database(&e.db).unwrap();
        let spec = nl2vis::vega::spec::to_vega_lite_named(&e.vql);
        let imported = nl2vis::vega::from_vega_lite(&spec)
            .unwrap_or_else(|err| panic!("{}: {err}", nl2vis::query::printer::print(&e.vql)));
        let a = execute(&e.vql, db).unwrap();
        let b = execute(&imported, db).unwrap();
        assert!(
            a.same_data(&b),
            "roundtrip changed execution for {}",
            nl2vis::query::printer::print(&e.vql)
        );
        checked += 1;
    }
    assert!(checked >= 50, "only {checked} queries checked");
}

#[test]
fn csv_loaded_database_works_end_to_end() {
    let db = database_from_csv(
        "shipments",
        "logistics",
        &[(
            "shipment",
            "destination,weight\nLisbon,12.5\nOslo,30.0\nLisbon,7.25\nKyoto,18.0\n",
        )],
    )
    .unwrap();
    let pipeline = Pipeline::new("text-davinci-003", 4);
    let vis = pipeline
        .run(
            &db,
            "Show a bar chart of the total weight for each destination.",
        )
        .expect("pipeline over CSV data");
    let gold = execute(
        &parse("VISUALIZE bar SELECT destination , SUM(weight) FROM shipment GROUP BY destination")
            .unwrap(),
        &db,
    )
    .unwrap();
    assert!(vis.data.same_data(&gold));
}

#[test]
fn corpus_persists_and_replays_evaluation() {
    use nl2vis::baselines::Seq2Vis;
    use nl2vis::eval::runner::evaluate_model;

    let original = Corpus::build(&CorpusConfig::small(5));
    let loaded = corpus_from_json(&corpus_to_json(&original)).expect("roundtrip");

    // An evaluation over the reloaded corpus gives identical results.
    let split_a = original.split_cross_domain(1);
    let split_b = loaded.split_cross_domain(1);
    assert_eq!(split_a.test, split_b.test);
    let ma = Seq2Vis::train(&original, &split_a.train);
    let mb = Seq2Vis::train(&loaded, &split_b.train);
    let ra = evaluate_model(&ma, &original, &split_a.test, Some(30));
    let rb = evaluate_model(&mb, &loaded, &split_b.test, Some(30));
    assert_eq!(ra.overall().exact(), rb.overall().exact());
    assert_eq!(ra.overall().exec(), rb.overall().exec());
}

#[test]
fn sql_export_of_gold_queries_is_well_formed() {
    let corpus = Corpus::build(&CorpusConfig::small(5));
    for e in corpus.examples.iter().take(80) {
        let sql = nl2vis::query::to_sql(&e.vql);
        assert!(sql.starts_with("SELECT "), "{sql}");
        assert!(sql.ends_with(';'));
        assert!(sql.contains(&format!("FROM {}", e.vql.from)));
        if e.is_join {
            assert!(sql.contains(" JOIN "));
        }
        if e.vql.y.is_aggregate() {
            assert!(sql.contains(" GROUP BY "), "{sql}");
        }
    }
}

#[test]
fn direct_vega_lite_answer_mode_end_to_end() {
    use nl2vis::eval::runner::{evaluate_llm, LlmEvalConfig};
    use nl2vis::prompt::AnswerFormat;

    let corpus = Corpus::build(&CorpusConfig::small(5));
    let split = corpus.split_cross_domain(1);
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let vql_cfg = LlmEvalConfig {
        shots: 5,
        ..Default::default()
    };
    let vega_cfg = LlmEvalConfig {
        shots: 5,
        answer: AnswerFormat::VegaLite,
        ..Default::default()
    };
    let r_vql = evaluate_llm(&llm, &corpus, &split.train, &split.test, &vql_cfg, Some(60));
    let r_vega = evaluate_llm(
        &llm,
        &corpus,
        &split.train,
        &split.test,
        &vega_cfg,
        Some(60),
    );
    // Both modes produce scored runs; the VQL intermediate is at least as
    // good (the paper's §6.2 argument).
    assert!(
        r_vega.overall().exec() > 0.1,
        "vega mode must not collapse entirely"
    );
    assert!(
        r_vql.overall().exec() >= r_vega.overall().exec(),
        "VQL ({:.2}) should be at least direct Vega-Lite ({:.2})",
        r_vql.overall().exec(),
        r_vega.overall().exec()
    );
}
