//! Cross-crate integration tests: the complete pipeline of the paper's
//! Figure 3, the HTTP transport, and the renderers, over generated corpus
//! databases.

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::prelude::*;
use nl2vis::prompt::select::select_by_similarity;

fn fixture() -> Corpus {
    Corpus::build(&CorpusConfig::small(2024))
}

#[test]
fn pipeline_solves_corpus_examples_end_to_end() {
    let corpus = fixture();
    let mut pipeline = Pipeline::new("gpt-4", 5);
    pipeline.options.token_budget = 8192;

    let mut attempted = 0;
    let mut produced = 0;
    let mut exec_correct = 0;
    for example in corpus.examples.iter().take(60) {
        let db = corpus.catalog.database(&example.db).unwrap();
        let pool: Vec<&Example> = corpus
            .examples
            .iter()
            .filter(|e| e.id != example.id)
            .collect();
        let demos = select_by_similarity(&pool, &example.nl, 8);
        attempted += 1;
        let Ok(vis) = pipeline.run_with_demos(db, &example.nl, &demos, |d| {
            corpus.catalog.database(&d.db).unwrap()
        }) else {
            continue;
        };
        produced += 1;
        // Renderers always work on an executed result.
        assert!(vis.svg().starts_with("<svg"));
        assert!(!vis.ascii().is_empty());
        let spec = vis.vega_lite();
        assert!(spec.get("mark").is_some());
        assert!(Json::parse(&spec.to_pretty()).is_ok());

        let gold = execute(&example.vql, db).unwrap();
        if vis.data.same_data(&gold) {
            exec_correct += 1;
        }
    }
    assert!(
        produced * 10 >= attempted * 8,
        "most runs should produce charts: {produced}/{attempted}"
    );
    assert!(
        exec_correct * 2 >= attempted,
        "gpt-4 with demos should solve at least half: {exec_correct}/{attempted}"
    );
}

#[test]
fn http_transport_is_equivalent_to_local_model() {
    let corpus = fixture();
    let example = &corpus.examples[3];
    let db = corpus.catalog.database(&example.db).unwrap();

    let local = SimLlm::new(ModelProfile::davinci_003(), 77);
    let server = CompletionServer::start(local.clone()).unwrap();
    let remote = HttpLlmClient::new(server.address(), "text-davinci-003");

    let local_pipeline = Pipeline::with_client(Box::new(local));
    let remote_pipeline = Pipeline::with_client(Box::new(remote));

    let a = local_pipeline.run(db, &example.nl);
    let b = remote_pipeline.run(db, &example.nl);
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.completion, y.completion, "transport must be lossless");
            assert!(x.data.same_data(&y.data));
        }
        (Err(_), Err(_)) => {} // both failed identically — still equivalent
        (a, b) => panic!("local/remote disagree: {a:?} vs {b:?}"),
    }
}

#[test]
fn gold_queries_render_through_every_stage() {
    let corpus = fixture();
    for example in corpus.examples.iter().take(80) {
        let db = corpus.catalog.database(&example.db).unwrap();
        // Parse ∘ print is identity on gold queries.
        let printed = nl2vis::query::printer::print(&example.vql);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(reparsed, example.vql);
        // Execution yields data; renderers accept it.
        let result = execute(&example.vql, db).unwrap();
        assert!(!result.rows.is_empty());
        let spec = nl2vis::vega::to_vega_lite(&example.vql, &result);
        let values = spec
            .get("data")
            .and_then(|d| d.get("values"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(values.len(), result.rows.len());
        let svg = nl2vis::vega::svg::render_svg(&result);
        assert!(svg.ends_with("</svg>\n"));
    }
}

#[test]
fn catalog_integrity_across_corpus() {
    let corpus = fixture();
    corpus
        .catalog
        .validate()
        .expect("every generated database is consistent");
    // Splits cover all examples exactly once.
    for seed in [1u64, 2, 3] {
        for split in [
            corpus.split_in_domain(seed),
            corpus.split_cross_domain(seed),
        ] {
            let mut all: Vec<usize> = split
                .train
                .iter()
                .chain(&split.valid)
                .chain(&split.test)
                .copied()
                .collect();
            all.sort_unstable();
            let mut expected: Vec<usize> = corpus.examples.iter().map(|e| e.id).collect();
            expected.sort_unstable();
            assert_eq!(all, expected);
        }
    }
}

#[test]
fn baselines_and_llms_coexist_in_one_harness() {
    use nl2vis::baselines::{Nl2VisModel, Seq2Vis, T5Model, T5Size};
    use nl2vis::eval::runner::{evaluate_llm, evaluate_model, LlmEvalConfig};

    let corpus = fixture();
    let split = corpus.split_cross_domain(1);
    let t5 = T5Model::train(&corpus, &split.train, T5Size::Base, 1);
    let s2v = Seq2Vis::train(&corpus, &split.train);
    let llm = SimLlm::new(ModelProfile::gpt_4(), 1);

    let r_t5 = evaluate_model(&t5, &corpus, &split.test, Some(40));
    let r_s2v = evaluate_model(&s2v, &corpus, &split.test, Some(40));
    let config = LlmEvalConfig {
        shots: 10,
        token_budget: 8192,
        ..Default::default()
    };
    let r_llm = evaluate_llm(&llm, &corpus, &split.train, &split.test, &config, Some(40));

    // The paper's headline ordering, cross-domain: LLM ≥ fine-tuned ≥ seq2seq.
    assert!(r_llm.overall().exec() >= r_s2v.overall().exec());
    assert!(r_t5.overall().exec() >= r_s2v.overall().exec());
    assert_eq!(t5.name(), "T5-Base");
}
