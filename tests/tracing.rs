//! End-to-end trace propagation: one pipeline request through the full
//! client stack (completion cache → retrying client → pooled HTTP client)
//! against a live fault-injecting server must produce ONE trace whose
//! record — fetched back over `GET /trace/<id>` — covers the client's
//! attempts (including the retry), the cache miss, and the server-side
//! handling span. A repeat of the same request is a cache hit that never
//! touches the wire. Plus: the flight recorder's retention contract under
//! overload, and proof that with no sink and no recorder the tracing
//! machinery changes nothing about evaluation results.

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::data::schema::{ColumnDef, DatabaseSchema, TableDef};
use nl2vis::data::value::DataType;
use nl2vis::data::{Database, Value};
use nl2vis::eval::runner::{evaluate_llm, LlmEvalConfig};
use nl2vis::llm::fault::{Fault, FaultInjector};
use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::llm::{ModelProfile, ResilientLlmClient, RetryPolicy, SimLlm};
use nl2vis::obs::{self, recorder, FlightRecorder};
use nl2vis::Pipeline;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex, MutexGuard};

/// The flight recorder is process-global; tests that install (or assert the
/// absence of) one must not interleave.
fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn shop_db() -> Database {
    let mut s = DatabaseSchema::new("shop", "retail");
    s.tables.push(TableDef::new(
        "sales",
        vec![
            ColumnDef::new("region", DataType::Text),
            ColumnDef::new("amount", DataType::Int),
        ],
    ));
    let mut d = Database::new(s);
    for (r, a) in [("east", 10i64), ("west", 25), ("east", 5), ("north", 40)] {
        d.insert("sales", vec![r.into(), Value::Int(a)]).unwrap();
    }
    d
}

/// One `Connection: close` GET against the server, returning the raw
/// response (status line, headers, body).
fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn one_trace_covers_retry_cache_miss_and_server_handling() {
    let _guard = recorder_lock();
    let flight = Arc::new(FlightRecorder::new(64));
    recorder::install(Arc::clone(&flight));

    // The first completion request is answered with a 500 — a transient
    // fault the retrying client must absorb; everything after is clean.
    let llm = SimLlm::new(ModelProfile::gpt_4(), 7);
    let registry = Arc::new(obs::MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        llm,
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Http500]),
    )
    .expect("server starts");
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: std::time::Duration::from_millis(1),
        max_backoff: std::time::Duration::from_millis(2),
        jitter_seed: 7,
    };
    let pipeline = Pipeline::with_client(Box::new(ResilientLlmClient::new(
        HttpLlmClient::new(server.address(), "gpt-4"),
        policy,
    )))
    .with_completion_cache(64);

    let db = shop_db();
    let question = "Show a bar chart of the total amount for each region.";
    pipeline.run(&db, question).expect("retry absorbs the 500");

    let first = flight
        .recent(16)
        .into_iter()
        .find(|r| r.root == "pipeline.run")
        .expect("the pipeline run was recorded");

    // One trace id covers the whole request: the cache miss, the retrying
    // request span, both HTTP attempts, and the server-side handling —
    // stitched across the wire by the trace headers.
    assert!(first.has_annotation("cache", "miss"), "{first:?}");
    assert!(first.has_annotation("retry", "1"), "{first:?}");
    assert!(first.has_annotation("retry_outcome", "recovered"));
    assert_eq!(
        first.spans_named("llm.attempt").len(),
        2,
        "the 500 attempt and the recovered attempt both belong to the trace"
    );
    let server_spans = first.spans_named("server.handle");
    assert_eq!(server_spans.len(), 2, "both attempts reached the server");
    // The server spans are parented to client-side spans of the same trace.
    let client_ids: Vec<u64> = first
        .spans_named("llm.attempt")
        .iter()
        .map(|s| s.span_id)
        .collect();
    for s in &server_spans {
        let parent = s.parent.expect("server span has an imported parent");
        assert!(
            client_ids.contains(&parent),
            "server span parented outside the client attempts: {s:?}"
        );
    }
    assert!(first.has_annotation("model", "gpt-4"));
    assert!(first.has_annotation("outcome", "ok"));

    // The record is fetchable over the wire, exactly as an operator would.
    let response = raw_get(server.address(), &format!("/trace/{}", first.trace_id));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains(&format!("\"trace_id\":{}", first.trace_id)));
    assert!(response.contains("\"name\":\"server.handle\""));
    assert!(response.contains("\"name\":\"llm.attempt\""));
    let index = raw_get(server.address(), "/requests");
    assert!(index.starts_with("HTTP/1.1 200"), "{index}");
    assert!(index.contains(&format!("\"trace_id\":{}", first.trace_id)));

    // The identical question again: a cache hit that never touches the
    // wire — no server span, no HTTP attempt, a different trace.
    pipeline.run(&db, question).expect("cached run succeeds");
    let second = flight
        .recent(16)
        .into_iter()
        .find(|r| r.root == "pipeline.run" && r.trace_id != first.trace_id)
        .expect("the repeat run was recorded as its own trace");
    assert!(second.has_annotation("cache", "hit"), "{second:?}");
    assert!(
        !second.has_span("server.handle"),
        "a cache hit must not reach the server: {second:?}"
    );
    assert!(!second.has_span("llm.attempt"));

    recorder::disable();
}

#[test]
fn overloaded_recorder_holds_capacity_and_keeps_errored_traces() {
    let _guard = recorder_lock();
    const CAPACITY: usize = 16;
    let flight = Arc::new(FlightRecorder::new(CAPACITY));
    recorder::install(Arc::clone(&flight));

    // 10x capacity of span-driven traces through the global hooks. Each
    // trace opens a varying number of child spans, so consecutive trace
    // ids take varying strides through the global id counter and land on
    // every recorder shard. The first few traces to reach each shard carry
    // an error (the recorder shards by `trace_id % shard_count`, and 16
    // slots spread over 8 shards); everything after is clean — so errored
    // traces are a small minority of the load, arrive earliest, and would
    // all be gone under plain FIFO eviction.
    let total = CAPACITY * 10;
    let mut seen_per_shard = std::collections::HashMap::new();
    let mut errored_sent = 0usize;
    for i in 0..total {
        let root = obs::Span::enter_root("load.request");
        for _ in 0..(i % 3) {
            let _child = obs::span!("load.stage");
        }
        let seen = seen_per_shard.entry(root.trace() % 8).or_insert(0usize);
        *seen += 1;
        if *seen <= 4 {
            errored_sent += 1;
            obs::error("load", "boom", &format!("request {i} failed"));
        }
    }
    assert!(
        errored_sent * 4 <= total,
        "errored traces are a minority of the load: {errored_sent}/{total}"
    );

    assert_eq!(
        flight.len(),
        CAPACITY,
        "under 10x load the recorder holds exactly its configured capacity"
    );
    let retained = flight.recent(CAPACITY);
    let errored = retained.iter().filter(|r| r.error.is_some()).count();
    assert_eq!(
        errored, CAPACITY,
        "the oldest, minority errored traces outlive the clean flood"
    );
    // Errors carry their note, outcome flips, and the JSON surfaces it.
    let sample = retained
        .iter()
        .find(|r| r.error.is_some())
        .expect("an errored trace is retained");
    assert_eq!(sample.outcome(), "error");
    assert!(sample.to_json().contains("\"kind\":\"boom\""));

    recorder::disable();
}

#[test]
fn tracing_machinery_off_changes_nothing_about_eval() {
    let _guard = recorder_lock();
    assert!(
        !recorder::enabled(),
        "this test asserts the uninstrumented path"
    );

    // Two identical eval runs with the NullSink and no recorder: scores,
    // result order, completions — everything except the globally-unique
    // trace ids — must be byte-identical. The tracing machinery may only
    // observe, never perturb.
    let corpus = Corpus::build(&CorpusConfig::small(2024));
    let split = corpus.split_cross_domain(1);
    let config = LlmEvalConfig::default();
    let run = || {
        let llm = SimLlm::new(ModelProfile::davinci_003(), 11);
        evaluate_llm(&llm, &corpus, &split.train, &split.test, &config, Some(24))
    };
    let a = run();
    let b = run();

    let strip_trace_ids = |csv: &str| -> String {
        csv.lines()
            .map(|l| match l.rfind(',') {
                Some(cut) => &l[..cut],
                None => l,
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_trace_ids(&a.to_csv()),
        strip_trace_ids(&b.to_csv()),
        "identical runs must produce byte-identical per-example results"
    );
    assert_eq!(a.overall().exact(), b.overall().exact());
    assert_eq!(a.overall().exec(), b.overall().exec());
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.completion, y.completion);
        // Trace ids are still assigned (spans exist even unobserved) and
        // still unique per example.
        assert_ne!(x.trace_id, 0);
        assert_ne!(x.trace_id, y.trace_id);
    }
}
