//! The paper's six key findings, asserted as executable tests over a
//! reduced experiment context. Each test states the finding it checks.

use nl2vis::bench::experiments;
use nl2vis::bench::ExperimentContext;
use nl2vis::corpus::CorpusConfig;
use nl2vis::eval::optimize::{run_strategy, Strategy};
use nl2vis::eval::runner::{evaluate_llm, LlmEvalConfig};
use nl2vis::eval::FailureTaxonomy;
use nl2vis::llm::{ModelProfile, SimLlm};
use nl2vis::prompt::PromptFormat;

fn ctx() -> ExperimentContext {
    ExperimentContext::with_config(
        &CorpusConfig {
            seed: 99,
            instances_per_domain: 2,
            queries_per_db: 10,
            paraphrases: (2, 3),
        },
        99,
        Some(150),
    )
}

/// Finding 1: representing tables in programming-language form (SQL/code)
/// beats the flat schema serialization.
#[test]
fn finding1_programming_formats_beat_flat_schema() {
    let c = ctx();
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    let run = |format: PromptFormat| {
        let config = LlmEvalConfig {
            format,
            shots: 1,
            ..Default::default()
        };
        evaluate_llm(
            &llm,
            &c.corpus,
            &c.cross_split.train,
            &c.cross_split.test,
            &config,
            c.limit,
        )
        .overall()
    };
    let schema = run(PromptFormat::Schema);
    let sql = run(PromptFormat::Table2Sql);
    let code = run(PromptFormat::Table2Code);
    assert!(
        sql.exec() > schema.exec() + 0.05,
        "Table2SQL ({:.2}) must clearly beat flat Schema ({:.2})",
        sql.exec(),
        schema.exec()
    );
    assert!(
        code.exec() > schema.exec(),
        "Table2Code must beat flat Schema"
    );
}

/// Finding 2 (table content): the schema is the load-bearing prompt
/// component — appending row values barely moves overall accuracy, while
/// relationship (FK) knowledge is what join scenarios need.
#[test]
fn finding2_schema_is_sufficient() {
    let c = ctx();
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    let eval = |format: PromptFormat| {
        let config = LlmEvalConfig {
            format,
            shots: 3,
            ..Default::default()
        };
        evaluate_llm(
            &llm,
            &c.corpus,
            &c.cross_split.train,
            &c.cross_split.test,
            &config,
            c.limit,
        )
    };
    let schema_only = eval(PromptFormat::ColumnList);
    let with_fk = eval(PromptFormat::ColumnListFk);
    let with_values = eval(PromptFormat::ColumnListFkValue);

    // Content (row values) adds little beyond schema+relationships.
    assert!(
        with_values.overall().exec() <= with_fk.overall().exec() + 0.10,
        "row content should not be the decisive factor: +Value {:.2} vs +FK {:.2}",
        with_values.overall().exec(),
        with_fk.overall().exec()
    );
    // Relationships matter for the join scenario.
    assert!(
        with_fk.join().exec() >= schema_only.join().exec(),
        "+FK join exec ({:.2}) must not trail schema-only ({:.2})",
        with_fk.join().exec(),
        schema_only.join().exec()
    );
}

/// Finding 3: LLMs outperform the trained seq2seq baselines cross-domain.
#[test]
fn finding3_llms_beat_baselines_cross_domain() {
    use nl2vis::baselines::Seq2Vis;
    use nl2vis::eval::runner::evaluate_model;
    let c = ctx();
    let s2v = Seq2Vis::train(&c.corpus, &c.cross_split.train);
    let r_s2v = evaluate_model(&s2v, &c.corpus, &c.cross_split.test, c.limit);
    let llm = SimLlm::new(ModelProfile::gpt_4(), 3);
    let config = LlmEvalConfig {
        shots: 10,
        token_budget: 8192,
        ..Default::default()
    };
    let r_llm = evaluate_llm(
        &llm,
        &c.corpus,
        &c.cross_split.train,
        &c.cross_split.test,
        &config,
        c.limit,
    );
    assert!(
        r_llm.overall().exact() > r_s2v.overall().exact() + 0.2,
        "gpt-4 ({:.2}) must dominate Seq2Vis ({:.2}) cross-domain",
        r_llm.overall().exact(),
        r_s2v.overall().exact()
    );
}

/// Finding (RQ2-1): more demonstrations improve inference-only models.
#[test]
fn finding_more_shots_help() {
    let c = ctx();
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    let run = |k: usize| {
        let config = LlmEvalConfig {
            shots: k,
            ..Default::default()
        };
        evaluate_llm(
            &llm,
            &c.corpus,
            &c.cross_split.train,
            &c.cross_split.test,
            &config,
            c.limit,
        )
        .overall()
        .exec()
    };
    let zero = run(0);
    let twenty = run(20);
    assert!(
        twenty > zero + 0.1,
        "20-shot ({twenty:.2}) must clearly beat 0-shot ({zero:.2})"
    );
}

/// Finding (RQ2 in-domain vs cross-domain): seeing the test database's
/// schema in demonstrations is a large advantage.
#[test]
fn finding_in_domain_beats_cross_domain() {
    let c = ctx();
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    let config = LlmEvalConfig {
        shots: 10,
        ..Default::default()
    };
    let ind = evaluate_llm(
        &llm,
        &c.corpus,
        &c.in_split.train,
        &c.in_split.test,
        &config,
        c.limit,
    );
    let cross = evaluate_llm(
        &llm,
        &c.corpus,
        &c.cross_split.train,
        &c.cross_split.test,
        &config,
        c.limit,
    );
    assert!(
        ind.overall().exact() > cross.overall().exact() + 0.05,
        "in-domain ({:.2}) must beat cross-domain ({:.2})",
        ind.overall().exact(),
        cross.overall().exact()
    );
}

/// Finding 5: failures concentrate in the data part, led by conditions.
#[test]
fn finding5_failure_taxonomy_shape() {
    let c = ctx();
    let (report, _) = experiments::base_failure_run(&c);
    let taxonomy = FailureTaxonomy::from_report(&report);
    assert!(
        taxonomy.failures >= 10,
        "need failures to analyze, got {}",
        taxonomy.failures
    );
    assert!(
        taxonomy.data_share() > taxonomy.visual_share(),
        "data-part errors ({:.2}) must dominate visual-part errors ({:.2})",
        taxonomy.data_share(),
        taxonomy.visual_share()
    );
    assert!(
        taxonomy.share_of("cond") > 0.15,
        "conditions lead the data-part failures"
    );
}

/// Finding 6: iterative strategies rescue failures, with the
/// code-interpreter strongest.
#[test]
fn finding6_strategies_rescue_failures() {
    let c = ctx();
    let (report, config) = experiments::base_failure_run(&c);
    let failed = report.failed_ids();
    assert!(failed.len() >= 10);
    let cot = run_strategy(
        Strategy::ChainOfThought,
        &c.corpus,
        &c.cross_split.train,
        &failed,
        &config,
        5,
    );
    let ci = run_strategy(
        Strategy::CodeInterpreter,
        &c.corpus,
        &c.cross_split.train,
        &failed,
        &config,
        5,
    );
    assert!(cot.exec_rate() > 0.0, "CoT rescues something");
    assert!(
        ci.exec_rate() >= cot.exec_rate(),
        "code-interpreter ({:.2}) is at least CoT ({:.2})",
        ci.exec_rate(),
        cot.exec_rate()
    );
    assert!(
        ci.exec_rate() > 0.25,
        "code-interpreter rescues a sizable share"
    );
}
