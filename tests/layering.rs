//! Layer-ordering invariants of the completion stack.
//!
//! The serving stack composes as `Trace(Metrics(Cache(Retry(leaf))))`, and
//! three properties make that order load-bearing: a retried-then-recovered
//! request is cached exactly once, a transport failure is *never*
//! memoized, and one trace id spans every layer including the failed
//! attempt. Plus the refactor's non-regression contract: the metric-name
//! surface of the pre-layer wrapper structs is byte-identical.

use nl2vis::cache::{completion_key, CacheLayer, CachedLlmClient, CompletionCache};
use nl2vis::llm::fault::{Fault, FaultInjector};
use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::llm::{GenOptions, LlmClient, ModelProfile, ResilientLlmClient, RetryPolicy, SimLlm};
use nl2vis::obs::{self, recorder, FlightRecorder};
use nl2vis::pipeline::StackBuilder;
use nl2vis::service::{
    service_fn, stack_of, validate_stack, CompletionService, FaultLayer, Layer, RetryLayer,
    RouteLayer, RoutePolicy, TransportError, TransportErrorKind, ValidateLayer, VqlSyntaxValidator,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The flight recorder and the global metrics registry are process-global;
/// tests reading either must not interleave.
fn global_observability_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fast_policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 7,
    }
}

fn prompt(i: usize) -> String {
    format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
}

/// A retry that recovers mid-request must populate the cache exactly once
/// — with the recovered completion, not the failed attempt.
#[test]
fn recovered_retry_is_cached_exactly_once() {
    let _guard = global_observability_lock();
    let upstream_calls = Arc::new(AtomicUsize::new(0));
    let calls = Arc::clone(&upstream_calls);
    let leaf = service_fn("scripted", move |p, _| {
        calls.fetch_add(1, Ordering::SeqCst);
        Ok(format!("Visualize BAR -- {p}"))
    });
    // The fault layer sits between retry and the leaf: attempt 1 of the
    // first request dies with a 500 before reaching the upstream.
    let faulted = FaultLayer::script(vec![Some(TransportErrorKind::Status(500))]).layer(leaf);
    let cache = Arc::new(CompletionCache::in_memory(16));
    let stack = StackBuilder::over(faulted)
        .retry(fast_policy(3))
        .shared_cache(Arc::clone(&cache))
        .build();
    assert_eq!(stack_of(&stack), vec!["cache", "retry", "fault", "fn"]);

    let opts = GenOptions::default();
    let first = stack
        .call("question A", &opts)
        .expect("retry absorbs the 500");
    assert_eq!(
        upstream_calls.load(Ordering::SeqCst),
        1,
        "the injected failure never reached the upstream; the recovery did"
    );
    assert_eq!(cache.stats().insertions, 1, "one request, one cache entry");
    assert_eq!(cache.stats().misses, 1);

    let second = stack.call("question A", &opts).expect("repeat is served");
    assert_eq!(first, second);
    assert_eq!(
        upstream_calls.load(Ordering::SeqCst),
        1,
        "the repeat is a cache hit, not a new upstream call"
    );
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().insertions, 1, "hits never re-insert");
}

/// Failures must never be memoized — in the canonical order, and even in
/// the misordered stack that `validate_stack` exists to reject.
#[test]
fn failures_are_never_memoized_in_either_order() {
    let _guard = global_observability_lock();
    let make_dead_leaf = |calls: Arc<AtomicUsize>| {
        service_fn("dead", move |_p, _| -> Result<String, TransportError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(TransportError::new(
                TransportErrorKind::Status(500),
                1,
                "http 500: injected",
            ))
        })
    };

    // Canonical order: Cache(Retry(leaf)). The retry budget is spent per
    // request; the error reaches the cache once and is not stored.
    let calls = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(CompletionCache::in_memory(16));
    let stack = StackBuilder::over(make_dead_leaf(Arc::clone(&calls)))
        .retry(fast_policy(2))
        .shared_cache(Arc::clone(&cache))
        .build();
    let opts = GenOptions::default();
    for round in 1..=2 {
        let err = stack.call("q", &opts).expect_err("the leaf always fails");
        assert_eq!(err.kind, TransportErrorKind::Status(500));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2 * round,
            "round {round} re-ran the full retry budget — nothing was memoized"
        );
    }
    assert_eq!(cache.stats().insertions, 0, "errors never enter the cache");
    assert_eq!(cache.stats().hits, 0);

    // Misordered stack: Retry(Cache(leaf)), composed by hand since the
    // typestate builder refuses to. The ordering contract flags it...
    let calls = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(CompletionCache::in_memory(16));
    let misordered = RetryLayer::new(fast_policy(2)).layer(
        CacheLayer::with_cache(Arc::clone(&cache)).layer(make_dead_leaf(Arc::clone(&calls))),
    );
    let tags = stack_of(&misordered);
    assert_eq!(tags, vec!["retry", "cache", "fn"]);
    let violation = validate_stack(&tags).expect_err("cache inside retry is a contract violation");
    assert!(violation.contains("cache sits inside retry"), "{violation}");

    // ... and even misordered, the never-memoize-errors property holds:
    // every attempt goes through the cache as a fresh miss.
    let err = misordered.call("q", &opts).expect_err("still dead");
    assert_eq!(err.kind, TransportErrorKind::Status(500));
    assert_eq!(calls.load(Ordering::SeqCst), 2);
    assert_eq!(cache.stats().insertions, 0);
    assert_eq!(
        cache.stats().misses,
        2,
        "the misordered cache pays one lookup per *attempt* — the pathology the contract bans"
    );
}

/// One request through the full builder stack against a live server: every
/// layer's spans and annotations — including the failed attempt and the
/// server-side handling — share one trace.
#[test]
fn one_trace_spans_every_layer_and_the_retried_attempt() {
    let _guard = global_observability_lock();
    let flight = Arc::new(FlightRecorder::new(64));
    recorder::install(Arc::clone(&flight));

    let registry = Arc::new(obs::MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 7),
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Http500]),
    )
    .expect("server starts");
    let stack = StackBuilder::over(HttpLlmClient::new(server.address(), "gpt-4"))
        .retry(fast_policy(3))
        .cache(16)
        .metrics()
        .trace()
        .build();
    assert_eq!(
        stack_of(&stack),
        vec!["trace", "metrics", "cache", "retry", "http"]
    );

    stack
        .call(&prompt(1), &GenOptions::default())
        .expect("retry absorbs the injected 500");

    let record = flight
        .recent(16)
        .into_iter()
        .find(|r| r.root == "llm.request")
        .expect("the request span was recorded as a trace root");
    assert!(record.has_annotation("cache", "miss"), "{record:?}");
    assert!(record.has_annotation("retry", "1"), "{record:?}");
    assert!(record.has_annotation("retry_outcome", "recovered"));
    let attempts = record.spans_named("llm.attempt");
    assert_eq!(
        attempts.len(),
        2,
        "the 500 and the recovery share the trace"
    );
    let handled = record.spans_named("server.handle");
    assert_eq!(handled.len(), 2, "both attempts reached the server");
    let attempt_ids: Vec<u64> = attempts.iter().map(|s| s.span_id).collect();
    for span in &handled {
        let parent = span.parent.expect("server spans import the client parent");
        assert!(
            attempt_ids.contains(&parent),
            "server span parented outside the client attempts: {span:?}"
        );
    }
    assert_eq!(record.spans_named("cache.lookup").len(), 1);

    recorder::disable();
}

/// The refactor's non-regression contract: driving the *pre-layer* wrapper
/// API (cached client over resilient client over HTTP client) touches
/// exactly the metric names it touched before the middleware rewrite —
/// dashboards and the eval runner read these by name.
#[test]
fn shim_path_metric_names_are_byte_identical() {
    let _guard = global_observability_lock();
    let names_before: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();

    // Scenario 1: a 500-then-clean request through the full shim stack,
    // then the identical request again (a cache hit).
    let registry = Arc::new(obs::MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 7),
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Http500]),
    )
    .expect("server starts");
    let client = CachedLlmClient::new(
        ResilientLlmClient::new(
            HttpLlmClient::new(server.address(), "gpt-4"),
            fast_policy(3),
        ),
        64,
    );
    let opts = GenOptions::default();
    client
        .try_complete_with(&prompt(1), &opts)
        .expect("retry absorbs the 500");
    client
        .try_complete_with(&prompt(1), &opts)
        .expect("repeat is a cache hit");
    drop(server); // joins the workers, so server-side spans are closed

    // Scenario 2: a dead endpoint without retries — the error-attribution
    // counters.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let dead = ResilientLlmClient::new(
        HttpLlmClient::new(dead_addr, "gpt-4"),
        RetryPolicy::no_retry(),
    );
    dead.try_complete_with(&prompt(2), &opts)
        .expect_err("nobody listens there");

    let names_after: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();
    let mut touched: Vec<&str> = names_after
        .iter()
        .filter(|(name, value)| names_before.get(*name) != Some(value))
        .map(|(name, _)| name.as_str())
        .collect();
    touched.sort_unstable();

    // The golden surface, unchanged since the concrete-wrapper era. A new
    // name appearing here is a dashboard-breaking change; treat any edit
    // to this list as a compatibility decision, not a test fix.
    assert_eq!(
        touched,
        vec![
            "cache.hits",
            "cache.insertions",
            "cache.lookup.duration_us",
            "cache.misses",
            "http.conn_reused",
            "http.connections_opened",
            "llm.attempt.duration_us",
            "llm.error.transport",
            "llm.errors_total",
            "llm.request.duration_us",
            "llm.retries_total",
            "llm.retry_success_total",
            "server.handle.duration_us",
        ],
        "the serving path's metric-name surface drifted"
    );
}

/// A syntactically valid completion the tests route to the strong tier.
fn good_vql() -> &'static str {
    "VQL: VISUALIZE bar SELECT name , COUNT(name) FROM t"
}

/// A two-tier escalating stack: a prose-only cheap tier behind the syntax
/// gate, and a clean strong tier. `bad_calls`/`strong_calls` count leaf
/// invocations.
fn escalating_stack(
    bad_calls: Arc<AtomicUsize>,
    strong_calls: Arc<AtomicUsize>,
) -> impl CompletionService {
    let bad = service_fn("bad", move |_p, _| {
        bad_calls.fetch_add(1, Ordering::SeqCst);
        Ok("I cannot answer that.".to_string())
    });
    let strong = service_fn("strong", move |_p, _| {
        strong_calls.fetch_add(1, Ordering::SeqCst);
        Ok(good_vql().to_string())
    });
    RouteLayer::new(RoutePolicy::CheapFirst)
        .model("tiered")
        .tier("bad", 1, ValidateLayer::new(VqlSyntaxValidator).layer(bad))
        .tier("strong", 38, strong)
        .build()
        .expect("two-tier stack conforms")
}

/// The routing era's addition to the metric-name surface: one escalated
/// request touches exactly these `route.*` names. Like the shim golden
/// list above, an edit here is a dashboard-compatibility decision.
#[test]
fn route_metric_surface_is_the_golden_set() {
    let _guard = global_observability_lock();
    let names_before: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();

    let stack = escalating_stack(Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0)));
    let out = stack
        .call(&prompt(10), &GenOptions::default())
        .expect("the strong tier answers");
    assert_eq!(out, good_vql());

    let names_after: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();
    let mut touched: Vec<&str> = names_after
        .iter()
        .filter(|(name, value)| {
            name.starts_with("route.") && names_before.get(*name) != Some(value)
        })
        .map(|(name, _)| name.as_str())
        .collect();
    touched.sort_unstable();
    assert_eq!(
        touched,
        vec![
            "route.cost_units",
            "route.error.validation",
            "route.errors_total",
            "route.request.duration_us",
            "route.tier.bad.duration_us",
            "route.tier.bad.escalations_total",
            "route.tier.bad.requests_total",
            "route.tier.escalations_total",
            "route.tier.requests_total",
            "route.tier.strong.duration_us",
            "route.tier.strong.requests_total",
            "route.tier.validation_failures_total",
        ],
        "the routing metric-name surface drifted"
    );
}

/// Escalation correctness, part 1: a cheap-tier answer the gate rejected
/// is never returned to the caller and never memoized — even when each
/// tier carries its own cache over a *shared* store. The escalated answer
/// lands under the strong tier's completion key only.
#[test]
fn validation_failed_cheap_answer_is_never_returned_or_cached() {
    let _guard = global_observability_lock();
    let bad_calls = Arc::new(AtomicUsize::new(0));
    let strong_calls = Arc::new(AtomicUsize::new(0));
    let shared = Arc::new(CompletionCache::in_memory(32));

    let bad = {
        let calls = Arc::clone(&bad_calls);
        service_fn("bad", move |_p, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok("I cannot answer that.".to_string())
        })
    };
    let strong = {
        let calls = Arc::clone(&strong_calls);
        service_fn("strong", move |_p, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(good_vql().to_string())
        })
    };
    // Per-tier stacks: Cached(Validate(leaf)) — the cache sits *outside*
    // the gate, so a rejected completion surfaces as an error and the
    // never-memoize-errors property keeps it out of the store.
    let stack = RouteLayer::new(RoutePolicy::CheapFirst)
        .model("tiered")
        .tier(
            "bad",
            1,
            CacheLayer::with_cache(Arc::clone(&shared))
                .layer(ValidateLayer::new(VqlSyntaxValidator).layer(bad)),
        )
        .tier(
            "strong",
            38,
            CacheLayer::with_cache(Arc::clone(&shared)).layer(strong),
        )
        .build()
        .expect("cached tiers conform");

    let opts = GenOptions::default();
    let p = prompt(11);
    let first = stack.call(&p, &opts).expect("escalation succeeds");
    assert_eq!(
        first,
        good_vql(),
        "the rejected prose never reaches the caller"
    );
    assert_eq!(
        shared.len(),
        1,
        "exactly one entry: the escalated answer under the strong tier's key"
    );
    assert!(
        shared.get(&completion_key("strong", &opts, &p)).is_some(),
        "the escalated answer is keyed by the tier that produced it"
    );
    assert!(
        shared.get(&completion_key("bad", &opts, &p)).is_none(),
        "the validation-failed answer was memoized"
    );

    // The repeat: the cheap tier's cache misses again (errors are not
    // memoized), the gate rejects again, and the strong tier serves its
    // cached answer without re-invoking the leaf.
    let second = stack.call(&p, &opts).expect("repeat escalation succeeds");
    assert_eq!(second, good_vql());
    assert_eq!(
        bad_calls.load(Ordering::SeqCst),
        2,
        "rejections never memoize"
    );
    assert_eq!(
        strong_calls.load(Ordering::SeqCst),
        1,
        "the escalated answer is served from cache on the repeat"
    );
}

/// Escalation correctness, part 2: a transport failure at the cheap tier
/// escalates rather than surfacing, and when *every* tier fails the
/// caller sees the error — the router never fabricates model output.
#[test]
fn transport_failure_is_never_scored_as_model_output() {
    let _guard = global_observability_lock();
    let dead = |model: &'static str| {
        service_fn(model, move |_p, _| -> Result<String, TransportError> {
            Err(TransportError::new(
                TransportErrorKind::Timeout,
                1,
                format!("{model}: injected timeout"),
            ))
        })
    };

    // Cheap tier times out; the strong tier's answer is what the caller
    // gets, byte for byte.
    let strong_calls = Arc::new(AtomicUsize::new(0));
    let strong = {
        let calls = Arc::clone(&strong_calls);
        service_fn("strong", move |_p, _| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(good_vql().to_string())
        })
    };
    let stack = RouteLayer::new(RoutePolicy::CheapFirst)
        .model("tiered")
        .tier("dead-cheap", 1, dead("dead-cheap"))
        .tier("strong", 38, strong)
        .build()
        .expect("stack conforms");
    let out = stack
        .call(&prompt(12), &GenOptions::default())
        .expect("the strong tier rescues the timeout");
    assert_eq!(out, good_vql());
    assert_eq!(strong_calls.load(Ordering::SeqCst), 1);

    // Both tiers fail: the call is an error, not an empty or placeholder
    // completion a scorer could mistake for output.
    let all_dead = RouteLayer::new(RoutePolicy::CheapFirst)
        .model("tiered")
        .tier("dead-cheap", 1, dead("dead-cheap"))
        .tier("dead-strong", 38, dead("dead-strong"))
        .build()
        .expect("stack conforms");
    let err = all_dead
        .call(&prompt(12), &GenOptions::default())
        .expect_err("no tier answered");
    assert_eq!(err.kind, TransportErrorKind::Timeout);
    assert!(err.to_string().contains("dead-strong"), "{err}");
}
