//! Layer-ordering invariants of the completion stack.
//!
//! The serving stack composes as `Trace(Metrics(Cache(Retry(leaf))))`, and
//! three properties make that order load-bearing: a retried-then-recovered
//! request is cached exactly once, a transport failure is *never*
//! memoized, and one trace id spans every layer including the failed
//! attempt. Plus the refactor's non-regression contract: the metric-name
//! surface of the pre-layer wrapper structs is byte-identical.

use nl2vis::cache::{CacheLayer, CachedLlmClient, CompletionCache};
use nl2vis::llm::fault::{Fault, FaultInjector};
use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::llm::{GenOptions, LlmClient, ModelProfile, ResilientLlmClient, RetryPolicy, SimLlm};
use nl2vis::obs::{self, recorder, FlightRecorder};
use nl2vis::pipeline::StackBuilder;
use nl2vis::service::{
    service_fn, stack_of, validate_stack, CompletionService, FaultLayer, Layer, RetryLayer,
    TransportError, TransportErrorKind,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The flight recorder and the global metrics registry are process-global;
/// tests reading either must not interleave.
fn global_observability_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fast_policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        jitter_seed: 7,
    }
}

fn prompt(i: usize) -> String {
    format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
}

/// A retry that recovers mid-request must populate the cache exactly once
/// — with the recovered completion, not the failed attempt.
#[test]
fn recovered_retry_is_cached_exactly_once() {
    let _guard = global_observability_lock();
    let upstream_calls = Arc::new(AtomicUsize::new(0));
    let calls = Arc::clone(&upstream_calls);
    let leaf = service_fn("scripted", move |p, _| {
        calls.fetch_add(1, Ordering::SeqCst);
        Ok(format!("Visualize BAR -- {p}"))
    });
    // The fault layer sits between retry and the leaf: attempt 1 of the
    // first request dies with a 500 before reaching the upstream.
    let faulted = FaultLayer::script(vec![Some(TransportErrorKind::Status(500))]).layer(leaf);
    let cache = Arc::new(CompletionCache::in_memory(16));
    let stack = StackBuilder::over(faulted)
        .retry(fast_policy(3))
        .shared_cache(Arc::clone(&cache))
        .build();
    assert_eq!(stack_of(&stack), vec!["cache", "retry", "fault", "fn"]);

    let opts = GenOptions::default();
    let first = stack
        .call("question A", &opts)
        .expect("retry absorbs the 500");
    assert_eq!(
        upstream_calls.load(Ordering::SeqCst),
        1,
        "the injected failure never reached the upstream; the recovery did"
    );
    assert_eq!(cache.stats().insertions, 1, "one request, one cache entry");
    assert_eq!(cache.stats().misses, 1);

    let second = stack.call("question A", &opts).expect("repeat is served");
    assert_eq!(first, second);
    assert_eq!(
        upstream_calls.load(Ordering::SeqCst),
        1,
        "the repeat is a cache hit, not a new upstream call"
    );
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().insertions, 1, "hits never re-insert");
}

/// Failures must never be memoized — in the canonical order, and even in
/// the misordered stack that `validate_stack` exists to reject.
#[test]
fn failures_are_never_memoized_in_either_order() {
    let _guard = global_observability_lock();
    let make_dead_leaf = |calls: Arc<AtomicUsize>| {
        service_fn("dead", move |_p, _| -> Result<String, TransportError> {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(TransportError::new(
                TransportErrorKind::Status(500),
                1,
                "http 500: injected",
            ))
        })
    };

    // Canonical order: Cache(Retry(leaf)). The retry budget is spent per
    // request; the error reaches the cache once and is not stored.
    let calls = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(CompletionCache::in_memory(16));
    let stack = StackBuilder::over(make_dead_leaf(Arc::clone(&calls)))
        .retry(fast_policy(2))
        .shared_cache(Arc::clone(&cache))
        .build();
    let opts = GenOptions::default();
    for round in 1..=2 {
        let err = stack.call("q", &opts).expect_err("the leaf always fails");
        assert_eq!(err.kind, TransportErrorKind::Status(500));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2 * round,
            "round {round} re-ran the full retry budget — nothing was memoized"
        );
    }
    assert_eq!(cache.stats().insertions, 0, "errors never enter the cache");
    assert_eq!(cache.stats().hits, 0);

    // Misordered stack: Retry(Cache(leaf)), composed by hand since the
    // typestate builder refuses to. The ordering contract flags it...
    let calls = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(CompletionCache::in_memory(16));
    let misordered = RetryLayer::new(fast_policy(2)).layer(
        CacheLayer::with_cache(Arc::clone(&cache)).layer(make_dead_leaf(Arc::clone(&calls))),
    );
    let tags = stack_of(&misordered);
    assert_eq!(tags, vec!["retry", "cache", "fn"]);
    let violation = validate_stack(&tags).expect_err("cache inside retry is a contract violation");
    assert!(violation.contains("cache sits inside retry"), "{violation}");

    // ... and even misordered, the never-memoize-errors property holds:
    // every attempt goes through the cache as a fresh miss.
    let err = misordered.call("q", &opts).expect_err("still dead");
    assert_eq!(err.kind, TransportErrorKind::Status(500));
    assert_eq!(calls.load(Ordering::SeqCst), 2);
    assert_eq!(cache.stats().insertions, 0);
    assert_eq!(
        cache.stats().misses,
        2,
        "the misordered cache pays one lookup per *attempt* — the pathology the contract bans"
    );
}

/// One request through the full builder stack against a live server: every
/// layer's spans and annotations — including the failed attempt and the
/// server-side handling — share one trace.
#[test]
fn one_trace_spans_every_layer_and_the_retried_attempt() {
    let _guard = global_observability_lock();
    let flight = Arc::new(FlightRecorder::new(64));
    recorder::install(Arc::clone(&flight));

    let registry = Arc::new(obs::MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 7),
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Http500]),
    )
    .expect("server starts");
    let stack = StackBuilder::over(HttpLlmClient::new(server.address(), "gpt-4"))
        .retry(fast_policy(3))
        .cache(16)
        .metrics()
        .trace()
        .build();
    assert_eq!(
        stack_of(&stack),
        vec!["trace", "metrics", "cache", "retry", "http"]
    );

    stack
        .call(&prompt(1), &GenOptions::default())
        .expect("retry absorbs the injected 500");

    let record = flight
        .recent(16)
        .into_iter()
        .find(|r| r.root == "llm.request")
        .expect("the request span was recorded as a trace root");
    assert!(record.has_annotation("cache", "miss"), "{record:?}");
    assert!(record.has_annotation("retry", "1"), "{record:?}");
    assert!(record.has_annotation("retry_outcome", "recovered"));
    let attempts = record.spans_named("llm.attempt");
    assert_eq!(
        attempts.len(),
        2,
        "the 500 and the recovery share the trace"
    );
    let handled = record.spans_named("server.handle");
    assert_eq!(handled.len(), 2, "both attempts reached the server");
    let attempt_ids: Vec<u64> = attempts.iter().map(|s| s.span_id).collect();
    for span in &handled {
        let parent = span.parent.expect("server spans import the client parent");
        assert!(
            attempt_ids.contains(&parent),
            "server span parented outside the client attempts: {span:?}"
        );
    }
    assert_eq!(record.spans_named("cache.lookup").len(), 1);

    recorder::disable();
}

/// The refactor's non-regression contract: driving the *pre-layer* wrapper
/// API (cached client over resilient client over HTTP client) touches
/// exactly the metric names it touched before the middleware rewrite —
/// dashboards and the eval runner read these by name.
#[test]
fn shim_path_metric_names_are_byte_identical() {
    let _guard = global_observability_lock();
    let names_before: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();

    // Scenario 1: a 500-then-clean request through the full shim stack,
    // then the identical request again (a cache hit).
    let registry = Arc::new(obs::MetricsRegistry::new());
    let server = CompletionServer::start_with_faults(
        SimLlm::new(ModelProfile::gpt_4(), 7),
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Http500]),
    )
    .expect("server starts");
    let client = CachedLlmClient::new(
        ResilientLlmClient::new(
            HttpLlmClient::new(server.address(), "gpt-4"),
            fast_policy(3),
        ),
        64,
    );
    let opts = GenOptions::default();
    client
        .try_complete_with(&prompt(1), &opts)
        .expect("retry absorbs the 500");
    client
        .try_complete_with(&prompt(1), &opts)
        .expect("repeat is a cache hit");
    drop(server); // joins the workers, so server-side spans are closed

    // Scenario 2: a dead endpoint without retries — the error-attribution
    // counters.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let dead = ResilientLlmClient::new(
        HttpLlmClient::new(dead_addr, "gpt-4"),
        RetryPolicy::no_retry(),
    );
    dead.try_complete_with(&prompt(2), &opts)
        .expect_err("nobody listens there");

    let names_after: std::collections::BTreeMap<String, u64> = obs::global()
        .counters()
        .into_iter()
        .chain(
            obs::global()
                .histograms()
                .into_iter()
                .map(|(name, summary)| (name, summary.count)),
        )
        .collect();
    let mut touched: Vec<&str> = names_after
        .iter()
        .filter(|(name, value)| names_before.get(*name) != Some(value))
        .map(|(name, _)| name.as_str())
        .collect();
    touched.sort_unstable();

    // The golden surface, unchanged since the concrete-wrapper era. A new
    // name appearing here is a dashboard-breaking change; treat any edit
    // to this list as a compatibility decision, not a test fix.
    assert_eq!(
        touched,
        vec![
            "cache.hits",
            "cache.insertions",
            "cache.lookup.duration_us",
            "cache.misses",
            "http.conn_reused",
            "http.connections_opened",
            "llm.attempt.duration_us",
            "llm.error.transport",
            "llm.errors_total",
            "llm.request.duration_us",
            "llm.retries_total",
            "llm.retry_success_total",
            "server.handle.duration_us",
        ],
        "the serving path's metric-name surface drifted"
    );
}
