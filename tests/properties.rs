//! Property-based tests over the core language and data structures.
//!
//! Gated behind the `proptest` feature: the `proptest` registry crate
//! cannot resolve in the offline build environment, so this suite only
//! compiles when the feature is enabled *and* the dev-dependency has been
//! restored (see the note in the workspace Cargo.toml).
#![cfg(feature = "proptest")]

use nl2vis::data::{Json, Value};
use nl2vis::query::ast::*;
use nl2vis::query::canon::{canonicalize, exact_match};
use nl2vis::query::parser::parse;
use nl2vis::query::printer::print;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not reserved", |s| {
        ![
            "visualize",
            "select",
            "from",
            "join",
            "on",
            "where",
            "bin",
            "by",
            "group",
            "order",
            "and",
            "or",
            "not",
            "in",
            "asc",
            "desc",
            "true",
            "false",
            "count",
            "sum",
            "avg",
            "min",
            "max",
            "mean",
            "x",
            "y",
        ]
        .contains(&s.as_str())
    })
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(table, column)| ColumnRef { table, column })
}

fn chart() -> impl Strategy<Value = ChartType> {
    prop_oneof![
        Just(ChartType::Bar),
        Just(ChartType::Pie),
        Just(ChartType::Line),
        Just(ChartType::Scatter),
    ]
}

fn agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn select_expr() -> impl Strategy<Value = SelectExpr> {
    prop_oneof![
        column_ref().prop_map(SelectExpr::Column),
        (agg(), proptest::option::of(column_ref()))
            .prop_map(|(func, arg)| SelectExpr::Agg { func, arg }),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i64::from(i))),
        (-1000i32..1000, 1u8..100)
            .prop_map(|(n, d)| Literal::Float(f64::from(n) + f64::from(d) / 100.0)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Literal::Text),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn predicate() -> impl Strategy<Value = Predicate> {
    let atom = prop_oneof![
        (column_ref(), cmp_op(), literal()).prop_map(|(col, op, value)| Predicate::Cmp {
            col,
            op,
            value
        }),
        (column_ref(), any::<bool>(), column_ref(), ident()).prop_map(
            |(col, negated, select, from)| Predicate::InSubquery {
                col,
                negated,
                subquery: SubQuery {
                    select,
                    from,
                    filter: None
                },
            }
        ),
    ];
    atom.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn bin_unit() -> impl Strategy<Value = BinUnit> {
    prop_oneof![
        Just(BinUnit::Year),
        Just(BinUnit::Month),
        Just(BinUnit::Weekday),
        Just(BinUnit::Quarter),
    ]
}

fn order_by() -> impl Strategy<Value = OrderBy> {
    (
        prop_oneof![
            Just(OrderTarget::X),
            Just(OrderTarget::Y),
            column_ref().prop_map(OrderTarget::Column),
        ],
        prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)],
    )
        .prop_map(|(target, dir)| OrderBy { target, dir })
}

prop_compose! {
    fn vql_query()(
        chart in chart(),
        x in select_expr(),
        y in select_expr(),
        from in ident(),
        join in proptest::option::of((ident(), column_ref(), column_ref())),
        filter in proptest::option::of(predicate()),
        bin in proptest::option::of((column_ref(), bin_unit())),
        group in proptest::collection::vec(column_ref(), 0..3),
        order in proptest::option::of(order_by()),
    ) -> VqlQuery {
        VqlQuery {
            chart,
            x,
            y,
            from,
            join: join.map(|(table, left, right)| Join { table, left, right }),
            filter,
            bin: bin.map(|(column, unit)| Bin { column, unit }),
            group_by: group,
            order,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printer emits text the parser maps back to the same AST.
    #[test]
    fn print_parse_roundtrip(q in vql_query()) {
        let text = print(&q);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("printed query failed to reparse: `{text}`: {e}"));
        prop_assert_eq!(&q, &reparsed);
    }

    /// Canonicalization is idempotent.
    #[test]
    fn canonicalize_idempotent(q in vql_query()) {
        let once = canonicalize(&q);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Exact match is reflexive and invariant under re-printing.
    #[test]
    fn exact_match_reflexive(q in vql_query()) {
        prop_assert!(exact_match(&q, &q));
        let reparsed = parse(&print(&q)).unwrap();
        prop_assert!(exact_match(&q, &reparsed));
    }

    /// Commuting AND/OR operands preserves exact match.
    #[test]
    fn predicate_commutativity(
        mut q in vql_query(),
        a in predicate(),
        b in predicate(),
        conj in any::<bool>(),
    ) {
        let (p1, p2) = if conj {
            (
                Predicate::And(Box::new(a.clone()), Box::new(b.clone())),
                Predicate::And(Box::new(b), Box::new(a)),
            )
        } else {
            (
                Predicate::Or(Box::new(a.clone()), Box::new(b.clone())),
                Predicate::Or(Box::new(b), Box::new(a)),
            )
        };
        q.filter = Some(p1);
        let mut q2 = q.clone();
        q2.filter = Some(p2);
        prop_assert!(exact_match(&q, &q2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON serialization round-trips through the parser.
    #[test]
    fn json_roundtrip(v in json_value()) {
        let compact = v.to_compact();
        let reparsed = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("bad json `{compact}`: {e}"));
        prop_assert_eq!(&v, &reparsed);
        // Pretty printing parses back too.
        let pretty = v.to_pretty();
        prop_assert_eq!(&v, &Json::parse(&pretty).unwrap());
    }

    /// Value ordering is a total order (antisymmetric + transitive on samples).
    #[test]
    fn value_total_order(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The executor is total: any syntactically valid query against a real
    /// database either executes or returns a typed error — it never panics,
    /// and successful results are well-formed.
    #[test]
    fn executor_never_panics(q in vql_query()) {
        use nl2vis::corpus::domains::all_domains;
        use nl2vis::corpus::generate::instantiate;
        use nl2vis::data::Rng;
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(11));
        match nl2vis::query::execute(&q, &db) {
            Ok(result) => {
                for (x, y, s) in &result.rows {
                    let _ = (x.render(), y.render());
                    if result.series_label.is_none() {
                        prop_assert!(s.is_none());
                    }
                }
                // Whatever executes also renders everywhere.
                let _ = nl2vis::vega::svg::render_svg(&result);
                let _ = nl2vis::vega::ascii::render_ascii(&result);
                let spec = nl2vis::vega::to_vega_lite(&q, &result);
                prop_assert!(Json::parse(&spec.to_compact()).is_ok());
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }

    /// Corruption keeps queries printable and reparseable (the simulated
    /// LLM's output is always lexically valid VQL).
    #[test]
    fn corruption_preserves_printability(q in vql_query(), seed in any::<u64>()) {
        use nl2vis::corpus::domains::all_domains;
        use nl2vis::corpus::generate::instantiate;
        use nl2vis::data::Rng;
        use nl2vis::llm::recover::RecoveredSchema;
        let db = instantiate(&all_domains()[1], 0, &mut Rng::new(3));
        let schema = RecoveredSchema::from_database(&db);
        let mut corrupted = q.clone();
        nl2vis::llm::corrupt_query(&mut corrupted, &schema, 0.9, 1.0, &mut Rng::new(seed));
        let printed = nl2vis::query::printer::print(&corrupted);
        nl2vis::query::parse(&printed)
            .unwrap_or_else(|e| panic!("corrupted query unparseable `{printed}`: {e}"));
    }
}

fn json_value() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1_000_000i64..1_000_000).prop_map(|n| Json::Number(n as f64)),
        (-1000i32..1000, 1u8..100)
            .prop_map(|(n, d)| Json::Number(f64::from(n) + f64::from(d) / 128.0)),
        "[ -~]{0,16}".prop_map(Json::String),
        "\\PC{0,8}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4)
                .prop_map(|members| { Json::Object(members) }),
        ]
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        (1990i32..2030, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| {
            Value::Date(nl2vis::data::value::Date::new(y, m, d).unwrap())
        }),
    ]
}
