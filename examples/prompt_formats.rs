//! RQ1 in miniature: serialize the same table under every strategy of the
//! paper's Figure 4, show the prompts, and compare whether the model solves
//! the same question under each.
//!
//! ```text
//! cargo run --example prompt_formats
//! ```

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::prelude::*;
use nl2vis::prompt::build_prompt;
use nl2vis::query::canon::exact_match;

fn main() {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    // Pick a hard test example so formats can differ.
    let example = corpus
        .examples
        .iter()
        .find(|e| e.hardness == Hardness::Hard && !e.is_join)
        .expect("a hard example");
    let db = corpus.catalog.database(&example.db).unwrap();

    println!("Q: {}", example.nl);
    println!(
        "gold VQL: {}\n",
        nl2vis::query::printer::print(&example.vql)
    );

    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    println!(
        "{:<20} {:>7} {:>7}  prediction",
        "format", "tokens", "exact?"
    );
    println!("{}", "-".repeat(96));
    for format in PromptFormat::all() {
        let options = PromptOptions {
            format,
            ..Default::default()
        };
        let prompt = build_prompt(&options, db, &example.nl, &[], |_: &Example| unreachable!());
        let completion = llm.complete(&prompt.text);
        let verdict = nl2vis::llm::extract_vql(&completion)
            .and_then(|t| nl2vis::query::parse(t).ok())
            .map(|pred| exact_match(&pred, &example.vql));
        println!(
            "{:<20} {:>7} {:>7}  {}",
            format.name(),
            prompt.tokens,
            match verdict {
                Some(true) => "yes",
                Some(false) => "no",
                None => "n/a",
            },
            completion.chars().take(72).collect::<String>()
        );
    }

    // Show one serialization of each family in full.
    for format in [
        PromptFormat::ColumnList,
        PromptFormat::Table2Nl,
        PromptFormat::Table2Json,
        PromptFormat::Table2Code,
    ] {
        println!(
            "\n=== {} ===\n{}",
            format.name(),
            format.serialize(db, &example.nl)
        );
    }
}
