//! Bring your own data: load CSV text into a database (column types
//! inferred) and visualize it with natural language.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use nl2vis::data::database_from_csv;
use nl2vis::prelude::*;

const ORDERS_CSV: &str = "\
city,amount,order_date,express
Lisbon,120.5,2024-01-03,true
Oslo,89.0,2024-01-15,false
Lisbon,230.25,2024-02-02,true
Kyoto,45.0,2024-02-20,false
Oslo,310.75,2024-03-05,true
Kyoto,150.0,2024-03-18,false
Lisbon,75.5,2024-04-01,true
";

fn main() {
    let db =
        database_from_csv("orders_db", "retail", &[("orders", ORDERS_CSV)]).expect("CSV loads");
    println!("loaded `{}`: {} rows", db.name(), db.total_rows());
    for c in &db.table("orders").unwrap().def.columns {
        println!("  {} : {}", c.name, c.dtype);
    }
    println!();

    let pipeline = Pipeline::new("gpt-4", 3);
    for question in [
        "Show a bar chart of the total amount for each city.",
        "Draw a line chart of the number of orders, binned by month.",
        "Show a pie chart of the number of orders for each city where express is true.",
    ] {
        println!("Q: {question}");
        match pipeline.run(&db, question) {
            Ok(vis) => {
                println!("VQL: {}", nl2vis::query::printer::print(&vis.vql));
                println!("{}", vis.ascii());
            }
            Err(e) => println!("  failed: {e}\n"),
        }
    }
}
