//! The paper drives its models through the OpenAI HTTP API; this example
//! serves the simulated model on localhost and runs the pipeline over the
//! wire.
//!
//! ```text
//! cargo run --example http_server
//! ```

use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::prelude::*;

fn main() {
    // Serve a simulated gpt-4 on an ephemeral local port.
    let server = CompletionServer::start(SimLlm::new(ModelProfile::gpt_4(), 99))
        .expect("server starts");
    println!("completion server listening on http://{}", server.address());

    // A database to visualize.
    let mut schema = DatabaseSchema::new("fleet", "logistics");
    schema.tables.push(TableDef::new(
        "shipment",
        vec![
            ColumnDef::new("destination", DataType::Text),
            ColumnDef::new("weight_kg", DataType::Float),
        ],
    ));
    let mut db = Database::new(schema);
    for (dest, w) in [("Lisbon", 12.5), ("Oslo", 30.0), ("Lisbon", 7.25), ("Kyoto", 18.0)] {
        db.insert("shipment", vec![dest.into(), Value::Float(w)]).unwrap();
    }

    // The pipeline talks HTTP — swap the address for a real endpoint and
    // nothing else changes.
    let client = HttpLlmClient::new(server.address(), "gpt-4");
    let pipeline = Pipeline::with_client(Box::new(client));
    let vis = pipeline
        .run(&db, "Draw a pie chart of the total weight kg for each destination.")
        .expect("visualization over HTTP");

    println!("\nVQL: {}", nl2vis::query::printer::print(&vis.vql));
    println!("\n{}", vis.ascii());
    println!("(server shuts down when this process exits)");
}
