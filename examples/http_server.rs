//! The paper drives its models through the OpenAI HTTP API; this example
//! serves the simulated model on localhost, runs the pipeline over the
//! wire, and then scrapes the server's own telemetry: `GET /healthz` for
//! liveness and `GET /metrics` for the request counters and latency
//! percentiles the observability layer recorded.
//!
//! ```text
//! cargo run --example http_server
//! ```

use nl2vis::llm::http::{CompletionServer, HttpLlmClient};
use nl2vis::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A bare HTTP GET, returning the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    String::from_utf8_lossy(&body).to_string()
}

fn main() {
    // Serve a simulated gpt-4 on an ephemeral local port.
    let server =
        CompletionServer::start(SimLlm::new(ModelProfile::gpt_4(), 99)).expect("server starts");
    println!("completion server listening on http://{}", server.address());
    println!("healthz: {}", http_get(server.address(), "/healthz"));

    // A database to visualize.
    let mut schema = DatabaseSchema::new("fleet", "logistics");
    schema.tables.push(TableDef::new(
        "shipment",
        vec![
            ColumnDef::new("destination", DataType::Text),
            ColumnDef::new("weight_kg", DataType::Float),
        ],
    ));
    let mut db = Database::new(schema);
    for (dest, w) in [
        ("Lisbon", 12.5),
        ("Oslo", 30.0),
        ("Lisbon", 7.25),
        ("Kyoto", 18.0),
    ] {
        db.insert("shipment", vec![dest.into(), Value::Float(w)])
            .unwrap();
    }

    // The pipeline talks HTTP — swap the address for a real endpoint and
    // nothing else changes.
    let client = HttpLlmClient::new(server.address(), "gpt-4");
    let pipeline = Pipeline::with_client(Box::new(client));
    for question in [
        "Draw a pie chart of the total weight kg for each destination.",
        "Show a bar chart of the number of shipments for each destination.",
        "Draw a bar chart of the average weight kg for each destination.",
    ] {
        let vis = pipeline
            .run(&db, question)
            .expect("visualization over HTTP");
        println!("\nQ: {question}");
        println!("VQL: {}", nl2vis::query::printer::print(&vis.vql));
        println!("{}", vis.ascii());
    }

    // The server metered every request; `GET /metrics` exposes the
    // registry as plain text — llm.requests_total, per-status counters,
    // and the llm.request_latency_us percentiles.
    println!("GET /metrics after {} completions:\n", 3);
    println!("{}", http_get(server.address(), "/metrics"));
    println!("(server shuts down when this process exits)");
}
