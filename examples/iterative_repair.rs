//! RQ3 in miniature: find cases the base model fails, then apply the four
//! iterative-updating strategies (chain-of-thought, role-play, self-repair,
//! code-interpreter) and watch failures get rescued.
//!
//! ```text
//! cargo run --example iterative_repair
//! ```

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::eval::optimize::{apply_strategy, Strategy};
use nl2vis::eval::runner::{evaluate_llm, LlmEvalConfig};
use nl2vis::prelude::*;

fn main() {
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let split = corpus.split_cross_domain(1);

    // Base run: davinci-003, 5-shot, Table2SQL (cross-domain).
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    let config = LlmEvalConfig {
        shots: 5,
        ..Default::default()
    };
    let report = evaluate_llm(&llm, &corpus, &split.train, &split.test, &config, Some(80));
    let failed = report.failed_ids();
    println!(
        "base run: {} evaluated, exact {:.2}, exec {:.2}, {} failures\n",
        report.overall().n(),
        report.overall().exact(),
        report.overall().exec(),
        failed.len()
    );

    // Walk the first few failures through each strategy.
    for id in failed.iter().take(4) {
        let example = corpus.example(*id).unwrap();
        println!("Q: {}", example.nl);
        println!("gold: {}", nl2vis::query::printer::print(&example.vql));
        let base_completion = report
            .results
            .iter()
            .find(|r| r.id == *id)
            .and_then(|r| r.completion.clone())
            .unwrap_or_default();
        println!("base: {}", base_completion.lines().last().unwrap_or(""));
        for strategy in Strategy::all() {
            let outcome = apply_strategy(strategy, &corpus, &split.train, example, &config, 11);
            println!(
                "  {:<16} ({:<17}) -> exact {} exec {}",
                strategy.name(),
                strategy.model().name,
                outcome.exact,
                outcome.exec
            );
        }
        println!();
    }
}
