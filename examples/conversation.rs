//! Conversational NL2VIS (the paper's §6.2 future-work direction): one
//! initial request, then a chain of follow-up revisions, with undo.
//!
//! ```text
//! cargo run --release --example conversation
//! ```

use nl2vis::prelude::*;

fn main() {
    let mut schema = DatabaseSchema::new("club", "sports");
    schema.tables.push(TableDef::new(
        "technician",
        vec![
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("team", DataType::Text),
            ColumnDef::new("age", DataType::Int),
            ColumnDef::new("salary", DataType::Float),
        ],
    ));
    let mut db = Database::new(schema);
    for (n, t, a, s) in [
        ("ann", "NYY", 36, 88_000.0),
        ("bob", "BOS", 33, 72_000.0),
        ("cat", "BOS", 29, 95_000.0),
        ("dan", "LAD", 41, 64_000.0),
        ("eve", "BOS", 30, 81_000.0),
        ("fay", "NYY", 27, 59_000.0),
    ] {
        db.insert(
            "technician",
            vec![n.into(), t.into(), Value::Int(a), Value::Float(s)],
        )
        .unwrap();
    }

    let pipeline = Pipeline::new("gpt-4", 1);
    let mut session = Conversation::new(&pipeline, &db);

    for utterance in [
        "Show a bar chart of the number of technicians for each team.",
        "make it a pie chart",
        "only technicians with age over 30",
        "switch to the average salary",
        "undo",
    ] {
        println!(">>> {utterance}");
        match session.say(utterance) {
            Ok(turn) => {
                println!(
                    "[{:?}] VQL: {}",
                    turn.kind,
                    nl2vis::query::printer::print(&turn.visualization.vql)
                );
                println!("{}", turn.visualization.ascii());
            }
            Err(e) => println!("  failed: {e}\n"),
        }
    }
    println!("turns in history: {}", session.history().len());
}
