//! Quickstart: build a table, ask a question in English, get a chart.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nl2vis::prelude::*;

fn main() {
    // 1. A grounded table (the paper's Example 1 uses a technician roster).
    let mut schema = DatabaseSchema::new("club", "sports");
    schema.tables.push(TableDef::new(
        "technician",
        vec![
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("team", DataType::Text),
            ColumnDef::new("age", DataType::Int),
        ],
    ));
    let mut db = Database::new(schema);
    for (name, team, age) in [
        ("ann", "NYY", 36),
        ("bob", "BOS", 33),
        ("cat", "BOS", 29),
        ("dan", "LAD", 41),
        ("eve", "BOS", 30),
        ("fay", "NYY", 27),
    ] {
        db.insert(
            "technician",
            vec![name.into(), team.into(), Value::Int(age)],
        )
        .unwrap();
    }

    // 2. The pipeline over a simulated gpt-4.
    let pipeline = Pipeline::new("gpt-4", 42);

    // 3. Natural language in; VQL, data, and charts out.
    let question =
        "Show a bar chart of the number of technicians for each team, excluding the team \"NYY\", \
         rank the x-axis in ascending order.";
    let vis = pipeline.run(&db, question).expect("visualization");

    println!("Q: {question}\n");
    println!("VQL: {}\n", nl2vis::query::printer::print(&vis.vql));
    println!("{}\n", vis.ascii());
    println!("Vega-Lite spec:\n{}", vis.vega_lite().to_pretty());

    let path = std::env::temp_dir().join("nl2vis_quickstart.svg");
    std::fs::write(&path, vis.svg()).expect("write svg");
    println!("\nSVG written to {}", path.display());
}
