//! Few-shot analytics over a generated benchmark database: the workload the
//! paper's introduction motivates — an analyst exploring a multi-table
//! database conversationally, with in-context demonstrations drawn from a
//! training corpus.
//!
//! ```text
//! cargo run --example sports_analytics
//! ```

use nl2vis::corpus::{Corpus, CorpusConfig};
use nl2vis::prelude::*;
use nl2vis::prompt::select::select_by_similarity;

fn main() {
    // Build the benchmark corpus (databases + training examples).
    let corpus = Corpus::build(&CorpusConfig::small(7));
    let db = corpus
        .catalog
        .database("baseball_club")
        .expect("sports database");
    println!(
        "database `{}` ({} tables, {} rows total)\n",
        db.name(),
        db.tables().len(),
        db.total_rows()
    );

    // Training pool for demonstrations: everything *not* on this database
    // (the paper's cross-domain regime).
    let pool: Vec<&Example> = corpus
        .examples
        .iter()
        .filter(|e| e.db != db.name())
        .collect();

    let mut pipeline = Pipeline::new("text-davinci-003", 20240115);
    pipeline.options.format = PromptFormat::Table2Sql;

    let questions = [
        "Show a bar chart of the number of technicians for each team.",
        "Draw a pie chart of the average salary per team.",
        "Plot a line chart of the number of technicians hired, binned by year.",
        "Display a scatter plot of salary against age in the technician table.",
        "Show a bar chart of the total value for each team combining the machine table \
         with the technician records.",
    ];

    for question in questions {
        let demos = select_by_similarity(&pool, question, 5);
        let result = pipeline.run_with_demos(db, question, &demos, |d| {
            corpus.catalog.database(&d.db).expect("demo database")
        });
        println!("Q: {question}");
        match result {
            Ok(vis) => {
                println!("VQL: {}", nl2vis::query::printer::print(&vis.vql));
                println!("{}", vis.ascii());
            }
            Err(e) => println!("  failed: {e}"),
        }
        println!();
    }
}
