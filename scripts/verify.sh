#!/usr/bin/env bash
# Local verification gate: the tier-1 checks plus formatting and lints.
#
#   scripts/verify.sh            # run everything available
#
# Steps that need a missing toolchain component (rustfmt, clippy) are
# skipped with a notice instead of failing, so the script is useful both
# in full dev environments and in minimal/offline containers. Each step
# reports its wall-clock so a slow step is visible at a glance.
set -u

cd "$(dirname "$0")/.."

failures=0
run() {
    local name="$1"
    shift
    echo "==> ${name}"
    local started elapsed
    started=$(date +%s)
    if "$@"; then
        elapsed=$(( $(date +%s) - started ))
        echo "==> ${name}: ok (${elapsed}s)"
    else
        elapsed=$(( $(date +%s) - started ))
        echo "==> ${name}: FAILED (${elapsed}s)"
        failures=$((failures + 1))
    fi
    echo
}

# Tier 1: the repo must build and its tests must pass.
run "cargo build --release" cargo build --release
run "cargo test" cargo test -q

# Transport resilience: the fault-injection suites, run explicitly so a
# hang (lost deadline, missed retry) fails loudly here rather than
# stalling the full test run.
run "fault injection (llm)" cargo test -q -p nl2vis-llm --test fault_injection
run "fault injection (eval)" cargo test -q -p nl2vis-eval --test transport

# Serving path: keep-alive connection reuse and the completion cache's
# end-to-end acceptance (repeat eval ≥90% hits, fewer connections,
# errors never cached), run explicitly for the same loud-failure reason.
run "keep-alive (llm)" cargo test -q -p nl2vis-llm --test keepalive
run "serving cache (cache)" cargo test -q -p nl2vis-cache --test serving

# Bounded server runtime: admission control (429 shedding with
# Retry-After), in-flight bounded by the worker pool, retry-through-shed
# recovery, and graceful drain.
run "server runtime (llm)" cargo test -q -p nl2vis-llm --test runtime

# Layered stack invariants: recovered retries cache exactly once,
# failures are never memoized in any layer order, one trace spans every
# layer, and the metric-name surface matches the pre-layer wrappers.
run "layering (root)" cargo test -q -p nl2vis --test layering

# End-to-end tracing: cross-process trace propagation, the flight
# recorder's retention contract, and the instrumentation-changes-nothing
# guarantee.
run "tracing (root)" cargo test -q -p nl2vis --test tracing

# Sustained-load smoke: a short reduced-thread loadgen run against a
# self-hosted server (open loop, coordinated-omission corrected). Kept
# under ~10 s; writes its snapshot under target/ so it never clobbers a
# committed trajectory file.
run "loadgen smoke" cargo run -q -p nl2vis-loadgen --release -- \
    --threads=4 --duration=3 --warmup=1 --rate=open:300 --skew=zipf:1.1 \
    --prompts=64 --report=0 --out=target/BENCH_load_smoke.json

# High-connection smoke: 256 closed-loop keep-alive clients for 3 s. The
# event-driven core must hold hundreds of sockets on a handful of
# serving threads, and the Zipf-skewed prompt keys drive the batching
# path. Kept under ~10 s like the open-loop smoke.
run "loadgen smoke (256 conns)" cargo run -q -p nl2vis-loadgen --release -- \
    --threads=256 --duration=3 --warmup=1 --rate=closed --skew=zipf:1.1 \
    --prompts=64 --report=0 --out=target/BENCH_load_smoke_256.json

# Router smoke: 16 clients through the prompt-affinity router over a
# 2-replica self-hosted fleet, with a 5% 40ms heavy tail so hedges
# demonstrably fire. Asserts the run completed clean, the shards
# answered, and at least one hedge fired.
run "loadgen smoke (2-replica router)" cargo run -q -p nl2vis-loadgen --release -- \
    --threads=16 --duration=3 --warmup=1 --rate=closed --skew=zipf:1.1 \
    --prompts=256 --cache=256 --service-ms=2 --tail=0.05:40 \
    --replicas=2 --hedge-ms=10 --report=0 --out=target/BENCH_load_smoke_router.json
if [ -f target/BENCH_load_smoke_router.json ]; then
    run "router smoke assertions" python3 - <<'EOF'
import json, sys
doc = json.load(open("target/BENCH_load_smoke_router.json"))
run = doc["runs"][0]
router = run.get("router")
ok = True
def check(cond, msg):
    global ok
    print(("ok  " if cond else "FAIL") + " " + msg)
    ok = ok and cond
check(run["replicas"] == 2, "run routed over 2 replicas")
check(run["errors"] == 0, "no transport errors through the router")
check(router is not None, "router stats recorded in the snapshot")
if router:
    check(router["shard_hits"] > 0, "replica cache shards answered hits")
    check(router["hedges_fired"] > 0,
          "hedges fired against the injected tail (got %d)" % router["hedges_fired"])
sys.exit(0 if ok else 1)
EOF
fi

# Tiered-routing smoke: boots the completion server on a two-tier stack
# whose cheap tier deliberately answers prose, runs the in-domain eval
# over HTTP, and asserts (a) the gate escalated past the bad tier and
# (b) the tiered scores are byte-identical to a direct strong-tier-only
# run — a validation-failed answer never leaked into grading.
tiered_smoke() {
    cargo run -q -p nl2vis-bench --release --bin tiered_smoke \
        > target/tiered_smoke.json || return 1
    python3 - <<'EOF'
import json, sys
doc = json.load(open("target/tiered_smoke.json"))
ok = True
def check(cond, msg):
    global ok
    print(("ok  " if cond else "FAIL") + " " + msg)
    ok = ok and cond
check(doc["escalations_total"] > 0,
      "route.tier.escalations_total > 0 (got %d)" % doc["escalations_total"])
check(doc["validation_failures_total"] == doc["bad_tier_requests"],
      "the gate rejected every bad-tier answer")
check(doc["scores_identical"] is True,
      "tiered scores %r match strong-only %r"
      % (doc["tiered"], doc["strong_only"]))
sys.exit(0 if ok else 1)
EOF
}
run "tiered routing smoke" tiered_smoke

# Trace stitching: the /trace/<id> acceptance demo — a hedged request's
# primary and hedge attempts land in one trace tree with the winner
# marked.
run "router trace stitching" cargo test -q -p nl2vis-router --test tracing

# Fleet plane (in-process): merged metrics exactness, SLO publication,
# and cross-replica trace stitching through the FleetServer.
run "fleet plane (router)" cargo test -q -p nl2vis-router --test fleet

# Fleet plane (multi-process): two REAL server processes — separate
# flight recorders, separate registries, colliding span-id counters —
# behind the fleet observer. Asserts /fleet/metrics is a mergeable
# snapshot whose request count is the exact per-replica sum, /fleet/stats
# carries SLO burn rates, and the hedged request's /fleet/trace/<id>
# stitches spans from at least two server processes.
fleet_smoke() {
    cargo build -q --release -p nl2vis-router --bin fleet || return 1
    local bin=target/release/fleet
    local tmp
    tmp=$(mktemp -d) || return 1
    "$bin" serve --stall-ms=80 > "$tmp/slow.log" 2>&1 &
    local slow_pid=$!
    "$bin" serve > "$tmp/fast.log" 2>&1 &
    local fast_pid=$!
    local i
    for i in $(seq 50); do
        grep -q listening "$tmp/slow.log" 2>/dev/null \
            && grep -q listening "$tmp/fast.log" 2>/dev/null && break
        sleep 0.1
    done
    local slow_addr fast_addr
    slow_addr=$(awk '/listening/{print $2}' "$tmp/slow.log")
    fast_addr=$(awk '/listening/{print $2}' "$tmp/fast.log")
    "$bin" observe --replicas="$slow_addr,$fast_addr" > "$tmp/obs.log" 2>&1 &
    local obs_pid=$!
    for i in $(seq 100); do
        grep -q hedged_trace "$tmp/obs.log" 2>/dev/null && break
        sleep 0.1
    done
    local fleet_addr trace_id status
    fleet_addr=$(awk '/fleet listening/{print $3}' "$tmp/obs.log")
    trace_id=$(awk '/hedged_trace/{print $2}' "$tmp/obs.log")
    python3 - "$fleet_addr" "$trace_id" "$slow_addr" "$fast_addr" <<'EOF'
import json, sys, urllib.request
fleet, trace_id, slow, fast = sys.argv[1:5]
def get(addr, path):
    with urllib.request.urlopen(f"http://{addr}{path}", timeout=5) as r:
        return json.load(r)
ok = True
def check(cond, msg):
    global ok
    print(("ok  " if cond else "FAIL") + " " + msg)
    ok = ok and cond
a = get(slow, "/metrics.json")
b = get(fast, "/metrics.json")
merged = get(fleet, "/fleet/metrics")
check(merged.get("format") == "nl2vis.metrics.v1",
      "fleet metrics is itself a mergeable snapshot")
total = merged["counters"]["llm.requests_total"]
per = a["counters"]["llm.requests_total"] + b["counters"]["llm.requests_total"]
check(total == per and total > 0,
      "fleet request count %d == per-replica sum %d" % (total, per))
stats = get(fleet, "/fleet/stats")
check(stats.get("replicas_ok") == 2, "both replicas scraped clean")
check({s["name"] for s in stats.get("slo", [])} == {"latency", "availability"},
      "SLO burn rates present in /fleet/stats")
trace = get(fleet, f"/fleet/trace/{trace_id}")
check(trace.get("stitched") is True, "fleet trace is a stitched tree")
procs = set()
for source in trace.get("sources", []):
    procs.update(source.get("ids", []))
servers = sorted(p for p in procs if p != "router")
check(len(servers) >= 2,
      "stitched trace has spans from >=2 server processes: %s" % servers)
text = json.dumps(trace)
check(text.count('"server.handle"') >= 2,
      "each racer's server.handle present in the stitched tree")
sys.exit(0 if ok else 1)
EOF
    status=$?
    kill "$slow_pid" "$fast_pid" "$obs_pid" 2>/dev/null
    wait "$slow_pid" "$fast_pid" "$obs_pid" 2>/dev/null
    rm -rf "$tmp"
    return "$status"
}
run "fleet smoke (2 server processes)" fleet_smoke

# Perf trajectory: when a committed BENCH_load.json baseline exists,
# diff the smoke snapshot against it. Non-fatal — the smoke run uses a
# reduced config, so this is a warning trail, not a gate.
if [ -f BENCH_load.json ] && [ -f target/BENCH_load_smoke.json ]; then
    echo "==> bench_diff (non-fatal)"
    if scripts/bench_diff BENCH_load.json target/BENCH_load_smoke.json; then
        echo "==> bench_diff: no regressions flagged"
    else
        echo "==> bench_diff: WARNING — possible perf regression (see table above)"
    fi
    echo
else
    echo "==> bench_diff: skipped (no BENCH_load.json baseline)"
    echo
fi

# Formatting — skip gracefully if rustfmt isn't installed.
if cargo fmt --version >/dev/null 2>&1; then
    run "cargo fmt --check" cargo fmt --all -- --check
else
    echo "==> cargo fmt --check: skipped (rustfmt not installed)"
    echo
fi

# Lints — skip gracefully if clippy isn't installed.
if cargo clippy --version >/dev/null 2>&1; then
    run "cargo clippy" cargo clippy --all-targets -- -D warnings
else
    echo "==> cargo clippy: skipped (clippy not installed)"
    echo
fi

if [ "${failures}" -ne 0 ]; then
    echo "verify: ${failures} step(s) failed"
    exit 1
fi
echo "verify: all steps passed"
