/root/repo/target/debug/deps/nl2vis-168e3e7263e1d6de.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/libnl2vis-168e3e7263e1d6de.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
