/root/repo/target/debug/deps/nl2vis_vega-adf29a73730e1772.d: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

/root/repo/target/debug/deps/libnl2vis_vega-adf29a73730e1772.rmeta: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

crates/nl2vis-vega/src/lib.rs:
crates/nl2vis-vega/src/ascii.rs:
crates/nl2vis-vega/src/import.rs:
crates/nl2vis-vega/src/spec.rs:
crates/nl2vis-vega/src/svg.rs:
