/root/repo/target/debug/deps/nl2vis_prompt-0c857e15f3e4ed76.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/debug/deps/libnl2vis_prompt-0c857e15f3e4ed76.rlib: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/debug/deps/libnl2vis_prompt-0c857e15f3e4ed76.rmeta: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
