/root/repo/target/debug/deps/nl2vis_corpus-1af3e5dbd35d3ee2.d: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs

/root/repo/target/debug/deps/libnl2vis_corpus-1af3e5dbd35d3ee2.rmeta: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs

crates/nl2vis-corpus/src/lib.rs:
crates/nl2vis-corpus/src/corpus.rs:
crates/nl2vis-corpus/src/domains.rs:
crates/nl2vis-corpus/src/generate.rs:
crates/nl2vis-corpus/src/io.rs:
crates/nl2vis-corpus/src/pools.rs:
crates/nl2vis-corpus/src/realize.rs:
crates/nl2vis-corpus/src/synth.rs:
