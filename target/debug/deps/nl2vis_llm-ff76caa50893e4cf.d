/root/repo/target/debug/deps/nl2vis_llm-ff76caa50893e4cf.d: crates/nl2vis-llm/src/lib.rs crates/nl2vis-llm/src/client.rs crates/nl2vis-llm/src/fault.rs crates/nl2vis-llm/src/followup.rs crates/nl2vis-llm/src/http.rs crates/nl2vis-llm/src/link.rs crates/nl2vis-llm/src/profile.rs crates/nl2vis-llm/src/prompt_parse.rs crates/nl2vis-llm/src/recover.rs crates/nl2vis-llm/src/resilient.rs crates/nl2vis-llm/src/sim.rs crates/nl2vis-llm/src/understand.rs

/root/repo/target/debug/deps/libnl2vis_llm-ff76caa50893e4cf.rmeta: crates/nl2vis-llm/src/lib.rs crates/nl2vis-llm/src/client.rs crates/nl2vis-llm/src/fault.rs crates/nl2vis-llm/src/followup.rs crates/nl2vis-llm/src/http.rs crates/nl2vis-llm/src/link.rs crates/nl2vis-llm/src/profile.rs crates/nl2vis-llm/src/prompt_parse.rs crates/nl2vis-llm/src/recover.rs crates/nl2vis-llm/src/resilient.rs crates/nl2vis-llm/src/sim.rs crates/nl2vis-llm/src/understand.rs

crates/nl2vis-llm/src/lib.rs:
crates/nl2vis-llm/src/client.rs:
crates/nl2vis-llm/src/fault.rs:
crates/nl2vis-llm/src/followup.rs:
crates/nl2vis-llm/src/http.rs:
crates/nl2vis-llm/src/link.rs:
crates/nl2vis-llm/src/profile.rs:
crates/nl2vis-llm/src/prompt_parse.rs:
crates/nl2vis-llm/src/recover.rs:
crates/nl2vis-llm/src/resilient.rs:
crates/nl2vis-llm/src/sim.rs:
crates/nl2vis-llm/src/understand.rs:
