/root/repo/target/debug/deps/nl2vis_prompt-bc0b5c013229f97c.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/debug/deps/libnl2vis_prompt-bc0b5c013229f97c.rmeta: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
