/root/repo/target/debug/deps/nl2vis-6fb64bc63590e8b6.d: src/main.rs

/root/repo/target/debug/deps/nl2vis-6fb64bc63590e8b6: src/main.rs

src/main.rs:
