/root/repo/target/debug/deps/extensions-3c3b258e207a8182.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-3c3b258e207a8182.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
