/root/repo/target/debug/deps/paper_findings-c5a63972ce5fc9d8.d: tests/paper_findings.rs

/root/repo/target/debug/deps/paper_findings-c5a63972ce5fc9d8: tests/paper_findings.rs

tests/paper_findings.rs:
