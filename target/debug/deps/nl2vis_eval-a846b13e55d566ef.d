/root/repo/target/debug/deps/nl2vis_eval-a846b13e55d566ef.d: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_eval-a846b13e55d566ef.rmeta: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs Cargo.toml

crates/nl2vis-eval/src/lib.rs:
crates/nl2vis-eval/src/failure.rs:
crates/nl2vis-eval/src/metrics.rs:
crates/nl2vis-eval/src/optimize.rs:
crates/nl2vis-eval/src/runner.rs:
crates/nl2vis-eval/src/userstudy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
