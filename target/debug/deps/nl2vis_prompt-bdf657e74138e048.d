/root/repo/target/debug/deps/nl2vis_prompt-bdf657e74138e048.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/debug/deps/nl2vis_prompt-bdf657e74138e048: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
