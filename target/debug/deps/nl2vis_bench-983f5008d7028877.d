/root/repo/target/debug/deps/nl2vis_bench-983f5008d7028877.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-983f5008d7028877.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
