/root/repo/target/debug/deps/nl2vis_baselines-ddac7c3c97d701db.d: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/debug/deps/libnl2vis_baselines-ddac7c3c97d701db.rmeta: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

crates/nl2vis-baselines/src/lib.rs:
crates/nl2vis-baselines/src/chat2vis.rs:
crates/nl2vis-baselines/src/ncnet.rs:
crates/nl2vis-baselines/src/retrieval.rs:
crates/nl2vis-baselines/src/rgvisnet.rs:
crates/nl2vis-baselines/src/seq2vis.rs:
crates/nl2vis-baselines/src/t5.rs:
crates/nl2vis-baselines/src/transformer.rs:
