/root/repo/target/debug/deps/extensions-0213e14f725bb9e8.d: tests/extensions.rs

/root/repo/target/debug/deps/libextensions-0213e14f725bb9e8.rmeta: tests/extensions.rs

tests/extensions.rs:
