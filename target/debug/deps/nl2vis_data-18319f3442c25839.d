/root/repo/target/debug/deps/nl2vis_data-18319f3442c25839.d: crates/nl2vis-data/src/lib.rs crates/nl2vis-data/src/catalog.rs crates/nl2vis-data/src/csv.rs crates/nl2vis-data/src/database.rs crates/nl2vis-data/src/error.rs crates/nl2vis-data/src/json.rs crates/nl2vis-data/src/load.rs crates/nl2vis-data/src/rng.rs crates/nl2vis-data/src/schema.rs crates/nl2vis-data/src/table.rs crates/nl2vis-data/src/text.rs crates/nl2vis-data/src/value.rs

/root/repo/target/debug/deps/libnl2vis_data-18319f3442c25839.rmeta: crates/nl2vis-data/src/lib.rs crates/nl2vis-data/src/catalog.rs crates/nl2vis-data/src/csv.rs crates/nl2vis-data/src/database.rs crates/nl2vis-data/src/error.rs crates/nl2vis-data/src/json.rs crates/nl2vis-data/src/load.rs crates/nl2vis-data/src/rng.rs crates/nl2vis-data/src/schema.rs crates/nl2vis-data/src/table.rs crates/nl2vis-data/src/text.rs crates/nl2vis-data/src/value.rs

crates/nl2vis-data/src/lib.rs:
crates/nl2vis-data/src/catalog.rs:
crates/nl2vis-data/src/csv.rs:
crates/nl2vis-data/src/database.rs:
crates/nl2vis-data/src/error.rs:
crates/nl2vis-data/src/json.rs:
crates/nl2vis-data/src/load.rs:
crates/nl2vis-data/src/rng.rs:
crates/nl2vis-data/src/schema.rs:
crates/nl2vis-data/src/table.rs:
crates/nl2vis-data/src/text.rs:
crates/nl2vis-data/src/value.rs:
