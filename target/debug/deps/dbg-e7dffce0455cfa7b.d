/root/repo/target/debug/deps/dbg-e7dffce0455cfa7b.d: crates/nl2vis-bench/src/bin/dbg.rs

/root/repo/target/debug/deps/dbg-e7dffce0455cfa7b: crates/nl2vis-bench/src/bin/dbg.rs

crates/nl2vis-bench/src/bin/dbg.rs:
