/root/repo/target/debug/deps/end_to_end-bfe1b2eb1172854f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-bfe1b2eb1172854f.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
