/root/repo/target/debug/deps/end_to_end-66278d2e1548e07b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-66278d2e1548e07b: tests/end_to_end.rs

tests/end_to_end.rs:
