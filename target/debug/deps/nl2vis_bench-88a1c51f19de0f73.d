/root/repo/target/debug/deps/nl2vis_bench-88a1c51f19de0f73.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-88a1c51f19de0f73.rlib: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-88a1c51f19de0f73.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
