/root/repo/target/debug/deps/properties-185ccf3e6b7d4e4d.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-185ccf3e6b7d4e4d.rmeta: tests/properties.rs

tests/properties.rs:
