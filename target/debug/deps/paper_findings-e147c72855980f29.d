/root/repo/target/debug/deps/paper_findings-e147c72855980f29.d: tests/paper_findings.rs

/root/repo/target/debug/deps/libpaper_findings-e147c72855980f29.rmeta: tests/paper_findings.rs

tests/paper_findings.rs:
