/root/repo/target/debug/deps/fault_injection-eaff8d73ec6efd82.d: crates/nl2vis-llm/tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-eaff8d73ec6efd82.rmeta: crates/nl2vis-llm/tests/fault_injection.rs

crates/nl2vis-llm/tests/fault_injection.rs:
