/root/repo/target/debug/deps/nl2vis-93cddc5aa88c8d1e.d: src/main.rs

/root/repo/target/debug/deps/libnl2vis-93cddc5aa88c8d1e.rmeta: src/main.rs

src/main.rs:
