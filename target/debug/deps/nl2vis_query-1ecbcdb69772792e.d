/root/repo/target/debug/deps/nl2vis_query-1ecbcdb69772792e.d: crates/nl2vis-query/src/lib.rs crates/nl2vis-query/src/ast.rs crates/nl2vis-query/src/bind.rs crates/nl2vis-query/src/canon.rs crates/nl2vis-query/src/component.rs crates/nl2vis-query/src/error.rs crates/nl2vis-query/src/exec.rs crates/nl2vis-query/src/lexer.rs crates/nl2vis-query/src/parser.rs crates/nl2vis-query/src/printer.rs crates/nl2vis-query/src/sql.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_query-1ecbcdb69772792e.rmeta: crates/nl2vis-query/src/lib.rs crates/nl2vis-query/src/ast.rs crates/nl2vis-query/src/bind.rs crates/nl2vis-query/src/canon.rs crates/nl2vis-query/src/component.rs crates/nl2vis-query/src/error.rs crates/nl2vis-query/src/exec.rs crates/nl2vis-query/src/lexer.rs crates/nl2vis-query/src/parser.rs crates/nl2vis-query/src/printer.rs crates/nl2vis-query/src/sql.rs Cargo.toml

crates/nl2vis-query/src/lib.rs:
crates/nl2vis-query/src/ast.rs:
crates/nl2vis-query/src/bind.rs:
crates/nl2vis-query/src/canon.rs:
crates/nl2vis-query/src/component.rs:
crates/nl2vis-query/src/error.rs:
crates/nl2vis-query/src/exec.rs:
crates/nl2vis-query/src/lexer.rs:
crates/nl2vis-query/src/parser.rs:
crates/nl2vis-query/src/printer.rs:
crates/nl2vis-query/src/sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
