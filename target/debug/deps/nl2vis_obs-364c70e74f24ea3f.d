/root/repo/target/debug/deps/nl2vis_obs-364c70e74f24ea3f.d: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

/root/repo/target/debug/deps/nl2vis_obs-364c70e74f24ea3f: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

crates/nl2vis-obs/src/lib.rs:
crates/nl2vis-obs/src/registry.rs:
crates/nl2vis-obs/src/report.rs:
crates/nl2vis-obs/src/sink.rs:
crates/nl2vis-obs/src/span.rs:
