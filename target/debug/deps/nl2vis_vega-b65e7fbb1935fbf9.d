/root/repo/target/debug/deps/nl2vis_vega-b65e7fbb1935fbf9.d: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_vega-b65e7fbb1935fbf9.rmeta: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs Cargo.toml

crates/nl2vis-vega/src/lib.rs:
crates/nl2vis-vega/src/ascii.rs:
crates/nl2vis-vega/src/import.rs:
crates/nl2vis-vega/src/spec.rs:
crates/nl2vis-vega/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
