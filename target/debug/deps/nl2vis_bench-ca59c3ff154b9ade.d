/root/repo/target/debug/deps/nl2vis_bench-ca59c3ff154b9ade.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-ca59c3ff154b9ade.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
