/root/repo/target/debug/deps/nl2vis_query-b8f26ef49491c683.d: crates/nl2vis-query/src/lib.rs crates/nl2vis-query/src/ast.rs crates/nl2vis-query/src/bind.rs crates/nl2vis-query/src/canon.rs crates/nl2vis-query/src/component.rs crates/nl2vis-query/src/error.rs crates/nl2vis-query/src/exec.rs crates/nl2vis-query/src/lexer.rs crates/nl2vis-query/src/parser.rs crates/nl2vis-query/src/printer.rs crates/nl2vis-query/src/sql.rs

/root/repo/target/debug/deps/libnl2vis_query-b8f26ef49491c683.rmeta: crates/nl2vis-query/src/lib.rs crates/nl2vis-query/src/ast.rs crates/nl2vis-query/src/bind.rs crates/nl2vis-query/src/canon.rs crates/nl2vis-query/src/component.rs crates/nl2vis-query/src/error.rs crates/nl2vis-query/src/exec.rs crates/nl2vis-query/src/lexer.rs crates/nl2vis-query/src/parser.rs crates/nl2vis-query/src/printer.rs crates/nl2vis-query/src/sql.rs

crates/nl2vis-query/src/lib.rs:
crates/nl2vis-query/src/ast.rs:
crates/nl2vis-query/src/bind.rs:
crates/nl2vis-query/src/canon.rs:
crates/nl2vis-query/src/component.rs:
crates/nl2vis-query/src/error.rs:
crates/nl2vis-query/src/exec.rs:
crates/nl2vis-query/src/lexer.rs:
crates/nl2vis-query/src/parser.rs:
crates/nl2vis-query/src/printer.rs:
crates/nl2vis-query/src/sql.rs:
