/root/repo/target/debug/deps/nl2vis_corpus-8ee3f9017599ad2c.d: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_corpus-8ee3f9017599ad2c.rmeta: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs Cargo.toml

crates/nl2vis-corpus/src/lib.rs:
crates/nl2vis-corpus/src/corpus.rs:
crates/nl2vis-corpus/src/domains.rs:
crates/nl2vis-corpus/src/generate.rs:
crates/nl2vis-corpus/src/io.rs:
crates/nl2vis-corpus/src/pools.rs:
crates/nl2vis-corpus/src/realize.rs:
crates/nl2vis-corpus/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
