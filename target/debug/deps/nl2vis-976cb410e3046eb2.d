/root/repo/target/debug/deps/nl2vis-976cb410e3046eb2.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/nl2vis-976cb410e3046eb2: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
