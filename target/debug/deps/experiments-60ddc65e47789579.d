/root/repo/target/debug/deps/experiments-60ddc65e47789579.d: crates/nl2vis-bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-60ddc65e47789579: crates/nl2vis-bench/src/bin/experiments.rs

crates/nl2vis-bench/src/bin/experiments.rs:
