/root/repo/target/debug/deps/nl2vis-7370dc20d09ee4bf.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/libnl2vis-7370dc20d09ee4bf.rlib: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/libnl2vis-7370dc20d09ee4bf.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
