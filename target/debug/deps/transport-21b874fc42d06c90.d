/root/repo/target/debug/deps/transport-21b874fc42d06c90.d: crates/nl2vis-eval/tests/transport.rs

/root/repo/target/debug/deps/transport-21b874fc42d06c90: crates/nl2vis-eval/tests/transport.rs

crates/nl2vis-eval/tests/transport.rs:
