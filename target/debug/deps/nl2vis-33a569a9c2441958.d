/root/repo/target/debug/deps/nl2vis-33a569a9c2441958.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis-33a569a9c2441958.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
