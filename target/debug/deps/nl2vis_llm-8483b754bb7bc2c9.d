/root/repo/target/debug/deps/nl2vis_llm-8483b754bb7bc2c9.d: crates/nl2vis-llm/src/lib.rs crates/nl2vis-llm/src/client.rs crates/nl2vis-llm/src/fault.rs crates/nl2vis-llm/src/followup.rs crates/nl2vis-llm/src/http.rs crates/nl2vis-llm/src/link.rs crates/nl2vis-llm/src/profile.rs crates/nl2vis-llm/src/prompt_parse.rs crates/nl2vis-llm/src/recover.rs crates/nl2vis-llm/src/resilient.rs crates/nl2vis-llm/src/sim.rs crates/nl2vis-llm/src/understand.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_llm-8483b754bb7bc2c9.rmeta: crates/nl2vis-llm/src/lib.rs crates/nl2vis-llm/src/client.rs crates/nl2vis-llm/src/fault.rs crates/nl2vis-llm/src/followup.rs crates/nl2vis-llm/src/http.rs crates/nl2vis-llm/src/link.rs crates/nl2vis-llm/src/profile.rs crates/nl2vis-llm/src/prompt_parse.rs crates/nl2vis-llm/src/recover.rs crates/nl2vis-llm/src/resilient.rs crates/nl2vis-llm/src/sim.rs crates/nl2vis-llm/src/understand.rs Cargo.toml

crates/nl2vis-llm/src/lib.rs:
crates/nl2vis-llm/src/client.rs:
crates/nl2vis-llm/src/fault.rs:
crates/nl2vis-llm/src/followup.rs:
crates/nl2vis-llm/src/http.rs:
crates/nl2vis-llm/src/link.rs:
crates/nl2vis-llm/src/profile.rs:
crates/nl2vis-llm/src/prompt_parse.rs:
crates/nl2vis-llm/src/recover.rs:
crates/nl2vis-llm/src/resilient.rs:
crates/nl2vis-llm/src/sim.rs:
crates/nl2vis-llm/src/understand.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
