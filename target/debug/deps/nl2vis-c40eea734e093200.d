/root/repo/target/debug/deps/nl2vis-c40eea734e093200.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis-c40eea734e093200.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
