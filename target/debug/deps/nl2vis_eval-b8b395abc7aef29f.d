/root/repo/target/debug/deps/nl2vis_eval-b8b395abc7aef29f.d: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

/root/repo/target/debug/deps/libnl2vis_eval-b8b395abc7aef29f.rmeta: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

crates/nl2vis-eval/src/lib.rs:
crates/nl2vis-eval/src/failure.rs:
crates/nl2vis-eval/src/metrics.rs:
crates/nl2vis-eval/src/optimize.rs:
crates/nl2vis-eval/src/runner.rs:
crates/nl2vis-eval/src/userstudy.rs:
