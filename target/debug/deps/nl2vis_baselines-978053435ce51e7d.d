/root/repo/target/debug/deps/nl2vis_baselines-978053435ce51e7d.d: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_baselines-978053435ce51e7d.rmeta: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs Cargo.toml

crates/nl2vis-baselines/src/lib.rs:
crates/nl2vis-baselines/src/chat2vis.rs:
crates/nl2vis-baselines/src/ncnet.rs:
crates/nl2vis-baselines/src/retrieval.rs:
crates/nl2vis-baselines/src/rgvisnet.rs:
crates/nl2vis-baselines/src/seq2vis.rs:
crates/nl2vis-baselines/src/t5.rs:
crates/nl2vis-baselines/src/transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
