/root/repo/target/debug/deps/nl2vis-09c530cad1d4e831.d: src/main.rs

/root/repo/target/debug/deps/nl2vis-09c530cad1d4e831: src/main.rs

src/main.rs:
