/root/repo/target/debug/deps/nl2vis_bench-965be8b7b62ca1b3.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-965be8b7b62ca1b3.rlib: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/libnl2vis_bench-965be8b7b62ca1b3.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
