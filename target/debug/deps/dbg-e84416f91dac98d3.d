/root/repo/target/debug/deps/dbg-e84416f91dac98d3.d: crates/nl2vis-bench/src/bin/dbg.rs

/root/repo/target/debug/deps/libdbg-e84416f91dac98d3.rmeta: crates/nl2vis-bench/src/bin/dbg.rs

crates/nl2vis-bench/src/bin/dbg.rs:
