/root/repo/target/debug/deps/nl2vis_prompt-cb31c92755118bab.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_prompt-cb31c92755118bab.rmeta: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs Cargo.toml

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
