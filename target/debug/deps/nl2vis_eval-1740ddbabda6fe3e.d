/root/repo/target/debug/deps/nl2vis_eval-1740ddbabda6fe3e.d: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

/root/repo/target/debug/deps/nl2vis_eval-1740ddbabda6fe3e: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

crates/nl2vis-eval/src/lib.rs:
crates/nl2vis-eval/src/failure.rs:
crates/nl2vis-eval/src/metrics.rs:
crates/nl2vis-eval/src/optimize.rs:
crates/nl2vis-eval/src/runner.rs:
crates/nl2vis-eval/src/userstudy.rs:
