/root/repo/target/debug/deps/properties-709b54e07471c687.d: tests/properties.rs

/root/repo/target/debug/deps/properties-709b54e07471c687: tests/properties.rs

tests/properties.rs:
