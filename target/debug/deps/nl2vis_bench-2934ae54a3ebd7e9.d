/root/repo/target/debug/deps/nl2vis_bench-2934ae54a3ebd7e9.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_bench-2934ae54a3ebd7e9.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs Cargo.toml

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
