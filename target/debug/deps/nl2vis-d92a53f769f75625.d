/root/repo/target/debug/deps/nl2vis-d92a53f769f75625.d: src/lib.rs src/conversation.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis-d92a53f769f75625.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
