/root/repo/target/debug/deps/paper_findings-8e273a5bb79a7c6e.d: tests/paper_findings.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_findings-8e273a5bb79a7c6e.rmeta: tests/paper_findings.rs Cargo.toml

tests/paper_findings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
