/root/repo/target/debug/deps/nl2vis_obs-48f419d5f340e5fa.d: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

/root/repo/target/debug/deps/libnl2vis_obs-48f419d5f340e5fa.rmeta: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

crates/nl2vis-obs/src/lib.rs:
crates/nl2vis-obs/src/registry.rs:
crates/nl2vis-obs/src/report.rs:
crates/nl2vis-obs/src/sink.rs:
crates/nl2vis-obs/src/span.rs:
