/root/repo/target/debug/deps/nl2vis-24f45bd1732f35c2.d: src/lib.rs src/conversation.rs src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis-24f45bd1732f35c2.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs Cargo.toml

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
