/root/repo/target/debug/deps/nl2vis_prompt-3374435d09c33e89.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/debug/deps/libnl2vis_prompt-3374435d09c33e89.rmeta: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
