/root/repo/target/debug/deps/extensions-d86654fb76d3af8a.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d86654fb76d3af8a: tests/extensions.rs

tests/extensions.rs:
