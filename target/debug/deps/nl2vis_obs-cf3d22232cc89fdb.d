/root/repo/target/debug/deps/nl2vis_obs-cf3d22232cc89fdb.d: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_obs-cf3d22232cc89fdb.rmeta: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs Cargo.toml

crates/nl2vis-obs/src/lib.rs:
crates/nl2vis-obs/src/registry.rs:
crates/nl2vis-obs/src/report.rs:
crates/nl2vis-obs/src/sink.rs:
crates/nl2vis-obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
