/root/repo/target/debug/deps/experiments-6279403f123f42bb.d: crates/nl2vis-bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-6279403f123f42bb: crates/nl2vis-bench/src/bin/experiments.rs

crates/nl2vis-bench/src/bin/experiments.rs:
