/root/repo/target/debug/deps/nl2vis-16e0775e39d82f82.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/nl2vis-16e0775e39d82f82: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
