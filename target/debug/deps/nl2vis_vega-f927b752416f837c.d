/root/repo/target/debug/deps/nl2vis_vega-f927b752416f837c.d: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

/root/repo/target/debug/deps/libnl2vis_vega-f927b752416f837c.rlib: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

/root/repo/target/debug/deps/libnl2vis_vega-f927b752416f837c.rmeta: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

crates/nl2vis-vega/src/lib.rs:
crates/nl2vis-vega/src/ascii.rs:
crates/nl2vis-vega/src/import.rs:
crates/nl2vis-vega/src/spec.rs:
crates/nl2vis-vega/src/svg.rs:
