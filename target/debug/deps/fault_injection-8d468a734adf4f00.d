/root/repo/target/debug/deps/fault_injection-8d468a734adf4f00.d: crates/nl2vis-llm/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-8d468a734adf4f00: crates/nl2vis-llm/tests/fault_injection.rs

crates/nl2vis-llm/tests/fault_injection.rs:
