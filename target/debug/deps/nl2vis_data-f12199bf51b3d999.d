/root/repo/target/debug/deps/nl2vis_data-f12199bf51b3d999.d: crates/nl2vis-data/src/lib.rs crates/nl2vis-data/src/catalog.rs crates/nl2vis-data/src/csv.rs crates/nl2vis-data/src/database.rs crates/nl2vis-data/src/error.rs crates/nl2vis-data/src/json.rs crates/nl2vis-data/src/load.rs crates/nl2vis-data/src/rng.rs crates/nl2vis-data/src/schema.rs crates/nl2vis-data/src/table.rs crates/nl2vis-data/src/text.rs crates/nl2vis-data/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libnl2vis_data-f12199bf51b3d999.rmeta: crates/nl2vis-data/src/lib.rs crates/nl2vis-data/src/catalog.rs crates/nl2vis-data/src/csv.rs crates/nl2vis-data/src/database.rs crates/nl2vis-data/src/error.rs crates/nl2vis-data/src/json.rs crates/nl2vis-data/src/load.rs crates/nl2vis-data/src/rng.rs crates/nl2vis-data/src/schema.rs crates/nl2vis-data/src/table.rs crates/nl2vis-data/src/text.rs crates/nl2vis-data/src/value.rs Cargo.toml

crates/nl2vis-data/src/lib.rs:
crates/nl2vis-data/src/catalog.rs:
crates/nl2vis-data/src/csv.rs:
crates/nl2vis-data/src/database.rs:
crates/nl2vis-data/src/error.rs:
crates/nl2vis-data/src/json.rs:
crates/nl2vis-data/src/load.rs:
crates/nl2vis-data/src/rng.rs:
crates/nl2vis-data/src/schema.rs:
crates/nl2vis-data/src/table.rs:
crates/nl2vis-data/src/text.rs:
crates/nl2vis-data/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
