/root/repo/target/debug/deps/nl2vis_bench-c242bfce5659dc39.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/debug/deps/nl2vis_bench-c242bfce5659dc39: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
