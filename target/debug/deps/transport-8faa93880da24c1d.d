/root/repo/target/debug/deps/transport-8faa93880da24c1d.d: crates/nl2vis-eval/tests/transport.rs

/root/repo/target/debug/deps/libtransport-8faa93880da24c1d.rmeta: crates/nl2vis-eval/tests/transport.rs

crates/nl2vis-eval/tests/transport.rs:
