/root/repo/target/debug/deps/nl2vis_baselines-291ec8a4429ec88e.d: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/debug/deps/libnl2vis_baselines-291ec8a4429ec88e.rlib: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/debug/deps/libnl2vis_baselines-291ec8a4429ec88e.rmeta: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

crates/nl2vis-baselines/src/lib.rs:
crates/nl2vis-baselines/src/chat2vis.rs:
crates/nl2vis-baselines/src/ncnet.rs:
crates/nl2vis-baselines/src/retrieval.rs:
crates/nl2vis-baselines/src/rgvisnet.rs:
crates/nl2vis-baselines/src/seq2vis.rs:
crates/nl2vis-baselines/src/t5.rs:
crates/nl2vis-baselines/src/transformer.rs:
