/root/repo/target/debug/deps/nl2vis_baselines-853c9c7696e29238.d: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/debug/deps/libnl2vis_baselines-853c9c7696e29238.rmeta: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

crates/nl2vis-baselines/src/lib.rs:
crates/nl2vis-baselines/src/chat2vis.rs:
crates/nl2vis-baselines/src/ncnet.rs:
crates/nl2vis-baselines/src/retrieval.rs:
crates/nl2vis-baselines/src/rgvisnet.rs:
crates/nl2vis-baselines/src/seq2vis.rs:
crates/nl2vis-baselines/src/t5.rs:
crates/nl2vis-baselines/src/transformer.rs:
