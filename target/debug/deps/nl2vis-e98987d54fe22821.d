/root/repo/target/debug/deps/nl2vis-e98987d54fe22821.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/debug/deps/libnl2vis-e98987d54fe22821.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
