/root/repo/target/debug/deps/experiments-e73c3435e194e8ce.d: crates/nl2vis-bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-e73c3435e194e8ce.rmeta: crates/nl2vis-bench/src/bin/experiments.rs

crates/nl2vis-bench/src/bin/experiments.rs:
