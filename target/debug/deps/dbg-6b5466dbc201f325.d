/root/repo/target/debug/deps/dbg-6b5466dbc201f325.d: crates/nl2vis-bench/src/bin/dbg.rs

/root/repo/target/debug/deps/dbg-6b5466dbc201f325: crates/nl2vis-bench/src/bin/dbg.rs

crates/nl2vis-bench/src/bin/dbg.rs:
