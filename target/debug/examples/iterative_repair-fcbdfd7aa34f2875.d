/root/repo/target/debug/examples/iterative_repair-fcbdfd7aa34f2875.d: examples/iterative_repair.rs

/root/repo/target/debug/examples/iterative_repair-fcbdfd7aa34f2875: examples/iterative_repair.rs

examples/iterative_repair.rs:
