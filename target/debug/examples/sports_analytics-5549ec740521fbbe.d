/root/repo/target/debug/examples/sports_analytics-5549ec740521fbbe.d: examples/sports_analytics.rs

/root/repo/target/debug/examples/sports_analytics-5549ec740521fbbe: examples/sports_analytics.rs

examples/sports_analytics.rs:
