/root/repo/target/debug/examples/prompt_formats-910d7c60ab7b2fd1.d: examples/prompt_formats.rs Cargo.toml

/root/repo/target/debug/examples/libprompt_formats-910d7c60ab7b2fd1.rmeta: examples/prompt_formats.rs Cargo.toml

examples/prompt_formats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
