/root/repo/target/debug/examples/prompt_formats-4e060eff7fe8979c.d: examples/prompt_formats.rs

/root/repo/target/debug/examples/prompt_formats-4e060eff7fe8979c: examples/prompt_formats.rs

examples/prompt_formats.rs:
