/root/repo/target/debug/examples/custom_data-d45dcaa4f4c977b6.d: examples/custom_data.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_data-d45dcaa4f4c977b6.rmeta: examples/custom_data.rs Cargo.toml

examples/custom_data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
