/root/repo/target/debug/examples/iterative_repair-47601c88733c50ea.d: examples/iterative_repair.rs Cargo.toml

/root/repo/target/debug/examples/libiterative_repair-47601c88733c50ea.rmeta: examples/iterative_repair.rs Cargo.toml

examples/iterative_repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
