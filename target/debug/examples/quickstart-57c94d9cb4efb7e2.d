/root/repo/target/debug/examples/quickstart-57c94d9cb4efb7e2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-57c94d9cb4efb7e2: examples/quickstart.rs

examples/quickstart.rs:
