/root/repo/target/debug/examples/conversation-19ba478251d036ad.d: examples/conversation.rs Cargo.toml

/root/repo/target/debug/examples/libconversation-19ba478251d036ad.rmeta: examples/conversation.rs Cargo.toml

examples/conversation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
