/root/repo/target/debug/examples/sports_analytics-3fc6fb395b5760bb.d: examples/sports_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libsports_analytics-3fc6fb395b5760bb.rmeta: examples/sports_analytics.rs Cargo.toml

examples/sports_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
