/root/repo/target/debug/examples/custom_data-46dba450dd31d85b.d: examples/custom_data.rs

/root/repo/target/debug/examples/custom_data-46dba450dd31d85b: examples/custom_data.rs

examples/custom_data.rs:
