/root/repo/target/debug/examples/conversation-ba3b59080443ba44.d: examples/conversation.rs

/root/repo/target/debug/examples/conversation-ba3b59080443ba44: examples/conversation.rs

examples/conversation.rs:
