/root/repo/target/debug/examples/http_server-d92b18eb3c2dcc36.d: examples/http_server.rs

/root/repo/target/debug/examples/http_server-d92b18eb3c2dcc36: examples/http_server.rs

examples/http_server.rs:
