/root/repo/target/debug/examples/http_server-f5f2d508aba88092.d: examples/http_server.rs Cargo.toml

/root/repo/target/debug/examples/libhttp_server-f5f2d508aba88092.rmeta: examples/http_server.rs Cargo.toml

examples/http_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
