/root/repo/target/release/examples/probe_server-ff0a4a5cd6a52ab3.d: examples/probe_server.rs

/root/repo/target/release/examples/probe_server-ff0a4a5cd6a52ab3: examples/probe_server.rs

examples/probe_server.rs:
