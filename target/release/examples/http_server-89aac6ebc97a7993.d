/root/repo/target/release/examples/http_server-89aac6ebc97a7993.d: examples/http_server.rs

/root/repo/target/release/examples/http_server-89aac6ebc97a7993: examples/http_server.rs

examples/http_server.rs:
