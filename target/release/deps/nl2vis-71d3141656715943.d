/root/repo/target/release/deps/nl2vis-71d3141656715943.d: src/main.rs

/root/repo/target/release/deps/nl2vis-71d3141656715943: src/main.rs

src/main.rs:
