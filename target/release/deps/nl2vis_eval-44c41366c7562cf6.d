/root/repo/target/release/deps/nl2vis_eval-44c41366c7562cf6.d: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

/root/repo/target/release/deps/libnl2vis_eval-44c41366c7562cf6.rlib: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

/root/repo/target/release/deps/libnl2vis_eval-44c41366c7562cf6.rmeta: crates/nl2vis-eval/src/lib.rs crates/nl2vis-eval/src/failure.rs crates/nl2vis-eval/src/metrics.rs crates/nl2vis-eval/src/optimize.rs crates/nl2vis-eval/src/runner.rs crates/nl2vis-eval/src/userstudy.rs

crates/nl2vis-eval/src/lib.rs:
crates/nl2vis-eval/src/failure.rs:
crates/nl2vis-eval/src/metrics.rs:
crates/nl2vis-eval/src/optimize.rs:
crates/nl2vis-eval/src/runner.rs:
crates/nl2vis-eval/src/userstudy.rs:
