/root/repo/target/release/deps/nl2vis_bench-4be79fceb52e6f73.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/release/deps/libnl2vis_bench-4be79fceb52e6f73.rlib: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/release/deps/libnl2vis_bench-4be79fceb52e6f73.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
