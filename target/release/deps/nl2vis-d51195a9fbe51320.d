/root/repo/target/release/deps/nl2vis-d51195a9fbe51320.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/release/deps/libnl2vis-d51195a9fbe51320.rlib: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/release/deps/libnl2vis-d51195a9fbe51320.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
