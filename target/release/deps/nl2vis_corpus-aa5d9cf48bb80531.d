/root/repo/target/release/deps/nl2vis_corpus-aa5d9cf48bb80531.d: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs

/root/repo/target/release/deps/libnl2vis_corpus-aa5d9cf48bb80531.rlib: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs

/root/repo/target/release/deps/libnl2vis_corpus-aa5d9cf48bb80531.rmeta: crates/nl2vis-corpus/src/lib.rs crates/nl2vis-corpus/src/corpus.rs crates/nl2vis-corpus/src/domains.rs crates/nl2vis-corpus/src/generate.rs crates/nl2vis-corpus/src/io.rs crates/nl2vis-corpus/src/pools.rs crates/nl2vis-corpus/src/realize.rs crates/nl2vis-corpus/src/synth.rs

crates/nl2vis-corpus/src/lib.rs:
crates/nl2vis-corpus/src/corpus.rs:
crates/nl2vis-corpus/src/domains.rs:
crates/nl2vis-corpus/src/generate.rs:
crates/nl2vis-corpus/src/io.rs:
crates/nl2vis-corpus/src/pools.rs:
crates/nl2vis-corpus/src/realize.rs:
crates/nl2vis-corpus/src/synth.rs:
