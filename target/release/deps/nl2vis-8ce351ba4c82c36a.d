/root/repo/target/release/deps/nl2vis-8ce351ba4c82c36a.d: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/release/deps/libnl2vis-8ce351ba4c82c36a.rlib: src/lib.rs src/conversation.rs src/pipeline.rs

/root/repo/target/release/deps/libnl2vis-8ce351ba4c82c36a.rmeta: src/lib.rs src/conversation.rs src/pipeline.rs

src/lib.rs:
src/conversation.rs:
src/pipeline.rs:
