/root/repo/target/release/deps/nl2vis_vega-2780739b737247c4.d: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

/root/repo/target/release/deps/libnl2vis_vega-2780739b737247c4.rlib: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

/root/repo/target/release/deps/libnl2vis_vega-2780739b737247c4.rmeta: crates/nl2vis-vega/src/lib.rs crates/nl2vis-vega/src/ascii.rs crates/nl2vis-vega/src/import.rs crates/nl2vis-vega/src/spec.rs crates/nl2vis-vega/src/svg.rs

crates/nl2vis-vega/src/lib.rs:
crates/nl2vis-vega/src/ascii.rs:
crates/nl2vis-vega/src/import.rs:
crates/nl2vis-vega/src/spec.rs:
crates/nl2vis-vega/src/svg.rs:
