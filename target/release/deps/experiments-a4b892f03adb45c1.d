/root/repo/target/release/deps/experiments-a4b892f03adb45c1.d: crates/nl2vis-bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-a4b892f03adb45c1: crates/nl2vis-bench/src/bin/experiments.rs

crates/nl2vis-bench/src/bin/experiments.rs:
