/root/repo/target/release/deps/nl2vis_bench-b4ac7a18a4cb9d6a.d: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/release/deps/libnl2vis_bench-b4ac7a18a4cb9d6a.rlib: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

/root/repo/target/release/deps/libnl2vis_bench-b4ac7a18a4cb9d6a.rmeta: crates/nl2vis-bench/src/lib.rs crates/nl2vis-bench/src/experiments.rs crates/nl2vis-bench/src/render.rs

crates/nl2vis-bench/src/lib.rs:
crates/nl2vis-bench/src/experiments.rs:
crates/nl2vis-bench/src/render.rs:
