/root/repo/target/release/deps/nl2vis_baselines-b174c2e4ff219281.d: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/release/deps/libnl2vis_baselines-b174c2e4ff219281.rlib: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

/root/repo/target/release/deps/libnl2vis_baselines-b174c2e4ff219281.rmeta: crates/nl2vis-baselines/src/lib.rs crates/nl2vis-baselines/src/chat2vis.rs crates/nl2vis-baselines/src/ncnet.rs crates/nl2vis-baselines/src/retrieval.rs crates/nl2vis-baselines/src/rgvisnet.rs crates/nl2vis-baselines/src/seq2vis.rs crates/nl2vis-baselines/src/t5.rs crates/nl2vis-baselines/src/transformer.rs

crates/nl2vis-baselines/src/lib.rs:
crates/nl2vis-baselines/src/chat2vis.rs:
crates/nl2vis-baselines/src/ncnet.rs:
crates/nl2vis-baselines/src/retrieval.rs:
crates/nl2vis-baselines/src/rgvisnet.rs:
crates/nl2vis-baselines/src/seq2vis.rs:
crates/nl2vis-baselines/src/t5.rs:
crates/nl2vis-baselines/src/transformer.rs:
