/root/repo/target/release/deps/nl2vis_prompt-2318f13dced02d50.d: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/release/deps/libnl2vis_prompt-2318f13dced02d50.rlib: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

/root/repo/target/release/deps/libnl2vis_prompt-2318f13dced02d50.rmeta: crates/nl2vis-prompt/src/lib.rs crates/nl2vis-prompt/src/icl.rs crates/nl2vis-prompt/src/select.rs crates/nl2vis-prompt/src/serialize.rs

crates/nl2vis-prompt/src/lib.rs:
crates/nl2vis-prompt/src/icl.rs:
crates/nl2vis-prompt/src/select.rs:
crates/nl2vis-prompt/src/serialize.rs:
