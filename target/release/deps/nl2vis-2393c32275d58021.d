/root/repo/target/release/deps/nl2vis-2393c32275d58021.d: src/main.rs

/root/repo/target/release/deps/nl2vis-2393c32275d58021: src/main.rs

src/main.rs:
