/root/repo/target/release/deps/nl2vis_obs-37e78f2fe077806d.d: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

/root/repo/target/release/deps/libnl2vis_obs-37e78f2fe077806d.rlib: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

/root/repo/target/release/deps/libnl2vis_obs-37e78f2fe077806d.rmeta: crates/nl2vis-obs/src/lib.rs crates/nl2vis-obs/src/registry.rs crates/nl2vis-obs/src/report.rs crates/nl2vis-obs/src/sink.rs crates/nl2vis-obs/src/span.rs

crates/nl2vis-obs/src/lib.rs:
crates/nl2vis-obs/src/registry.rs:
crates/nl2vis-obs/src/report.rs:
crates/nl2vis-obs/src/sink.rs:
crates/nl2vis-obs/src/span.rs:
