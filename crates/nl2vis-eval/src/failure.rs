//! Failure taxonomy (RQ3-1, Fig. 11 of the paper): classify failed
//! predictions by the visualization-query component they got wrong, split
//! into the *visual part* (chart type, axes) and the *data part* (join,
//! conditions, binning, grouping, nesting).

use crate::runner::EvalReport;
use nl2vis_query::component::Component;
use std::collections::BTreeMap;

/// One bucket of the failure taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureBucket {
    /// Bucket name as in Fig. 11 ("type", "x-axis", "cond", ...).
    pub name: &'static str,
    /// Visual part (true) vs data part (false).
    pub visual: bool,
    /// Number of failures attributed to this bucket.
    pub count: usize,
    /// Share of all attributions.
    pub share: f64,
}

/// The aggregated failure taxonomy.
#[derive(Debug, Clone, Default)]
pub struct FailureTaxonomy {
    /// Buckets sorted by descending share.
    pub buckets: Vec<FailureBucket>,
    /// Number of failed examples analyzed.
    pub failures: usize,
    /// Failures whose output did not even parse as VQL.
    pub parse_failures: usize,
    /// Examples whose *transport* failed. These are infrastructure
    /// failures, never attributed to any model bucket: the model produced
    /// no output to classify, so folding them into the taxonomy (as the
    /// old string-folding transport once did) would corrupt it.
    pub transport_failures: usize,
}

impl FailureTaxonomy {
    /// Builds the taxonomy from an evaluation report.
    pub fn from_report(report: &EvalReport) -> FailureTaxonomy {
        let mut counts: BTreeMap<&'static str, (bool, usize)> = BTreeMap::new();
        let mut failures = 0usize;
        let mut parse_failures = 0usize;
        let mut transport_failures = 0usize;
        for r in &report.results {
            if !r.scored() {
                transport_failures += 1;
                continue;
            }
            if !r.outcome.failed() {
                continue;
            }
            failures += 1;
            if r.outcome.parse_failed {
                parse_failures += 1;
                continue;
            }
            // Attribute to each distinct bucket the prediction got wrong.
            let mut seen = std::collections::HashSet::new();
            for c in &r.outcome.components_wrong {
                let bucket = c.bucket();
                if seen.insert(bucket) {
                    let slot = counts.entry(bucket).or_insert((c.is_visual(), 0));
                    slot.1 += 1;
                }
            }
        }
        let total: usize = counts.values().map(|(_, n)| n).sum();
        let mut buckets: Vec<FailureBucket> = counts
            .into_iter()
            .map(|(name, (visual, count))| FailureBucket {
                name,
                visual,
                count,
                share: if total == 0 {
                    0.0
                } else {
                    count as f64 / total as f64
                },
            })
            .collect();
        buckets.sort_by(|a, b| b.count.cmp(&a.count).then(a.name.cmp(b.name)));
        FailureTaxonomy {
            buckets,
            failures,
            parse_failures,
            transport_failures,
        }
    }

    /// Share of attributions in the visual part.
    pub fn visual_share(&self) -> f64 {
        self.buckets
            .iter()
            .filter(|b| b.visual)
            .map(|b| b.share)
            .sum()
    }

    /// Share of attributions in the data part.
    pub fn data_share(&self) -> f64 {
        self.buckets
            .iter()
            .filter(|b| !b.visual)
            .map(|b| b.share)
            .sum()
    }

    /// Share of one named bucket.
    pub fn share_of(&self, name: &str) -> f64 {
        self.buckets
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.share)
            .unwrap_or(0.0)
    }

    /// Renders the taxonomy as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "failures: {} (unparseable: {}; transport, excluded: {})\nvisual part: {:.1}%  data part: {:.1}%\n",
            self.failures,
            self.parse_failures,
            self.transport_failures,
            self.visual_share() * 100.0,
            self.data_share() * 100.0
        );
        for b in &self.buckets {
            out.push_str(&format!(
                "  {:<8} {:>5.1}%  ({} failures, {} part)\n",
                b.name,
                b.share * 100.0,
                b.count,
                if b.visual { "visual" } else { "data" }
            ));
        }
        out
    }
}

/// Maps a component list to its primary bucket (most severe first): used by
/// tests and the experiment harness to label single failures.
pub fn primary_bucket(components: &[Component]) -> Option<&'static str> {
    // Data-part issues dominate the paper's taxonomy; prefer them when both
    // parts went wrong (a wrong filter usually also shifts the y data).
    let priority = [
        Component::Subquery,
        Component::TableJoin,
        Component::Where,
        Component::Bin,
        Component::Group,
        Component::Order,
        Component::AxisY,
        Component::AxisX,
        Component::VisType,
    ];
    priority
        .into_iter()
        .find(|p| components.contains(p))
        .map(|c| c.bucket())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score_query;
    use crate::runner::ExampleResult;
    use nl2vis_corpus::Hardness;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType::*;
    use nl2vis_data::{Database, Value};
    use nl2vis_query::parse;

    fn db() -> Database {
        let mut s = DatabaseSchema::new("d", "x");
        s.tables.push(TableDef::new(
            "t",
            vec![ColumnDef::new("a", Text), ColumnDef::new("b", Int)],
        ));
        let mut d = Database::new(s);
        for (a, b) in [("x", 1), ("y", 2), ("x", 3)] {
            d.insert("t", vec![a.into(), Value::Int(b)]).unwrap();
        }
        d
    }

    fn result(pred: &str, gold: &str) -> ExampleResult {
        let d = db();
        let outcome = score_query(&parse(pred).unwrap(), &parse(gold).unwrap(), &d);
        ExampleResult {
            id: 0,
            outcome,
            is_join: false,
            hardness: Hardness::Easy,
            completion: None,
            transport_error: None,
            trace_id: 0,
        }
    }

    #[test]
    fn taxonomy_counts_buckets() {
        let report = EvalReport {
            results: vec![
                result(
                    "VISUALIZE pie SELECT a , COUNT(a) FROM t GROUP BY a",
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                ),
                result(
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t WHERE b > 1 GROUP BY a",
                ),
                result(
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                ),
            ],
            ..Default::default()
        };
        let tax = FailureTaxonomy::from_report(&report);
        assert_eq!(tax.failures, 2);
        assert!(tax.share_of("type") > 0.0);
        assert!(tax.share_of("cond") > 0.0);
        assert!((tax.visual_share() + tax.data_share() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correct_predictions_ignored() {
        let report = EvalReport {
            results: vec![result(
                "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
            )],
            ..Default::default()
        };
        let tax = FailureTaxonomy::from_report(&report);
        assert_eq!(tax.failures, 0);
        assert!(tax.buckets.is_empty());
    }

    #[test]
    fn transport_failures_are_counted_but_never_bucketed() {
        use crate::metrics::EvalOutcome;
        let mut transport = result(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
            "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
        );
        transport.outcome = EvalOutcome::unscored();
        transport.transport_error = Some("transport error (timeout, 3 attempts): ...".to_string());
        let report = EvalReport {
            results: vec![
                transport,
                result(
                    "VISUALIZE pie SELECT a , COUNT(a) FROM t GROUP BY a",
                    "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
                ),
            ],
            ..Default::default()
        };
        let tax = FailureTaxonomy::from_report(&report);
        // The transport row is not a model failure: one genuine failure,
        // one transport failure, zero parse failures.
        assert_eq!(tax.failures, 1);
        assert_eq!(tax.transport_failures, 1);
        assert_eq!(tax.parse_failures, 0);
        assert!(tax.share_of("type") > 0.0);
        assert!(tax.to_text().contains("transport, excluded: 1"));
        // The accuracy denominator excludes the transport row too.
        assert_eq!(report.overall().n(), 1);
        assert_eq!(report.transport_failures(), 1);
        assert_eq!(report.failed_ids().len(), 1);
    }

    #[test]
    fn primary_bucket_prefers_data_part() {
        let cs = vec![Component::VisType, Component::Where];
        assert_eq!(primary_bucket(&cs), Some("cond"));
        assert_eq!(primary_bucket(&[Component::VisType]), Some("type"));
        assert_eq!(primary_bucket(&[]), None);
    }

    #[test]
    fn text_rendering() {
        let report = EvalReport {
            results: vec![result(
                "VISUALIZE pie SELECT a , COUNT(a) FROM t GROUP BY a",
                "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
            )],
            ..Default::default()
        };
        let text = FailureTaxonomy::from_report(&report).to_text();
        assert!(text.contains("failures: 1"));
        assert!(text.contains("type"));
    }
}
