//! The user-study simulation (§5.2.2, Figs. 9-10 of the paper).
//!
//! The paper invited 3 experts and 3 non-experts to express NL queries for
//! 60 target visualizations over 5 databases at 4 difficulty levels, with up
//! to 3 revisions, through a command-line interface backed by
//! text-davinci-003 with 20-shot prompting. We simulate the users: an agent
//! "writes" a query by starting from an ideal phrasing and — depending on
//! skill and task difficulty — omitting or garbling clauses; each revision
//! repairs one defect. Timing follows a per-word composition model with
//! skill-dependent rates. The LLM side of the loop is the *real* pipeline
//! (prompt build → simulated model → execution → comparison).

use crate::metrics::score_completion;
use crate::runner::{pick_demos, LlmEvalConfig};
use nl2vis_corpus::{Corpus, Example, Hardness};
use nl2vis_data::text::words;
use nl2vis_data::Rng;
use nl2vis_llm::{ModelProfile, SimLlm};
use nl2vis_prompt::{build_prompt, PromptOptions};

/// User expertise group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserKind {
    /// Graduate students with 6+ years of development experience.
    Expert,
    /// Undergraduates with ~2 years and basic Excel-level visualization.
    NonExpert,
}

impl UserKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            UserKind::Expert => "expert",
            UserKind::NonExpert => "non-expert",
        }
    }

    /// Probability of introducing one phrasing defect per clause, scaled by
    /// task difficulty.
    fn defect_rate(self, hardness: Hardness) -> f64 {
        let base = match self {
            UserKind::Expert => 0.04,
            UserKind::NonExpert => 0.21,
        };
        let difficulty = match hardness {
            Hardness::Easy => 0.6,
            Hardness::Medium => 1.0,
            Hardness::Hard => 1.5,
            Hardness::Extra => 1.8,
        };
        base * difficulty
    }

    /// Seconds per word while composing.
    fn seconds_per_word(self) -> f64 {
        match self {
            UserKind::Expert => 1.6,
            UserKind::NonExpert => 2.6,
        }
    }

    /// Fixed thinking time before composing (seconds).
    fn think_seconds(self) -> f64 {
        match self {
            UserKind::Expert => 8.0,
            UserKind::NonExpert => 16.0,
        }
    }

    /// Probability that a revision correctly diagnoses and repairs one
    /// phrasing defect (experts read the wrong chart and see what is
    /// missing; novices often just reword).
    fn diagnose_rate(self) -> f64 {
        match self {
            UserKind::Expert => 0.92,
            UserKind::NonExpert => 0.48,
        }
    }
}

/// One simulated query session for one target visualization.
#[derive(Debug, Clone)]
pub struct Session {
    /// User group.
    pub user: UserKind,
    /// Target difficulty.
    pub hardness: Hardness,
    /// Whether the target chart was produced within the revision budget.
    pub success: bool,
    /// Revisions used (0 = first attempt succeeded).
    pub revisions: usize,
    /// Seconds composing the initial query.
    pub compose_seconds: f64,
    /// Seconds spent revising.
    pub revise_seconds: f64,
    /// Seconds the system spent assembling prompts.
    pub prompt_seconds: f64,
    /// Seconds the system spent generating VQL.
    pub generate_seconds: f64,
}

/// Aggregated user-study results.
#[derive(Debug, Clone, Default)]
pub struct StudyReport {
    /// All sessions.
    pub sessions: Vec<Session>,
}

impl StudyReport {
    /// Success rate for a user group at a difficulty level.
    pub fn success_rate(&self, user: UserKind, hardness: Hardness) -> f64 {
        let relevant: Vec<&Session> = self
            .sessions
            .iter()
            .filter(|s| s.user == user && s.hardness == hardness)
            .collect();
        if relevant.is_empty() {
            return 0.0;
        }
        relevant.iter().filter(|s| s.success).count() as f64 / relevant.len() as f64
    }

    /// Mean of a per-session time component for a user group.
    pub fn mean_seconds<F: Fn(&Session) -> f64>(&self, user: UserKind, f: F) -> f64 {
        let relevant: Vec<&Session> = self.sessions.iter().filter(|s| s.user == user).collect();
        if relevant.is_empty() {
            return 0.0;
        }
        relevant.iter().map(|s| f(s)).sum::<f64>() / relevant.len() as f64
    }
}

/// Study parameters (defaults mirror the paper: 5 databases × 4 levels × 3
/// charts, 3 revisions).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Databases to sample targets from.
    pub databases: usize,
    /// Targets per (database, difficulty) cell.
    pub per_cell: usize,
    /// Maximum revisions after a failed attempt.
    pub max_revisions: usize,
    /// Demonstration count for the backing LLM.
    pub shots: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            databases: 5,
            per_cell: 3,
            max_revisions: 3,
            shots: 20,
            seed: 2023,
        }
    }
}

/// Runs the simulated study for both user groups over targets drawn from the
/// corpus.
pub fn run_study(corpus: &Corpus, train_ids: &[usize], config: &StudyConfig) -> StudyReport {
    let mut rng = Rng::new(config.seed);
    let llm = SimLlm::new(ModelProfile::davinci_003(), config.seed ^ 0xA5);
    let eval_config = LlmEvalConfig {
        shots: config.shots,
        ..Default::default()
    };

    // Pick target visualizations: `databases` random DBs, `per_cell` per
    // difficulty level from each.
    let mut db_names: Vec<&str> = corpus.catalog.names();
    rng.shuffle(&mut db_names);
    let mut targets: Vec<&Example> = Vec::new();
    for db in db_names.iter().take(config.databases) {
        for h in Hardness::all() {
            let candidates: Vec<&Example> = corpus
                .examples
                .iter()
                .filter(|e| e.db == *db && e.hardness == h)
                .collect();
            for idx in rng.sample_indices(candidates.len(), config.per_cell) {
                targets.push(candidates[idx]);
            }
        }
    }

    let mut report = StudyReport::default();
    for user in [UserKind::Expert, UserKind::NonExpert] {
        for target in &targets {
            let session = run_session(
                corpus,
                train_ids,
                &llm,
                &eval_config,
                target,
                user,
                config,
                &mut rng,
            );
            report.sessions.push(session);
        }
    }
    report
}

#[allow(clippy::too_many_arguments)] // internal driver mirroring the study's knobs
fn run_session(
    corpus: &Corpus,
    train_ids: &[usize],
    llm: &SimLlm,
    eval_config: &LlmEvalConfig,
    target: &Example,
    user: UserKind,
    config: &StudyConfig,
    rng: &mut Rng,
) -> Session {
    let db = corpus
        .catalog
        .database(&target.db)
        .expect("target database exists");
    let defect_rate = user.defect_rate(target.hardness);

    // The user composes a query: the ideal phrasing with skill-dependent
    // clause defects (dropped trailing clauses, garbled words).
    let ideal = &target.nl;
    let mut defects = introduce_defects(ideal, defect_rate, rng);

    let word_count = words(ideal).len() as f64;
    let compose_seconds =
        user.think_seconds() + word_count * user.seconds_per_word() + rng.gauss().abs() * 3.0;
    let mut revise_seconds = 0.0;
    let mut prompt_seconds = 0.0;
    let mut generate_seconds = 0.0;

    let mut success = false;
    let mut revisions = 0usize;
    for round in 0..=config.max_revisions {
        let question = apply_defects(ideal, &defects);
        // The user asks for a *new* visualization: demonstrations that are
        // this very chart (paraphrase siblings in the training pool) are
        // excluded, otherwise the model would just echo the answer and no
        // phrasing effect could be measured.
        let mut demos = pick_demos(corpus, train_ids, target, eval_config);
        demos.retain(|d| {
            d.db != target.db || !nl2vis_query::canon::exact_match(&d.vql, &target.vql)
        });
        let options = PromptOptions {
            format: eval_config.format,
            token_budget: eval_config.token_budget,
            ..Default::default()
        };
        let prompt = build_prompt(&options, db, &question, &demos, |d| {
            corpus
                .catalog
                .database(&d.db)
                .expect("demo database exists")
        });
        // The paper reports ~3 s prompt assembly and ~2 s generation.
        prompt_seconds += 3.0 + rng.gauss().abs() * 0.4;
        generate_seconds += 2.0 + rng.gauss().abs() * 0.3;

        // Each round is a fresh model sample (a real conversation retries).
        let gen = nl2vis_llm::GenOptions {
            attempt: round as u64,
            ..Default::default()
        };
        let completion = llm.complete_with(&prompt.text, &gen);
        let outcome = score_completion(&completion, &target.vql, db);
        if outcome.exec {
            success = true;
            revisions = round;
            break;
        }
        if round == config.max_revisions {
            revisions = round;
            break;
        }
        // Revise: the user inspects the wrong chart and — if they diagnose
        // the problem — repairs one defect; otherwise the revision merely
        // rewords and the defect stays.
        if rng.chance(user.diagnose_rate()) {
            defects.pop();
        }
        revise_seconds += match user {
            UserKind::Expert => 12.0 + rng.gauss().abs() * 4.0,
            UserKind::NonExpert => 27.0 + rng.gauss().abs() * 6.0,
        };
    }

    Session {
        user,
        hardness: target.hardness,
        success,
        revisions,
        compose_seconds,
        revise_seconds,
        prompt_seconds,
        generate_seconds,
    }
}

/// A phrasing defect a user introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    /// Under-specify the tail of the request (dropped filter/order/bin).
    DropTail,
    /// Ask for "a chart" without naming the chart type.
    VagueChart,
}

/// Draws the defects a user of the given skill introduces for this target.
fn introduce_defects(ideal: &str, rate: f64, rng: &mut Rng) -> Vec<Defect> {
    // Clause chunks that can each be under-specified.
    let chunk_count = ideal.matches(" where ").count()
        + ideal.matches(" sorted ").count()
        + ideal.matches(" ordered ").count()
        + ideal.matches(" binned ").count()
        + 2;
    let mut defects = Vec::new();
    for _ in 0..chunk_count {
        if rng.chance(rate) {
            defects.push(Defect::DropTail);
        }
    }
    // Naming the chart type is a separate skill; novices often just say
    // "a chart".
    if rng.chance(rate * 1.6) {
        defects.push(Defect::VagueChart);
    }
    defects
}

/// Applies defects to the ideal phrasing.
fn apply_defects(ideal: &str, defects: &[Defect]) -> String {
    let mut s = ideal.to_string();
    let drops = defects.iter().filter(|d| **d == Defect::DropTail).count();
    if drops > 0 {
        // Split at clause-marker words and drop that many tail segments.
        let markers = [
            " where ",
            " sorted by ",
            " ordered by ",
            " binned by ",
            " colored by ",
            " stacked by ",
            " split by ",
            " rank the ",
            " keeping only ",
        ];
        let mut cut = s.len();
        let mut boundaries: Vec<usize> = markers
            .iter()
            .flat_map(|m| s.match_indices(m).map(|(i, _)| i))
            .collect();
        boundaries.sort_unstable();
        for _ in 0..drops {
            if let Some(b) = boundaries.pop() {
                cut = b;
            }
        }
        s = s[..cut].trim_end().to_string();
        if !s.ends_with('.') {
            s.push('.');
        }
    }
    if defects.contains(&Defect::VagueChart) {
        for phrase in [
            "bar chart",
            "bar graph",
            "histogram",
            "pie chart",
            "donut-style breakdown",
            "line chart",
            "trend line",
            "time series",
            "scatter plot",
            "scatter chart",
            "point cloud",
            "bars",
            "pie",
        ] {
            if s.contains(phrase) {
                s = s.replacen(phrase, "chart", 1);
                break;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;

    fn study() -> StudyReport {
        let c = Corpus::build(&CorpusConfig {
            seed: 71,
            instances_per_domain: 1,
            queries_per_db: 16,
            paraphrases: (2, 3),
        });
        let split = c.split_in_domain(1);
        let config = StudyConfig {
            databases: 5,
            per_cell: 3,
            shots: 8,
            ..Default::default()
        };
        run_study(&c, &split.train, &config)
    }

    #[test]
    fn experts_outperform_non_experts_overall() {
        let r = study();
        let rate = |user: UserKind| {
            let sessions: Vec<&Session> = r.sessions.iter().filter(|s| s.user == user).collect();
            sessions.iter().filter(|s| s.success).count() as f64 / sessions.len() as f64
        };
        let expert = rate(UserKind::Expert);
        let novice = rate(UserKind::NonExpert);
        assert!(
            expert >= novice,
            "experts ({expert:.2}) should match or beat non-experts ({novice:.2})"
        );
    }

    #[test]
    fn non_experts_take_longer() {
        let r = study();
        let e = r.mean_seconds(UserKind::Expert, |s| s.compose_seconds);
        let n = r.mean_seconds(UserKind::NonExpert, |s| s.compose_seconds);
        assert!(
            n > e,
            "non-experts ({n:.0}s) should compose slower than experts ({e:.0}s)"
        );
    }

    #[test]
    fn system_times_near_paper_values() {
        let r = study();
        for user in [UserKind::Expert, UserKind::NonExpert] {
            let p = r.mean_seconds(user, |s| s.prompt_seconds / (s.revisions as f64 + 1.0));
            let g = r.mean_seconds(user, |s| s.generate_seconds / (s.revisions as f64 + 1.0));
            assert!((2.0..6.0).contains(&p), "prompt time {p}");
            assert!((1.5..4.0).contains(&g), "generate time {g}");
        }
    }

    #[test]
    fn sessions_cover_both_groups_and_levels() {
        let r = study();
        assert!(r.sessions.iter().any(|s| s.user == UserKind::Expert));
        assert!(r.sessions.iter().any(|s| s.user == UserKind::NonExpert));
        let expert_n = r
            .sessions
            .iter()
            .filter(|s| s.user == UserKind::Expert)
            .count();
        let novice_n = r
            .sessions
            .iter()
            .filter(|s| s.user == UserKind::NonExpert)
            .count();
        assert_eq!(expert_n, novice_n, "both groups attempt the same targets");
    }

    #[test]
    fn defects_shorten_queries() {
        let ideal = "Show bars of the number of name per team where age is over 30 sorted by team in ascending order.";
        let degraded = apply_defects(ideal, &[Defect::DropTail]);
        assert!(degraded.len() < ideal.len());
        assert!(degraded.ends_with('.'));
        assert_eq!(apply_defects(ideal, &[]), ideal);
        let vague = apply_defects(ideal, &[Defect::VagueChart]);
        assert!(!vague.contains("bars"));
        assert!(vague.contains("chart"));
    }
}
