//! Evaluation of NL2VIS systems: the paper's metrics, the evaluation driver,
//! the failure taxonomy, the iterative-updating strategies, and the
//! simulated user study.

pub mod failure;
pub mod metrics;
pub mod optimize;
pub mod runner;
pub mod userstudy;

pub use failure::FailureTaxonomy;
pub use metrics::{score_completion, score_query, Accuracy, EvalOutcome};
pub use optimize::{apply_strategy, run_strategy, Strategy, StrategyReport};
pub use runner::{
    evaluate_llm, evaluate_llm_with_progress, evaluate_model, evaluate_model_with_progress,
    EvalReport, LlmEvalConfig, Selection, WorkerStats,
};
pub use userstudy::{run_study, StudyConfig, StudyReport, UserKind};
