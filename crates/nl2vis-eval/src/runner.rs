//! The evaluation driver: runs a model (simulated LLM or trained baseline)
//! over a test split and aggregates the paper's metrics, with join/non-join
//! and hardness breakdowns. Evaluation parallelizes across examples with
//! scoped threads.

use crate::metrics::{score_completion, score_query, Accuracy, EvalOutcome};
use nl2vis_baselines::Nl2VisModel;
use nl2vis_corpus::{Corpus, Example, Hardness};
use nl2vis_llm::{GenOptions, LlmClient};
use nl2vis_obs as obs;
use nl2vis_prompt::select::{select_by_similarity, select_grouped, select_same_database, DemoPool};
use nl2vis_prompt::{build_prompt, AnswerFormat, PromptFormat, PromptOptions};
use nl2vis_query::component::Component;

/// Demonstration-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Top-k by Jaccard similarity over the whole pool (the default).
    Similarity,
    /// All k from the single most relevant database (Fig. 8's same-DB rows).
    SameDatabase,
    /// `dbs × per_db` from distinct databases (Fig. 8's grid).
    Grouped {
        /// Number of distinct databases (A).
        dbs: usize,
        /// Examples per database (B).
        per_db: usize,
    },
}

/// Configuration of one LLM evaluation run.
#[derive(Debug, Clone)]
pub struct LlmEvalConfig {
    /// Table serialization format.
    pub format: PromptFormat,
    /// Requested output formalism (VQL or direct Vega-Lite).
    pub answer: AnswerFormat,
    /// Requested demonstration count (k-shot).
    pub shots: usize,
    /// Demonstration selection policy.
    pub selection: Selection,
    /// Prompt token budget (defaults to the model's window).
    pub token_budget: usize,
    /// Chain-of-thought prompting.
    pub chain_of_thought: bool,
    /// Role-play persona.
    pub role_play: bool,
    /// Generation options forwarded to the model.
    pub gen: GenOptions,
    /// Worker-thread cap for parallel evaluation. `None` uses the machine's
    /// available parallelism, capped at 8 (the historical default).
    pub workers: Option<usize>,
}

impl Default for LlmEvalConfig {
    fn default() -> LlmEvalConfig {
        LlmEvalConfig {
            format: PromptFormat::Table2Sql,
            answer: AnswerFormat::Vql,
            shots: 1,
            selection: Selection::Similarity,
            token_budget: 4096,
            chain_of_thought: false,
            role_play: false,
            gen: GenOptions::default(),
            workers: None,
        }
    }
}

/// Result of one evaluated example.
#[derive(Debug, Clone)]
pub struct ExampleResult {
    /// Corpus example id.
    pub id: usize,
    /// Scoring outcome.
    pub outcome: EvalOutcome,
    /// Join scenario?
    pub is_join: bool,
    /// nvBench hardness.
    pub hardness: Hardness,
    /// The raw completion (LLM runs) for failure inspection.
    pub completion: Option<String>,
    /// Set when the transport failed and no completion ever existed. Such
    /// rows are *infrastructure* failures: they are excluded from every
    /// accuracy aggregate and from the failure taxonomy (attributing them
    /// to the model would silently corrupt both, since the model said
    /// nothing), and surface instead through
    /// [`EvalReport::transport_failures`] and the `eval.error.transport`
    /// counter.
    pub transport_error: Option<String>,
    /// Trace id of the example's `eval.example` span (0 when the example
    /// was scored without tracing). Joins this row against JSONL sink
    /// events and the flight recorder's `GET /trace/<id>` record.
    pub trace_id: u64,
}

impl ExampleResult {
    /// Whether this example produced a scoreable completion.
    pub fn scored(&self) -> bool {
        self.transport_error.is_none()
    }
}

/// Throughput of one evaluation worker thread.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Examples the worker processed.
    pub examples: usize,
    /// Wall-clock time the worker ran.
    pub elapsed: std::time::Duration,
}

impl WorkerStats {
    /// Examples per second (0 for an instantaneous batch).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.examples as f64 / secs
        }
    }
}

/// An aggregated evaluation report.
#[derive(Debug, Clone, Default)]
pub struct EvalReport {
    /// Per-example results.
    pub results: Vec<ExampleResult>,
    /// Examples dropped because a worker panicked while scoring them (also
    /// counted on the `eval.worker_panics` metric). The rest of the report
    /// stays valid — a panic no longer poisons the whole run.
    pub worker_panics: usize,
    /// Per-worker throughput of the parallel evaluation.
    pub worker_stats: Vec<WorkerStats>,
}

impl EvalReport {
    /// Overall accuracy.
    pub fn overall(&self) -> Accuracy {
        self.accuracy(|_| true)
    }

    /// Accuracy over join scenarios.
    pub fn join(&self) -> Accuracy {
        self.accuracy(|r| r.is_join)
    }

    /// Accuracy over non-join scenarios.
    pub fn non_join(&self) -> Accuracy {
        self.accuracy(|r| !r.is_join)
    }

    /// Accuracy over one hardness level.
    pub fn by_hardness(&self, h: Hardness) -> Accuracy {
        self.accuracy(|r| r.hardness == h)
    }

    /// Accuracy over a filtered subset. Transport-failed examples never
    /// enter the accumulator — neither numerator nor denominator — because
    /// no model output exists to score (the VisEval attribution rule).
    pub fn accuracy<F: Fn(&ExampleResult) -> bool>(&self, keep: F) -> Accuracy {
        let mut acc = Accuracy::default();
        for r in self.results.iter().filter(|r| r.scored() && keep(r)) {
            acc.record(&r.outcome);
        }
        acc
    }

    /// Ids of failed examples (neither exact nor execution accurate).
    /// Transport failures are not model failures and are listed by
    /// [`EvalReport::transport_failed_ids`] instead.
    pub fn failed_ids(&self) -> Vec<usize> {
        self.results
            .iter()
            .filter(|r| r.scored() && r.outcome.failed())
            .map(|r| r.id)
            .collect()
    }

    /// Number of examples whose transport failed (never scored).
    pub fn transport_failures(&self) -> usize {
        self.results.iter().filter(|r| !r.scored()).count()
    }

    /// Ids of examples whose transport failed, with the failure message.
    pub fn transport_failed_ids(&self) -> Vec<(usize, String)> {
        self.results
            .iter()
            .filter_map(|r| r.transport_error.as_ref().map(|e| (r.id, e.clone())))
            .collect()
    }

    /// Exports per-example results as CSV (id, hardness, join, exact, exec,
    /// wrong components, trace id) for external analysis. The `trace_id`
    /// column joins failed rows against JSONL sink events and flight
    /// recorder records.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = vec![vec![
            "id".into(),
            "hardness".into(),
            "is_join".into(),
            "exact".into(),
            "exec".into(),
            "parse_failed".into(),
            "wrong_components".into(),
            "transport_failed".into(),
            "trace_id".into(),
        ]];
        for r in &self.results {
            rows.push(vec![
                r.id.to_string(),
                r.hardness.label().to_string(),
                r.is_join.to_string(),
                r.outcome.exact.to_string(),
                r.outcome.exec.to_string(),
                r.outcome.parse_failed.to_string(),
                r.outcome
                    .components_wrong
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(";"),
                (!r.scored()).to_string(),
                r.trace_id.to_string(),
            ]);
        }
        nl2vis_data::csv::write_rows(&rows)
    }

    /// Component accuracy (the paper's third metric): the share of
    /// predictions agreeing with gold on each query component. Unparseable
    /// outputs count as disagreeing on every component; transport failures
    /// are excluded outright (no prediction exists).
    pub fn component_accuracy(&self) -> Vec<(Component, f64)> {
        let n = self.results.iter().filter(|r| r.scored()).count().max(1) as f64;
        Component::all()
            .into_iter()
            .map(|c| {
                let agree = self
                    .results
                    .iter()
                    .filter(|r| {
                        r.scored()
                            && !r.outcome.parse_failed
                            && !r.outcome.components_wrong.contains(&c)
                    })
                    .count() as f64;
                (c, agree / n)
            })
            .collect()
    }

    /// Counts of wrong components across failures.
    pub fn component_failures(&self) -> Vec<(Component, usize)> {
        let mut counts: Vec<(Component, usize)> =
            Component::all().into_iter().map(|c| (c, 0)).collect();
        for r in self
            .results
            .iter()
            .filter(|r| r.scored() && r.outcome.failed())
        {
            for c in &r.outcome.components_wrong {
                if let Some(slot) = counts.iter_mut().find(|(cc, _)| cc == c) {
                    slot.1 += 1;
                }
            }
        }
        counts
    }
}

/// Builds the demonstration list for one test example (convenience wrapper
/// around [`pick_demos_pooled`] that constructs a throwaway pool).
pub fn pick_demos<'a>(
    corpus: &'a Corpus,
    train_ids: &[usize],
    test: &Example,
    config: &LlmEvalConfig,
) -> Vec<&'a Example> {
    let pool: Vec<&Example> = train_ids
        .iter()
        .filter_map(|id| corpus.example(*id))
        .filter(|e| e.id != test.id)
        .collect();
    match config.selection {
        Selection::Similarity => select_by_similarity(&pool, &test.nl, config.shots),
        Selection::SameDatabase => select_same_database(&pool, &test.nl, config.shots),
        Selection::Grouped { dbs, per_db } => select_grouped(&pool, &test.nl, dbs, per_db),
    }
}

/// Builds the demonstration list using a precomputed [`DemoPool`].
pub fn pick_demos_pooled<'a>(
    pool: &DemoPool<'a>,
    test: &Example,
    config: &LlmEvalConfig,
) -> Vec<&'a Example> {
    match config.selection {
        Selection::Similarity => pool.select_similar(&test.nl, config.shots, test.id),
        Selection::SameDatabase => pool.select_same_db(&test.nl, config.shots, test.id),
        Selection::Grouped { dbs, per_db } => pool.select_grouped(&test.nl, dbs, per_db, test.id),
    }
}

/// Evaluates an LLM over the test ids, drawing demonstrations from the
/// training ids. `limit` caps the number of evaluated examples for quick
/// runs.
pub fn evaluate_llm(
    llm: &(dyn LlmClient + Sync),
    corpus: &Corpus,
    train_ids: &[usize],
    test_ids: &[usize],
    config: &LlmEvalConfig,
    limit: Option<usize>,
) -> EvalReport {
    evaluate_llm_with_progress(llm, corpus, train_ids, test_ids, config, limit, |_, _| {})
}

/// [`evaluate_llm`] with a progress callback, invoked after each scored
/// example with `(completed, total)` — from evaluation worker threads, so
/// the callback must be cheap and `Sync`.
pub fn evaluate_llm_with_progress(
    llm: &(dyn LlmClient + Sync),
    corpus: &Corpus,
    train_ids: &[usize],
    test_ids: &[usize],
    config: &LlmEvalConfig,
    limit: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
) -> EvalReport {
    let _span = obs::span!("eval.llm_run");
    let ids: Vec<usize> = test_ids
        .iter()
        .copied()
        .take(limit.unwrap_or(usize::MAX))
        .collect();
    let candidates: Vec<&Example> = train_ids
        .iter()
        .filter_map(|id| corpus.example(*id))
        .collect();
    let pool = DemoPool::new(&candidates);
    parallel_map(
        &ids,
        config.workers,
        |id| {
            let test = corpus.example(*id)?;
            // Every example is its own trace — even on the inline
            // single-threaded path where the run-level span is live on the
            // same thread — so a failed row's trace_id in the CSV fetches
            // exactly that example's spans from the flight recorder.
            let example_span = obs::Span::enter_root("eval.example");
            example_span.annotate("example", &test.id.to_string());
            let trace_id = example_span.trace();
            let db = corpus.catalog.database(&test.db).ok()?;
            let demos = pick_demos_pooled(&pool, test, config);
            let options = PromptOptions {
                format: config.format,
                answer: config.answer,
                token_budget: config.token_budget,
                chain_of_thought: config.chain_of_thought,
                role_play: config.role_play,
            };
            let prompt = build_prompt(&options, db, &test.nl, &demos, |d| {
                corpus
                    .catalog
                    .database(&d.db)
                    .expect("demo database exists")
            });
            // The typed completion path: a transport failure here means the
            // model never spoke, so the example must land in
            // `eval.error.transport` — not in the accuracy denominator and
            // not in the failure taxonomy.
            let completion = match llm.try_complete_with(&prompt.text, &config.gen) {
                Ok(completion) => completion,
                Err(e) => {
                    obs::transport_error("eval", &format!("example {}: {e}", test.id));
                    return Some(ExampleResult {
                        id: test.id,
                        outcome: EvalOutcome::unscored(),
                        is_join: test.is_join,
                        hardness: test.hardness,
                        completion: None,
                        transport_error: Some(e.to_string()),
                        trace_id,
                    });
                }
            };
            let outcome = score_completion(&completion, &test.vql, db);
            Some(ExampleResult {
                id: test.id,
                outcome,
                is_join: test.is_join,
                hardness: test.hardness,
                completion: Some(completion),
                transport_error: None,
                trace_id,
            })
        },
        progress,
    )
}

/// Evaluates a trained baseline model over the test ids.
pub fn evaluate_model(
    model: &(dyn Nl2VisModel + Sync),
    corpus: &Corpus,
    test_ids: &[usize],
    limit: Option<usize>,
) -> EvalReport {
    evaluate_model_with_progress(model, corpus, test_ids, limit, |_, _| {})
}

/// [`evaluate_model`] with a progress callback (see
/// [`evaluate_llm_with_progress`]).
pub fn evaluate_model_with_progress(
    model: &(dyn Nl2VisModel + Sync),
    corpus: &Corpus,
    test_ids: &[usize],
    limit: Option<usize>,
    progress: impl Fn(usize, usize) + Sync,
) -> EvalReport {
    let _span = obs::span!("eval.model_run");
    let ids: Vec<usize> = test_ids
        .iter()
        .copied()
        .take(limit.unwrap_or(usize::MAX))
        .collect();
    parallel_map(
        &ids,
        None,
        |id| {
            let test = corpus.example(*id)?;
            let example_span = obs::Span::enter_root("eval.example");
            example_span.annotate("example", &test.id.to_string());
            let trace_id = example_span.trace();
            let db = corpus.catalog.database(&test.db).ok()?;
            let outcome = match model.predict(&test.nl, db) {
                Some(pred) => score_query(&pred, &test.vql, db),
                None => EvalOutcome {
                    predicted: None,
                    exact: false,
                    exec: false,
                    components_wrong: Vec::new(),
                    parse_failed: true,
                },
            };
            Some(ExampleResult {
                id: test.id,
                outcome,
                is_join: test.is_join,
                hardness: test.hardness,
                completion: None,
                transport_error: None,
                trace_id,
            })
        },
        progress,
    )
}

/// The default evaluation worker count: available parallelism, capped at 8.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// One instrumented evaluation step: times the example into
/// `eval.example_latency_us`, converts a panic into a counted miss, and
/// reports progress.
fn run_one<F, P>(
    id: &usize,
    f: &F,
    total: usize,
    done: &std::sync::atomic::AtomicUsize,
    progress: &P,
    panics: &mut usize,
) -> Option<ExampleResult>
where
    F: Fn(&usize) -> Option<ExampleResult> + Sync,
    P: Fn(usize, usize) + Sync,
{
    let started = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(id)));
    obs::global()
        .histogram("eval.example_latency_us")
        .record_duration(started.elapsed());
    obs::global().counter("eval.examples_total").inc();
    let completed = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
    progress(completed, total);
    match result {
        Ok(r) => r,
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            obs::count("eval.worker_panics", 1);
            obs::error("eval", "worker_panic", &format!("example {id}: {message}"));
            *panics += 1;
            None
        }
    }
}

/// Order-preserving parallel map over ids using scoped threads and a
/// shared work queue. Worker panics are caught per example and surfaced as
/// [`EvalReport::worker_panics`] (plus the `eval.worker_panics` counter)
/// instead of aborting the run.
///
/// The queue is a single atomic claim counter: each worker repeatedly
/// claims the next unprocessed index until none remain. Unlike the static
/// chunking this replaced, a worker that draws slow examples (an LLM
/// stall, a retry storm) only delays the examples it has already claimed —
/// the rest of the queue drains through the other workers, so wall-clock
/// tracks the *sum* of work, not the unluckiest chunk. Results land in a
/// preallocated slot per index, so output order is the input order
/// regardless of which worker processed what.
fn parallel_map<F, P>(ids: &[usize], workers: Option<usize>, f: F, progress: P) -> EvalReport
where
    F: Fn(&usize) -> Option<ExampleResult> + Sync,
    P: Fn(usize, usize) + Sync,
{
    let total = ids.len();
    let workers = workers
        .unwrap_or_else(default_workers)
        .max(1)
        .min(total.max(1));
    let done = std::sync::atomic::AtomicUsize::new(0);
    if total < 8 || workers < 2 {
        let started = std::time::Instant::now();
        let mut panics = 0usize;
        let results: Vec<ExampleResult> = ids
            .iter()
            .filter_map(|id| run_one(id, &f, total, &done, &progress, &mut panics))
            .collect();
        let stats = vec![WorkerStats {
            worker: 0,
            examples: total,
            elapsed: started.elapsed(),
        }];
        return EvalReport {
            results,
            worker_panics: panics,
            worker_stats: stats,
        };
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<ExampleResult>> =
        std::iter::repeat_with(|| None).take(total).collect();
    let mut worker_panics = 0usize;
    let mut worker_stats = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let started = std::time::Instant::now();
                    let mut panics = 0usize;
                    let mut claimed: Vec<(usize, Option<ExampleResult>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let result = run_one(&ids[i], &f, total, &done, &progress, &mut panics);
                        claimed.push((i, result));
                    }
                    (claimed, panics, started.elapsed())
                })
            })
            .collect();
        for (worker, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((claimed, panics, elapsed)) => {
                    worker_stats.push(WorkerStats {
                        worker,
                        // Indices this worker actually claimed and ran —
                        // under the queue, per-worker counts reflect real
                        // throughput, not a pre-assigned share.
                        examples: claimed.len(),
                        elapsed,
                    });
                    worker_panics += panics;
                    for (i, result) in claimed {
                        slots[i] = result;
                    }
                }
                // Unreachable in practice (panics are caught per example),
                // but a dead worker must not take the report down with it —
                // at most that worker's claimed results are lost.
                Err(_) => {
                    obs::count("eval.worker_panics", 1);
                    worker_panics += 1;
                }
            }
        }
    });
    EvalReport {
        results: slots.into_iter().flatten().collect(),
        worker_panics,
        worker_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_baselines::{Seq2Vis, T5Model, T5Size};
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_llm::{ModelProfile, SimLlm};

    fn fixture() -> Corpus {
        Corpus::build(&CorpusConfig {
            seed: 61,
            instances_per_domain: 1,
            queries_per_db: 12,
            paraphrases: (2, 3),
        })
    }

    #[test]
    fn llm_in_domain_beats_cross_domain() {
        // Aggregate over several split seeds: which databases land in a
        // cross-domain test fold varies a lot at this corpus size.
        let c = fixture();
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let config = LlmEvalConfig {
            shots: 5,
            ..Default::default()
        };
        let mut acc_in = Accuracy::default();
        let mut acc_cross = Accuracy::default();
        for seed in 1..=3 {
            let ind = c.split_in_domain(seed);
            let crd = c.split_cross_domain(seed);
            let r_in = evaluate_llm(&llm, &c, &ind.train, &ind.test, &config, Some(40));
            let r_cross = evaluate_llm(&llm, &c, &crd.train, &crd.test, &config, Some(40));
            acc_in.merge(&r_in.overall());
            acc_cross.merge(&r_cross.overall());
        }
        assert!(
            acc_in.exact() > acc_cross.exact(),
            "in-domain {:.2} should beat cross-domain {:.2}",
            acc_in.exact(),
            acc_cross.exact()
        );
    }

    #[test]
    fn baseline_evaluation_report_shapes() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        assert_eq!(r.results.len(), 30.min(split.test.len()));
        assert_eq!(r.join().n() + r.non_join().n(), r.overall().n());
        let by_hardness: usize = Hardness::all().iter().map(|h| r.by_hardness(*h).n()).sum();
        assert_eq!(by_hardness, r.overall().n());
    }

    #[test]
    fn t5_beats_seq2vis_cross_domain_via_runner() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let t5 = T5Model::train(&c, &split.train, T5Size::Base, 1);
        let s2v = Seq2Vis::train(&c, &split.train);
        let r_t5 = evaluate_model(&t5, &c, &split.test, Some(50));
        let r_s2v = evaluate_model(&s2v, &c, &split.test, Some(50));
        assert!(r_t5.overall().exact() > r_s2v.overall().exact());
    }

    #[test]
    fn failed_ids_and_component_failures_consistent() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        let failed = r.failed_ids();
        assert!(failed.len() <= r.results.len());
        let total_component_failures: usize = r.component_failures().iter().map(|(_, n)| n).sum();
        // Every non-parse failure contributes at least one wrong component.
        let non_parse_failures = r
            .results
            .iter()
            .filter(|x| x.outcome.failed() && !x.outcome.parse_failed)
            .count();
        assert!(total_component_failures >= non_parse_failures);
    }

    #[test]
    fn report_exports_csv() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(10));
        let csv_text = r.to_csv();
        let records = nl2vis_data::csv::parse(&csv_text).unwrap();
        assert_eq!(records.len(), 11); // header + 10 results
        assert_eq!(records[0][0], "id");
        assert!(
            records[1][1] == "easy"
                || records[1][1] == "medium"
                || records[1][1] == "hard"
                || records[1][1] == "extra hard"
        );
        assert_eq!(records[0].last().map(String::as_str), Some("trace_id"));
    }

    #[test]
    fn every_example_gets_its_own_trace_id() {
        // Trace ids must be nonzero and mutually distinct even when the
        // whole run executes inline on the driver thread (small total →
        // single-threaded path), where a naive nested span would merge all
        // examples into the run-level trace.
        let c = fixture();
        let split = c.split_cross_domain(1);
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let config = LlmEvalConfig {
            workers: Some(1),
            ..LlmEvalConfig::default()
        };
        let r = evaluate_llm(&llm, &c, &split.train, &split.test, &config, Some(5));
        assert!(!r.results.is_empty());
        let ids: Vec<u64> = r.results.iter().map(|x| x.trace_id).collect();
        assert!(ids.iter().all(|&t| t != 0), "zero trace id in {ids:?}");
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate trace ids in {ids:?}");
        // The CSV carries the same ids in its last column.
        let records = nl2vis_data::csv::parse(&r.to_csv()).unwrap();
        for (row, expected) in records[1..].iter().zip(&ids) {
            assert_eq!(
                row.last().map(String::as_str),
                Some(expected.to_string().as_str())
            );
        }
    }

    #[test]
    fn trace_ids_stay_distinct_across_worker_threads() {
        // The multi-worker path: examples claimed from the work queue by
        // several threads must still each get their own nonzero trace id,
        // and order preservation must keep each id attached to its row.
        let c = fixture();
        let split = c.split_cross_domain(1);
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let config = LlmEvalConfig {
            workers: Some(4),
            ..LlmEvalConfig::default()
        };
        let r = evaluate_llm(&llm, &c, &split.train, &split.test, &config, Some(20));
        assert!(r.results.len() >= 8, "enough examples to engage the queue");
        assert!(
            r.worker_stats.len() > 1,
            "the run actually used multiple workers"
        );
        let ids: Vec<u64> = r.results.iter().map(|x| x.trace_id).collect();
        assert!(ids.iter().all(|&t| t != 0), "zero trace id in {ids:?}");
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate trace ids in {ids:?}");
    }

    #[test]
    fn component_accuracy_bounds_and_consistency() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        for (component, accuracy) in r.component_accuracy() {
            assert!((0.0..=1.0).contains(&accuracy), "{component}: {accuracy}");
        }
        // Exact matches agree on every component, so each component accuracy
        // is at least the exact accuracy.
        let exact = r.overall().exact();
        for (component, accuracy) in r.component_accuracy() {
            assert!(
                accuracy + 1e-9 >= exact,
                "{component}: {accuracy} < {exact}"
            );
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let c = fixture();
        let split = c.split_in_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, None);
        let ids: Vec<usize> = r.results.iter().map(|x| x.id).collect();
        assert_eq!(ids, split.test[..ids.len()].to_vec());
        assert_eq!(r.worker_panics, 0);
        let processed: usize = r.worker_stats.iter().map(|w| w.examples).sum();
        assert_eq!(processed, ids.len());
    }

    #[test]
    fn worker_cap_is_configurable_and_results_identical() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let base = LlmEvalConfig::default();
        let capped = LlmEvalConfig {
            workers: Some(2),
            ..Default::default()
        };
        let wide = LlmEvalConfig {
            workers: Some(16),
            ..Default::default()
        };
        let r_base = evaluate_llm(&llm, &c, &split.train, &split.test, &base, Some(24));
        let r_capped = evaluate_llm(&llm, &c, &split.train, &split.test, &capped, Some(24));
        let r_wide = evaluate_llm(&llm, &c, &split.train, &split.test, &wide, Some(24));
        let key = |r: &EvalReport| -> Vec<(usize, bool, bool)> {
            r.results
                .iter()
                .map(|x| (x.id, x.outcome.exact, x.outcome.exec))
                .collect()
        };
        assert_eq!(key(&r_base), key(&r_capped));
        assert_eq!(key(&r_base), key(&r_wide));
        // A 2-worker run over >= 8 examples spawns exactly 2 queue workers.
        assert_eq!(r_capped.worker_stats.len(), 2);
        assert!(r_wide.worker_stats.len() > 2);
    }

    /// Adversarial skew: the first example cannot finish until every other
    /// example has been processed. Static chunking deadlocks here (the
    /// blocked example's chunk-mates are stuck behind it in the same
    /// worker); the shared work queue lets the other worker drain the rest
    /// of the queue, which releases the blocked example.
    #[test]
    fn work_queue_drains_around_a_blocked_example() {
        let n = 8usize;
        let ids: Vec<usize> = (0..n).collect();
        let latch = std::sync::Arc::new((std::sync::Mutex::new(n - 1), std::sync::Condvar::new()));
        let r = parallel_map(
            &ids,
            Some(2),
            |id| {
                let (remaining, cv) = &*latch;
                if *id == 0 {
                    let mut left = remaining.lock().unwrap();
                    while *left > 0 {
                        let (next, timed_out) = cv
                            .wait_timeout(left, std::time::Duration::from_secs(10))
                            .unwrap();
                        left = next;
                        assert!(
                            !timed_out.timed_out(),
                            "scheduler failed to drain the queue around a blocked example"
                        );
                    }
                } else {
                    let mut left = remaining.lock().unwrap();
                    *left -= 1;
                    cv.notify_all();
                }
                Some(ExampleResult {
                    id: *id,
                    outcome: EvalOutcome {
                        predicted: None,
                        exact: false,
                        exec: false,
                        components_wrong: Vec::new(),
                        parse_failed: false,
                    },
                    is_join: false,
                    hardness: Hardness::Easy,
                    completion: None,
                    transport_error: None,
                    trace_id: 0,
                })
            },
            |_, _| {},
        );
        assert_eq!(r.worker_panics, 0);
        let got: Vec<usize> = r.results.iter().map(|x| x.id).collect();
        assert_eq!(
            got, ids,
            "order is preserved despite out-of-order completion"
        );
        // The blocked example pinned one worker; the other processed the
        // remaining seven.
        let max_share = r.worker_stats.iter().map(|w| w.examples).max().unwrap();
        assert_eq!(max_share, n - 1);
    }

    #[test]
    fn progress_callback_sees_every_example() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let config = LlmEvalConfig::default();
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let max_seen = std::sync::atomic::AtomicUsize::new(0);
        let n = 20.min(split.test.len());
        let r = evaluate_llm_with_progress(
            &llm,
            &c,
            &split.train,
            &split.test,
            &config,
            Some(n),
            |done, total| {
                assert_eq!(total, n);
                assert!(done >= 1 && done <= total);
                calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                max_seen.fetch_max(done, std::sync::atomic::Ordering::Relaxed);
            },
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), n);
        assert_eq!(max_seen.load(std::sync::atomic::Ordering::Relaxed), n);
        assert_eq!(r.results.len(), n);
    }

    /// A model that panics on some questions must not poison the report:
    /// the surviving examples score normally and the panics are counted.
    #[test]
    fn worker_panics_are_counted_not_fatal() {
        struct PanickyLlm {
            inner: SimLlm,
        }
        impl nl2vis_llm::LlmClient for PanickyLlm {
            fn name(&self) -> &str {
                "panicky"
            }
            fn try_complete_with(
                &self,
                prompt: &str,
                opts: &nl2vis_llm::GenOptions,
            ) -> nl2vis_llm::CompletionOutcome {
                // Deterministic subset: panic whenever the prompt length is
                // divisible by 3 (roughly a third of the examples).
                if prompt.len() % 3 == 0 {
                    panic!("simulated scoring crash");
                }
                self.inner.try_complete_with(prompt, opts)
            }
        }
        let c = fixture();
        let split = c.split_cross_domain(1);
        let llm = PanickyLlm {
            inner: SimLlm::new(ModelProfile::davinci_003(), 3),
        };
        let config = LlmEvalConfig::default();
        let n = 30.min(split.test.len());
        let panics_before = nl2vis_obs::global().counter("eval.worker_panics").get();
        // The default panic hook prints a backtrace per panic; silence it
        // for this test so the suite's output stays readable.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = evaluate_llm(&llm, &c, &split.train, &split.test, &config, Some(n));
        std::panic::set_hook(prev_hook);
        assert!(r.worker_panics > 0, "the panic subset must be non-empty");
        assert_eq!(r.results.len() + r.worker_panics, n);
        assert!(
            nl2vis_obs::global().counter("eval.worker_panics").get()
                >= panics_before + r.worker_panics as u64
        );
        // Surviving results still aggregate.
        let _ = r.overall();
    }
}
