//! The evaluation driver: runs a model (simulated LLM or trained baseline)
//! over a test split and aggregates the paper's metrics, with join/non-join
//! and hardness breakdowns. Evaluation parallelizes across examples with
//! scoped threads.

use crate::metrics::{score_completion, score_query, Accuracy, EvalOutcome};
use nl2vis_baselines::Nl2VisModel;
use nl2vis_corpus::{Corpus, Example, Hardness};
use nl2vis_llm::{GenOptions, LlmClient};
use nl2vis_prompt::select::{select_by_similarity, select_grouped, select_same_database, DemoPool};
use nl2vis_prompt::{build_prompt, AnswerFormat, PromptFormat, PromptOptions};
use nl2vis_query::component::Component;

/// Demonstration-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Top-k by Jaccard similarity over the whole pool (the default).
    Similarity,
    /// All k from the single most relevant database (Fig. 8's same-DB rows).
    SameDatabase,
    /// `dbs × per_db` from distinct databases (Fig. 8's grid).
    Grouped {
        /// Number of distinct databases (A).
        dbs: usize,
        /// Examples per database (B).
        per_db: usize,
    },
}

/// Configuration of one LLM evaluation run.
#[derive(Debug, Clone)]
pub struct LlmEvalConfig {
    /// Table serialization format.
    pub format: PromptFormat,
    /// Requested output formalism (VQL or direct Vega-Lite).
    pub answer: AnswerFormat,
    /// Requested demonstration count (k-shot).
    pub shots: usize,
    /// Demonstration selection policy.
    pub selection: Selection,
    /// Prompt token budget (defaults to the model's window).
    pub token_budget: usize,
    /// Chain-of-thought prompting.
    pub chain_of_thought: bool,
    /// Role-play persona.
    pub role_play: bool,
    /// Generation options forwarded to the model.
    pub gen: GenOptions,
}

impl Default for LlmEvalConfig {
    fn default() -> LlmEvalConfig {
        LlmEvalConfig {
            format: PromptFormat::Table2Sql,
            answer: AnswerFormat::Vql,
            shots: 1,
            selection: Selection::Similarity,
            token_budget: 4096,
            chain_of_thought: false,
            role_play: false,
            gen: GenOptions::default(),
        }
    }
}

/// Result of one evaluated example.
#[derive(Debug, Clone)]
pub struct ExampleResult {
    /// Corpus example id.
    pub id: usize,
    /// Scoring outcome.
    pub outcome: EvalOutcome,
    /// Join scenario?
    pub is_join: bool,
    /// nvBench hardness.
    pub hardness: Hardness,
    /// The raw completion (LLM runs) for failure inspection.
    pub completion: Option<String>,
}

/// An aggregated evaluation report.
#[derive(Debug, Clone, Default)]
pub struct EvalReport {
    /// Per-example results.
    pub results: Vec<ExampleResult>,
}

impl EvalReport {
    /// Overall accuracy.
    pub fn overall(&self) -> Accuracy {
        self.accuracy(|_| true)
    }

    /// Accuracy over join scenarios.
    pub fn join(&self) -> Accuracy {
        self.accuracy(|r| r.is_join)
    }

    /// Accuracy over non-join scenarios.
    pub fn non_join(&self) -> Accuracy {
        self.accuracy(|r| !r.is_join)
    }

    /// Accuracy over one hardness level.
    pub fn by_hardness(&self, h: Hardness) -> Accuracy {
        self.accuracy(|r| r.hardness == h)
    }

    /// Accuracy over a filtered subset.
    pub fn accuracy<F: Fn(&ExampleResult) -> bool>(&self, keep: F) -> Accuracy {
        let mut acc = Accuracy::default();
        for r in self.results.iter().filter(|r| keep(r)) {
            acc.record(&r.outcome);
        }
        acc
    }

    /// Ids of failed examples (neither exact nor execution accurate).
    pub fn failed_ids(&self) -> Vec<usize> {
        self.results.iter().filter(|r| r.outcome.failed()).map(|r| r.id).collect()
    }

    /// Exports per-example results as CSV (id, hardness, join, exact, exec,
    /// wrong components) for external analysis.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = vec![vec![
            "id".into(),
            "hardness".into(),
            "is_join".into(),
            "exact".into(),
            "exec".into(),
            "parse_failed".into(),
            "wrong_components".into(),
        ]];
        for r in &self.results {
            rows.push(vec![
                r.id.to_string(),
                r.hardness.label().to_string(),
                r.is_join.to_string(),
                r.outcome.exact.to_string(),
                r.outcome.exec.to_string(),
                r.outcome.parse_failed.to_string(),
                r.outcome
                    .components_wrong
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(";"),
            ]);
        }
        nl2vis_data::csv::write_rows(&rows)
    }

    /// Component accuracy (the paper's third metric): the share of
    /// predictions agreeing with gold on each query component. Unparseable
    /// outputs count as disagreeing on every component.
    pub fn component_accuracy(&self) -> Vec<(Component, f64)> {
        let n = self.results.len().max(1) as f64;
        Component::all()
            .into_iter()
            .map(|c| {
                let agree = self
                    .results
                    .iter()
                    .filter(|r| {
                        !r.outcome.parse_failed && !r.outcome.components_wrong.contains(&c)
                    })
                    .count() as f64;
                (c, agree / n)
            })
            .collect()
    }

    /// Counts of wrong components across failures.
    pub fn component_failures(&self) -> Vec<(Component, usize)> {
        let mut counts: Vec<(Component, usize)> =
            Component::all().into_iter().map(|c| (c, 0)).collect();
        for r in self.results.iter().filter(|r| r.outcome.failed()) {
            for c in &r.outcome.components_wrong {
                if let Some(slot) = counts.iter_mut().find(|(cc, _)| cc == c) {
                    slot.1 += 1;
                }
            }
        }
        counts
    }
}

/// Builds the demonstration list for one test example (convenience wrapper
/// around [`pick_demos_pooled`] that constructs a throwaway pool).
pub fn pick_demos<'a>(
    corpus: &'a Corpus,
    train_ids: &[usize],
    test: &Example,
    config: &LlmEvalConfig,
) -> Vec<&'a Example> {
    let pool: Vec<&Example> = train_ids
        .iter()
        .filter_map(|id| corpus.example(*id))
        .filter(|e| e.id != test.id)
        .collect();
    match config.selection {
        Selection::Similarity => select_by_similarity(&pool, &test.nl, config.shots),
        Selection::SameDatabase => select_same_database(&pool, &test.nl, config.shots),
        Selection::Grouped { dbs, per_db } => select_grouped(&pool, &test.nl, dbs, per_db),
    }
}

/// Builds the demonstration list using a precomputed [`DemoPool`].
pub fn pick_demos_pooled<'a>(
    pool: &DemoPool<'a>,
    test: &Example,
    config: &LlmEvalConfig,
) -> Vec<&'a Example> {
    match config.selection {
        Selection::Similarity => pool.select_similar(&test.nl, config.shots, test.id),
        Selection::SameDatabase => pool.select_same_db(&test.nl, config.shots, test.id),
        Selection::Grouped { dbs, per_db } => {
            pool.select_grouped(&test.nl, dbs, per_db, test.id)
        }
    }
}

/// Evaluates an LLM over the test ids, drawing demonstrations from the
/// training ids. `limit` caps the number of evaluated examples for quick
/// runs.
pub fn evaluate_llm(
    llm: &(dyn LlmClient + Sync),
    corpus: &Corpus,
    train_ids: &[usize],
    test_ids: &[usize],
    config: &LlmEvalConfig,
    limit: Option<usize>,
) -> EvalReport {
    let ids: Vec<usize> = test_ids.iter().copied().take(limit.unwrap_or(usize::MAX)).collect();
    let candidates: Vec<&Example> =
        train_ids.iter().filter_map(|id| corpus.example(*id)).collect();
    let pool = DemoPool::new(&candidates);
    let results = parallel_map(&ids, |id| {
        let test = corpus.example(*id)?;
        let db = corpus.catalog.database(&test.db).ok()?;
        let demos = pick_demos_pooled(&pool, test, config);
        let options = PromptOptions {
            format: config.format,
            answer: config.answer,
            token_budget: config.token_budget,
            chain_of_thought: config.chain_of_thought,
            role_play: config.role_play,
        };
        let prompt = build_prompt(&options, db, &test.nl, &demos, |d| {
            corpus.catalog.database(&d.db).expect("demo database exists")
        });
        let completion = llm.complete_with(&prompt.text, &config.gen);
        let outcome = score_completion(&completion, &test.vql, db);
        Some(ExampleResult {
            id: test.id,
            outcome,
            is_join: test.is_join,
            hardness: test.hardness,
            completion: Some(completion),
        })
    });
    EvalReport { results }
}

/// Evaluates a trained baseline model over the test ids.
pub fn evaluate_model(
    model: &(dyn Nl2VisModel + Sync),
    corpus: &Corpus,
    test_ids: &[usize],
    limit: Option<usize>,
) -> EvalReport {
    let ids: Vec<usize> = test_ids.iter().copied().take(limit.unwrap_or(usize::MAX)).collect();
    let results = parallel_map(&ids, |id| {
        let test = corpus.example(*id)?;
        let db = corpus.catalog.database(&test.db).ok()?;
        let outcome = match model.predict(&test.nl, db) {
            Some(pred) => score_query(&pred, &test.vql, db),
            None => EvalOutcome {
                predicted: None,
                exact: false,
                exec: false,
                components_wrong: Vec::new(),
                parse_failed: true,
            },
        };
        Some(ExampleResult {
            id: test.id,
            outcome,
            is_join: test.is_join,
            hardness: test.hardness,
            completion: None,
        })
    });
    EvalReport { results }
}

/// Order-preserving parallel map over ids using scoped threads.
fn parallel_map<F>(ids: &[usize], f: F) -> Vec<ExampleResult>
where
    F: Fn(&usize) -> Option<ExampleResult> + Sync,
{
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
    if ids.len() < 8 || workers < 2 {
        return ids.iter().filter_map(&f).collect();
    }
    let chunk = ids.len().div_ceil(workers);
    let mut out: Vec<Option<ExampleResult>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("evaluation worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_baselines::{Seq2Vis, T5Model, T5Size};
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_llm::{ModelProfile, SimLlm};

    fn fixture() -> Corpus {
        Corpus::build(&CorpusConfig { seed: 61, instances_per_domain: 1, queries_per_db: 12, paraphrases: (2, 3) })
    }

    #[test]
    fn llm_in_domain_beats_cross_domain() {
        // Aggregate over several split seeds: which databases land in a
        // cross-domain test fold varies a lot at this corpus size.
        let c = fixture();
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let config = LlmEvalConfig { shots: 5, ..Default::default() };
        let mut acc_in = Accuracy::default();
        let mut acc_cross = Accuracy::default();
        for seed in 1..=3 {
            let ind = c.split_in_domain(seed);
            let crd = c.split_cross_domain(seed);
            let r_in = evaluate_llm(&llm, &c, &ind.train, &ind.test, &config, Some(40));
            let r_cross = evaluate_llm(&llm, &c, &crd.train, &crd.test, &config, Some(40));
            acc_in.merge(&r_in.overall());
            acc_cross.merge(&r_cross.overall());
        }
        assert!(
            acc_in.exact() > acc_cross.exact(),
            "in-domain {:.2} should beat cross-domain {:.2}",
            acc_in.exact(),
            acc_cross.exact()
        );
    }

    #[test]
    fn baseline_evaluation_report_shapes() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        assert_eq!(r.results.len(), 30.min(split.test.len()));
        assert_eq!(r.join().n() + r.non_join().n(), r.overall().n());
        let by_hardness: usize =
            Hardness::all().iter().map(|h| r.by_hardness(*h).n()).sum();
        assert_eq!(by_hardness, r.overall().n());
    }

    #[test]
    fn t5_beats_seq2vis_cross_domain_via_runner() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let t5 = T5Model::train(&c, &split.train, T5Size::Base, 1);
        let s2v = Seq2Vis::train(&c, &split.train);
        let r_t5 = evaluate_model(&t5, &c, &split.test, Some(50));
        let r_s2v = evaluate_model(&s2v, &c, &split.test, Some(50));
        assert!(r_t5.overall().exact() > r_s2v.overall().exact());
    }

    #[test]
    fn failed_ids_and_component_failures_consistent() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        let failed = r.failed_ids();
        assert!(failed.len() <= r.results.len());
        let total_component_failures: usize =
            r.component_failures().iter().map(|(_, n)| n).sum();
        // Every non-parse failure contributes at least one wrong component.
        let non_parse_failures = r
            .results
            .iter()
            .filter(|x| x.outcome.failed() && !x.outcome.parse_failed)
            .count();
        assert!(total_component_failures >= non_parse_failures);
    }

    #[test]
    fn report_exports_csv() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(10));
        let csv_text = r.to_csv();
        let records = nl2vis_data::csv::parse(&csv_text).unwrap();
        assert_eq!(records.len(), 11); // header + 10 results
        assert_eq!(records[0][0], "id");
        assert!(records[1][1] == "easy" || records[1][1] == "medium"
            || records[1][1] == "hard" || records[1][1] == "extra hard");
    }

    #[test]
    fn component_accuracy_bounds_and_consistency() {
        let c = fixture();
        let split = c.split_cross_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, Some(30));
        for (component, accuracy) in r.component_accuracy() {
            assert!((0.0..=1.0).contains(&accuracy), "{component}: {accuracy}");
        }
        // Exact matches agree on every component, so each component accuracy
        // is at least the exact accuracy.
        let exact = r.overall().exact();
        for (component, accuracy) in r.component_accuracy() {
            assert!(accuracy + 1e-9 >= exact, "{component}: {accuracy} < {exact}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let c = fixture();
        let split = c.split_in_domain(1);
        let m = Seq2Vis::train(&c, &split.train);
        let r = evaluate_model(&m, &c, &split.test, None);
        let ids: Vec<usize> = r.results.iter().map(|x| x.id).collect();
        assert_eq!(ids, split.test[..ids.len()].to_vec());
    }
}
