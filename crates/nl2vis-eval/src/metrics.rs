//! The three evaluation metrics of §4.2 of the paper: Exact Accuracy (AST
//! match), Execution Accuracy (result-data match), and component accuracy.

use nl2vis_data::Database;
use nl2vis_query::ast::VqlQuery;
use nl2vis_query::canon::exact_match;
use nl2vis_query::component::{diff, Component};
use nl2vis_query::{execute, parse};

/// The outcome of scoring one prediction against its gold query.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Prediction parsed as VQL.
    pub predicted: Option<VqlQuery>,
    /// AST-level exact match after canonicalization.
    pub exact: bool,
    /// Execution results match (chart type + x/y/series data).
    pub exec: bool,
    /// Components on which the prediction disagrees with gold (empty when
    /// the prediction did not even parse).
    pub components_wrong: Vec<Component>,
    /// The raw model output failed to parse as VQL.
    pub parse_failed: bool,
}

impl EvalOutcome {
    /// A prediction counts as failed when it is neither exactly nor
    /// execution-accurate.
    pub fn failed(&self) -> bool {
        !self.exact && !self.exec
    }

    /// The placeholder outcome for an example that was never scored because
    /// the transport failed (no completion exists to score). Carried by
    /// [`crate::runner::ExampleResult`]s whose `transport_error` is set;
    /// every aggregate excludes such rows, so none of these fields count
    /// toward any metric.
    pub fn unscored() -> EvalOutcome {
        EvalOutcome {
            predicted: None,
            exact: false,
            exec: false,
            components_wrong: Vec::new(),
            parse_failed: false,
        }
    }
}

/// Scores a raw model completion against the gold query over the database.
/// Accepts both output formalisms: VQL text and direct Vega-Lite JSON (the
/// latter imported through [`nl2vis_vega::import`]).
pub fn score_completion(completion: &str, gold: &VqlQuery, db: &Database) -> EvalOutcome {
    let parsed = nl2vis_llm::extract_vql(completion)
        .and_then(|text| parse(text).ok())
        .or_else(|| {
            let trimmed = completion.trim();
            trimmed
                .starts_with('{')
                .then(|| nl2vis_vega::import::from_vega_lite_text(trimmed).ok())
                .flatten()
        });
    match parsed {
        Some(pred) => score_query(&pred, gold, db),
        None => EvalOutcome {
            predicted: None,
            exact: false,
            exec: false,
            components_wrong: Vec::new(),
            parse_failed: true,
        },
    }
}

/// Scores an already-parsed prediction.
pub fn score_query(pred: &VqlQuery, gold: &VqlQuery, db: &Database) -> EvalOutcome {
    let exact = exact_match(pred, gold);
    let exec = if exact {
        true
    } else {
        match (execute(pred, db), execute(gold, db)) {
            (Ok(p), Ok(g)) => p.same_data(&g),
            _ => false,
        }
    };
    EvalOutcome {
        predicted: Some(pred.clone()),
        exact,
        exec,
        components_wrong: diff(gold, pred),
        parse_failed: false,
    }
}

/// An accuracy accumulator with the paper's join/non-join breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accuracy {
    exact_hits: usize,
    exec_hits: usize,
    total: usize,
}

impl Accuracy {
    /// Records one outcome.
    pub fn record(&mut self, outcome: &EvalOutcome) {
        self.total += 1;
        if outcome.exact {
            self.exact_hits += 1;
        }
        if outcome.exec {
            self.exec_hits += 1;
        }
    }

    /// Exact accuracy in [0, 1]; 0 when empty.
    pub fn exact(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exact_hits as f64 / self.total as f64
        }
    }

    /// Execution accuracy in [0, 1]; 0 when empty.
    pub fn exec(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exec_hits as f64 / self.total as f64
        }
    }

    /// Sample count.
    pub fn n(&self) -> usize {
        self.total
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &Accuracy) {
        self.exact_hits += other.exact_hits;
        self.exec_hits += other.exec_hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
    use nl2vis_data::value::DataType::*;
    use nl2vis_data::Value;

    fn db() -> Database {
        let mut s = DatabaseSchema::new("d", "x");
        s.tables.push(TableDef::new(
            "payments",
            vec![
                ColumnDef::new("pay_date", Date),
                ColumnDef::new("amount", Int),
                ColumnDef::new("method", Text),
            ],
        ));
        let mut d = Database::new(s);
        let date = |y, m, dd| Value::Date(nl2vis_data::value::Date::new(y, m, dd).unwrap());
        for (t, a, m) in [
            (date(2020, 1, 5), 10, "Card"),
            (date(2020, 1, 9), 20, "Cash"),
            (date(2020, 2, 5), 30, "Card"),
        ] {
            d.insert("payments", vec![t, Value::Int(a), m.into()])
                .unwrap();
        }
        d
    }

    #[test]
    fn exact_implies_exec() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let o = score_query(&gold, &gold, &d);
        assert!(o.exact && o.exec);
        assert!(o.components_wrong.is_empty());
    }

    #[test]
    fn figure5_aliased_queries_execution_equivalent() {
        // The paper's Fig. 5: different SELECT subtrees, identical execution.
        let d = db();
        let gold = parse(
            "VISUALIZE line SELECT pay_date , COUNT(pay_date) FROM payments BIN pay_date BY month",
        )
        .unwrap();
        let pred = parse(
            "VISUALIZE line SELECT pay_date , COUNT(amount) FROM payments BIN pay_date BY month",
        )
        .unwrap();
        let o = score_query(&pred, &gold, &d);
        assert!(!o.exact, "ASTs differ");
        assert!(o.exec, "execution results coincide");
        assert!(!o.failed());
    }

    #[test]
    fn wrong_chart_fails_execution() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let pred =
            parse("VISUALIZE pie SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let o = score_query(&pred, &gold, &d);
        assert!(!o.exact && !o.exec);
        assert_eq!(o.components_wrong, vec![Component::VisType]);
    }

    #[test]
    fn unexecutable_prediction_fails_exec() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let pred =
            parse("VISUALIZE bar SELECT nonexistent , COUNT(nonexistent) FROM payments").unwrap();
        let o = score_query(&pred, &gold, &d);
        assert!(!o.exec);
    }

    #[test]
    fn parse_failure_scored() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let o = score_completion("I am sorry, I cannot help with that.", &gold, &d);
        assert!(o.parse_failed);
        assert!(o.failed());
    }

    #[test]
    fn completion_with_marker_scored() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let o = score_completion(
            "VQL: VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method",
            &gold,
            &d,
        );
        assert!(o.exact);
    }

    #[test]
    fn vega_lite_completion_scored() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let spec = r#"{"data":{"name":"payments"},"mark":"bar",
            "encoding":{"x":{"field":"method"},"y":{"aggregate":"count","field":"method"}}}"#;
        let o = score_completion(spec, &gold, &d);
        assert!(o.exec, "imported Vega-Lite must be execution-equivalent");
        // Truncated JSON is a parse failure, not a panic.
        let o = score_completion(&spec[..spec.len() - 6], &gold, &d);
        assert!(o.parse_failed);
    }

    #[test]
    fn accuracy_accumulator() {
        let d = db();
        let gold =
            parse("VISUALIZE bar SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let bad =
            parse("VISUALIZE pie SELECT method , COUNT(method) FROM payments GROUP BY method")
                .unwrap();
        let mut acc = Accuracy::default();
        acc.record(&score_query(&gold, &gold, &d));
        acc.record(&score_query(&bad, &gold, &d));
        assert_eq!(acc.n(), 2);
        assert!((acc.exact() - 0.5).abs() < 1e-12);
        let mut merged = Accuracy::default();
        merged.merge(&acc);
        merged.merge(&acc);
        assert_eq!(merged.n(), 4);
    }
}
