//! Iterative updating strategies (RQ3-2, Figs. 12-13 of the paper): given
//! the failed cases of a base run, re-prompt with chain-of-thought,
//! role-playing, self-repair, or a code-interpreter loop and measure how
//! many failures the strategy rescues.

use crate::metrics::{score_completion, EvalOutcome};
use crate::runner::{pick_demos, LlmEvalConfig};
use nl2vis_corpus::{Corpus, Example};
use nl2vis_llm::{GenOptions, ModelProfile, SimLlm};
use nl2vis_prompt::{build_prompt, PromptOptions};
use nl2vis_query::execute;

/// An iterative-updating strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Chain-of-thought with a sketch intermediate (gpt-3.5-turbo).
    ChainOfThought,
    /// "You are a data visualization assistant" persona (gpt-3.5-turbo).
    RolePlay,
    /// "Please fix the given VQL" re-prompt (gpt-4).
    SelfRepair,
    /// Execute-and-retry loop over the real engine (gpt-4 code interpreter).
    CodeInterpreter,
}

impl Strategy {
    /// All strategies in Fig. 13 order.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::ChainOfThought,
            Strategy::RolePlay,
            Strategy::SelfRepair,
            Strategy::CodeInterpreter,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ChainOfThought => "CoT",
            Strategy::RolePlay => "Role-play",
            Strategy::SelfRepair => "Self-repair",
            Strategy::CodeInterpreter => "Code-interpreter",
        }
    }

    /// The model the paper pairs with this strategy.
    pub fn model(self) -> ModelProfile {
        match self {
            // The paper drives CoT and role-play through gpt-3.5-turbo.
            Strategy::ChainOfThought | Strategy::RolePlay => ModelProfile::turbo_16k(),
            Strategy::SelfRepair | Strategy::CodeInterpreter => ModelProfile::gpt_4(),
        }
    }
}

/// Applies a strategy to one previously-failed example, returning the new
/// scoring outcome.
pub fn apply_strategy(
    strategy: Strategy,
    corpus: &Corpus,
    train_ids: &[usize],
    example: &Example,
    base: &LlmEvalConfig,
    seed: u64,
) -> EvalOutcome {
    let llm = SimLlm::new(strategy.model(), seed);
    let db = corpus
        .catalog
        .database(&example.db)
        .expect("example database exists");
    let demos = pick_demos(corpus, train_ids, example, base);

    let mut options = PromptOptions {
        format: base.format,
        answer: nl2vis_prompt::AnswerFormat::Vql,
        token_budget: llm.profile.context_tokens.min(base.token_budget.max(4096)),
        chain_of_thought: false,
        role_play: false,
    };
    let gen = match strategy {
        Strategy::ChainOfThought => {
            // The sketch-first intermediate suppresses structural slips and
            // mildly reduces overall error.
            options.chain_of_thought = true;
            GenOptions {
                attempt: 101,
                error_scale: 1.02,
                structural_scale: 0.95,
            }
        }
        Strategy::RolePlay => {
            // The persona stabilizes output formatting and focus.
            options.role_play = true;
            GenOptions {
                attempt: 102,
                error_scale: 0.78,
                structural_scale: 1.0,
            }
        }
        Strategy::SelfRepair => {
            // "Fix the given VQL": the model revisits its own output with
            // the error in view; a strong targeted reduction.
            GenOptions {
                attempt: 103,
                error_scale: 0.72,
                structural_scale: 0.72,
            }
        }
        Strategy::CodeInterpreter => {
            // Handled below with an execute-and-retry loop.
            GenOptions {
                attempt: 104,
                error_scale: 0.45,
                structural_scale: 0.45,
            }
        }
    };

    if strategy == Strategy::CodeInterpreter {
        // The code-interpreter uploads the database and *runs* candidates:
        // candidates that fail to execute or return empty results are
        // visibly wrong and discarded; among executable candidates the model
        // keeps the self-consistent one (the execution result produced most
        // often across samples) — the paper's "demonstrate programming
        // proficiency within a conversational context".
        let prompt = build_prompt(&options, db, &example.nl, &demos, |d| {
            corpus
                .catalog
                .database(&d.db)
                .expect("demo database exists")
        });
        let mut executable: Vec<(String, nl2vis_query::ResultSet)> = Vec::new();
        let mut last_completion = String::new();
        for attempt in 0..8u64 {
            let g = GenOptions {
                attempt: 200 + attempt,
                ..gen.clone()
            };
            let completion = llm.complete_with(&prompt.text, &g);
            let parsed =
                nl2vis_llm::extract_vql(&completion).and_then(|t| nl2vis_query::parse(t).ok());
            if let Some(pred) = parsed {
                if let Ok(result) = execute(&pred, db) {
                    if !result.rows.is_empty() {
                        executable.push((completion.clone(), result));
                    }
                }
            }
            last_completion = completion;
        }
        if executable.is_empty() {
            return score_completion(&last_completion, &example.vql, db);
        }
        // Self-consistency vote: the completion whose execution result
        // recurs most often across samples.
        let mut best_idx = 0;
        let mut best_votes = 0;
        for (i, (_, result)) in executable.iter().enumerate() {
            let votes = executable
                .iter()
                .filter(|(_, r)| r.same_data(result))
                .count();
            if votes > best_votes {
                best_votes = votes;
                best_idx = i;
            }
        }
        return score_completion(&executable[best_idx].0, &example.vql, db);
    }

    let prompt = build_prompt(&options, db, &example.nl, &demos, |d| {
        corpus
            .catalog
            .database(&d.db)
            .expect("demo database exists")
    });
    let completion = llm.complete_with(&prompt.text, &gen);
    score_completion(&completion, &example.vql, db)
}

/// Outcome of applying a strategy to a failed set.
#[derive(Debug, Clone)]
pub struct StrategyReport {
    /// Strategy applied.
    pub strategy: Strategy,
    /// Number of failed cases attempted.
    pub attempted: usize,
    /// Cases now execution-accurate.
    pub rescued_exec: usize,
    /// Cases now exactly accurate.
    pub rescued_exact: usize,
    /// Per-extended-chart-type rescue counts (label, attempted, rescued).
    pub by_chart: Vec<(String, usize, usize)>,
}

impl StrategyReport {
    /// Execution-accuracy improvement over the failed set.
    pub fn exec_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.rescued_exec as f64 / self.attempted as f64
        }
    }
}

/// Applies a strategy to every failed example id.
pub fn run_strategy(
    strategy: Strategy,
    corpus: &Corpus,
    train_ids: &[usize],
    failed_ids: &[usize],
    base: &LlmEvalConfig,
    seed: u64,
) -> StrategyReport {
    let mut report = StrategyReport {
        strategy,
        attempted: 0,
        rescued_exec: 0,
        rescued_exact: 0,
        by_chart: Vec::new(),
    };
    for id in failed_ids {
        let Some(example) = corpus.example(*id) else {
            continue;
        };
        report.attempted += 1;
        let outcome = apply_strategy(strategy, corpus, train_ids, example, base, seed);
        let chart = example.vql.extended_chart_label().to_string();
        let slot = match report.by_chart.iter_mut().find(|(c, _, _)| *c == chart) {
            Some(s) => s,
            None => {
                report.by_chart.push((chart, 0, 0));
                report.by_chart.last_mut().unwrap()
            }
        };
        slot.1 += 1;
        if outcome.exec {
            report.rescued_exec += 1;
            slot.2 += 1;
        }
        if outcome.exact {
            report.rescued_exact += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_llm;
    use nl2vis_corpus::CorpusConfig;

    fn base_run() -> (Corpus, Vec<usize>, Vec<usize>, LlmEvalConfig) {
        let c = Corpus::build(&CorpusConfig {
            seed: 67,
            instances_per_domain: 1,
            queries_per_db: 12,
            paraphrases: (2, 3),
        });
        let split = c.split_cross_domain(1);
        let config = LlmEvalConfig {
            shots: 5,
            ..Default::default()
        };
        let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
        let report = evaluate_llm(&llm, &c, &split.train, &split.test, &config, Some(60));
        let failed = report.failed_ids();
        (c, split.train, failed, config)
    }

    #[test]
    fn strategies_rescue_some_failures() {
        let (c, train, failed, config) = base_run();
        assert!(
            !failed.is_empty(),
            "base run should have failures to repair"
        );
        let ci = run_strategy(Strategy::CodeInterpreter, &c, &train, &failed, &config, 5);
        assert_eq!(ci.attempted, failed.len());
        assert!(
            ci.rescued_exec > 0,
            "code-interpreter should rescue something"
        );
    }

    #[test]
    fn code_interpreter_beats_single_shot_strategies() {
        let (c, train, failed, config) = base_run();
        if failed.len() < 6 {
            return; // not enough failures to compare meaningfully
        }
        let ci = run_strategy(Strategy::CodeInterpreter, &c, &train, &failed, &config, 5);
        let cot = run_strategy(Strategy::ChainOfThought, &c, &train, &failed, &config, 5);
        assert!(
            ci.exec_rate() >= cot.exec_rate(),
            "code-interpreter ({:.2}) should be at least CoT ({:.2})",
            ci.exec_rate(),
            cot.exec_rate()
        );
    }

    #[test]
    fn strategy_metadata() {
        assert_eq!(Strategy::all().len(), 4);
        assert_eq!(Strategy::SelfRepair.model().name, "gpt-4");
        assert_eq!(Strategy::ChainOfThought.model().name, "gpt-3.5-turbo-16k");
        assert_eq!(Strategy::CodeInterpreter.name(), "Code-interpreter");
    }

    #[test]
    fn by_chart_counts_sum() {
        let (c, train, failed, config) = base_run();
        let r = run_strategy(Strategy::RolePlay, &c, &train, &failed, &config, 5);
        let attempted: usize = r.by_chart.iter().map(|(_, a, _)| a).sum();
        let rescued: usize = r.by_chart.iter().map(|(_, _, n)| n).sum();
        assert_eq!(attempted, r.attempted);
        assert_eq!(rescued, r.rescued_exec);
    }
}
