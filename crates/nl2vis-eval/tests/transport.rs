//! Transport-attribution integration tests: the eval runner over a
//! fault-injecting HTTP server. The invariants under test are the PR's
//! acceptance criteria — (1) when retries absorb every injected fault, a
//! faulty run scores identically to a fault-free one; (2) residual
//! transport failures land in the `error.transport` bucket and never move
//! any model-failure count.

use nl2vis_corpus::{Corpus, CorpusConfig};
use nl2vis_eval::failure::FailureTaxonomy;
use nl2vis_eval::runner::{evaluate_llm, EvalReport, LlmEvalConfig};
use nl2vis_llm::http::{CompletionServer, HttpLlmClient, Timeouts};
use nl2vis_llm::{Fault, FaultInjector, ModelProfile, ResilientLlmClient, RetryPolicy, SimLlm};
use nl2vis_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

fn fixture() -> Corpus {
    Corpus::build(&CorpusConfig {
        seed: 61,
        instances_per_domain: 1,
        queries_per_db: 12,
        paraphrases: (2, 3),
    })
}

fn server_with(faults: FaultInjector) -> CompletionServer {
    let llm = SimLlm::new(ModelProfile::davinci_003(), 3);
    CompletionServer::start_with_faults(llm, Arc::new(MetricsRegistry::new()), faults)
        .expect("server starts")
}

fn client_for(server: &CompletionServer, policy: RetryPolicy) -> ResilientLlmClient {
    // A tight read deadline so injected stalls trip it quickly; generous
    // enough that healthy sim completions never do.
    let timeouts = Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(500),
        write: Duration::from_secs(2),
    };
    ResilientLlmClient::new(
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", timeouts),
        policy,
    )
}

fn fast_policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        jitter_seed: 9,
    }
}

fn key(r: &EvalReport) -> Vec<(usize, bool, bool)> {
    r.results
        .iter()
        .map(|x| (x.id, x.outcome.exact, x.outcome.exec))
        .collect()
}

/// Drops, 500s and deadline-tripping stalls — every fault class at once —
/// must be invisible in the scores when the retry budget covers them: the
/// faulty run completes (no hang) and matches the fault-free run
/// example-for-example.
#[test]
fn recovered_faults_leave_accuracy_identical_to_clean_run() {
    let corpus = fixture();
    let split = corpus.split_cross_domain(1);
    let config = LlmEvalConfig::default();
    let n = 12;

    let clean_server = server_with(FaultInjector::none());
    let clean = client_for(&clean_server, fast_policy(4));
    let r_clean = evaluate_llm(&clean, &corpus, &split.train, &split.test, &config, Some(n));

    let faulty_server = server_with(FaultInjector::script(vec![
        Fault::Drop,
        Fault::Http500,
        Fault::Stall(Duration::from_millis(1200)),
    ]));
    let faulty = client_for(&faulty_server, fast_policy(4));
    let retries_before = nl2vis_obs::global().counter("llm.retries_total").get();
    let r_faulty = evaluate_llm(
        &faulty,
        &corpus,
        &split.train,
        &split.test,
        &config,
        Some(n),
    );

    assert_eq!(faulty_server.faults().injected(), 3, "all faults fired");
    assert!(
        nl2vis_obs::global().counter("llm.retries_total").get() >= retries_before + 3,
        "each injected fault forces at least one retry"
    );
    assert_eq!(
        r_faulty.transport_failures(),
        0,
        "retries absorbed every fault"
    );
    assert_eq!(
        key(&r_clean),
        key(&r_faulty),
        "scores must be fault-invariant"
    );
    assert_eq!(r_clean.overall().exact(), r_faulty.overall().exact());
    assert_eq!(r_clean.overall().exec(), r_faulty.overall().exec());
}

/// A fault that outlives the retry budget becomes a transport failure on
/// exactly that example: it leaves the accuracy denominator and the failure
/// taxonomy, while every other example scores exactly as in the clean run —
/// the model-failure counts do not move.
#[test]
fn unrecovered_fault_is_excluded_without_moving_model_failures() {
    let corpus = fixture();
    let split = corpus.split_cross_domain(1);
    // Sequential (single worker) so the injected fault lands on the first
    // completion request — i.e. the first test example — deterministically.
    let config = LlmEvalConfig {
        workers: Some(1),
        ..Default::default()
    };
    let n = 6;

    let clean_server = server_with(FaultInjector::none());
    let clean = client_for(&clean_server, fast_policy(4));
    let r_clean = evaluate_llm(&clean, &corpus, &split.train, &split.test, &config, Some(n));

    let faulty_server = server_with(FaultInjector::script(vec![Fault::Drop]));
    let faulty = client_for(&faulty_server, RetryPolicy::no_retry());
    let transport_before = nl2vis_obs::global().counter("eval.error.transport").get();
    let r_faulty = evaluate_llm(
        &faulty,
        &corpus,
        &split.train,
        &split.test,
        &config,
        Some(n),
    );

    // Exactly the first example is lost to transport, and it is reported
    // as such — id, message, counter.
    assert_eq!(r_faulty.transport_failures(), 1);
    let lost = r_faulty.transport_failed_ids();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].0, split.test[0]);
    assert!(lost[0].1.contains("transport error"), "{}", lost[0].1);
    assert!(nl2vis_obs::global().counter("eval.error.transport").get() > transport_before);

    // Every surviving example scores exactly as in the clean run.
    let clean_rest: Vec<_> = key(&r_clean).into_iter().skip(1).collect();
    let faulty_rest: Vec<_> = key(&r_faulty)
        .into_iter()
        .filter(|(id, _, _)| *id != split.test[0])
        .collect();
    assert_eq!(clean_rest, faulty_rest);

    // The denominator shrinks by one; model-failure counts are untouched.
    assert_eq!(r_faulty.overall().n(), r_clean.overall().n() - 1);
    let tax_clean = FailureTaxonomy::from_report(&r_clean);
    let tax_faulty = FailureTaxonomy::from_report(&r_faulty);
    assert_eq!(tax_faulty.transport_failures, 1);
    let first_failed_clean = r_clean.results[0].outcome.failed() as usize;
    assert_eq!(tax_faulty.failures, tax_clean.failures - first_failed_clean);
    assert_eq!(tax_faulty.parse_failures, tax_clean.parse_failures);
}

/// Total outage: every request dropped, retries exhausted everywhere. The
/// run still terminates, scores nothing, blames the model for nothing.
#[test]
fn total_outage_scores_nothing_and_blames_the_model_for_nothing() {
    let corpus = fixture();
    let split = corpus.split_cross_domain(1);
    let config = LlmEvalConfig::default();
    let n = 5;

    let server = server_with(FaultInjector::random(7, 1.0, 0.0, 0.0, Duration::ZERO));
    let client = client_for(&server, fast_policy(2));
    let transport_before = nl2vis_obs::global().counter("eval.error.transport").get();
    let report = evaluate_llm(
        &client,
        &corpus,
        &split.train,
        &split.test,
        &config,
        Some(n),
    );

    assert_eq!(report.results.len(), n);
    assert_eq!(report.transport_failures(), n);
    assert_eq!(report.overall().n(), 0, "nothing enters the denominator");
    assert!(report.failed_ids().is_empty(), "no model failures");
    assert!(
        nl2vis_obs::global().counter("eval.error.transport").get() >= transport_before + n as u64
    );
    let tax = FailureTaxonomy::from_report(&report);
    assert_eq!(tax.failures, 0);
    assert_eq!(tax.parse_failures, 0);
    assert_eq!(tax.transport_failures, n);
    assert!(tax.buckets.is_empty());
    // Every transport row carries the bounded-attempts message.
    for (_, msg) in report.transport_failed_ids() {
        assert!(msg.contains("2 attempt"), "{msg}");
    }
}
