//! **Chat2Vis** (Maddigan & Susnjak 2023): a zero-shot inference-only
//! pipeline that wraps the table in the Chat2Vis per-column prompt template
//! and asks a davinci-class model for the visualization.
//!
//! Reproduced as: the `Chat2Vis*` prompt format plus a
//! `code-davinci-002`-class simulated model with zero demonstrations. Its
//! weakness on join scenarios (Table 2 of the paper) comes straight from the
//! template: the per-dataframe description carries no foreign-key
//! information.

use crate::Nl2VisModel;
use nl2vis_data::Database;
use nl2vis_llm::{extract_vql, ModelProfile, SimLlm};
use nl2vis_prompt::{build_prompt, PromptFormat, PromptOptions};
use nl2vis_query::ast::VqlQuery;

/// The Chat2Vis pipeline.
#[derive(Debug, Clone)]
pub struct Chat2Vis {
    llm: SimLlm,
}

impl Chat2Vis {
    /// Creates the pipeline over a davinci-class simulated backend.
    pub fn new(seed: u64) -> Chat2Vis {
        // code-davinci-002 is the same generation as text-davinci-002.
        Chat2Vis {
            llm: SimLlm::new(ModelProfile::davinci_002(), seed),
        }
    }
}

impl Nl2VisModel for Chat2Vis {
    fn name(&self) -> &str {
        "Chat2Vis"
    }

    fn predict(&self, question: &str, db: &Database) -> Option<VqlQuery> {
        let options = PromptOptions {
            format: PromptFormat::Chat2Vis,
            token_budget: 4096,
            ..Default::default()
        };
        let prompt = build_prompt(&options, db, question, &[], |_: &nl2vis_corpus::Example| {
            unreachable!("zero-shot: no demonstrations")
        });
        let completion = self.llm.complete(&prompt.text);
        let vql = extract_vql(&completion)?;
        nl2vis_query::parse(vql).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::{Corpus, CorpusConfig};
    use nl2vis_query::canon::exact_match;
    use nl2vis_query::execute;

    #[test]
    fn zero_shot_pipeline_produces_executable_queries() {
        let c = Corpus::build(&CorpusConfig::small(53));
        let m = Chat2Vis::new(5);
        let mut produced = 0;
        let mut executed = 0;
        for e in c.examples.iter().take(40) {
            let db = c.catalog.database(&e.db).unwrap();
            if let Some(pred) = m.predict(&e.nl, db) {
                produced += 1;
                if execute(&pred, db).is_ok() {
                    executed += 1;
                }
            }
        }
        assert!(produced >= 20, "only {produced} parsed");
        assert!(executed * 2 >= produced, "most predictions should execute");
    }

    #[test]
    fn solves_some_but_not_all() {
        let c = Corpus::build(&CorpusConfig::small(53));
        let m = Chat2Vis::new(5);
        let mut correct = 0;
        let mut wrong = 0;
        for e in c.examples.iter().take(60) {
            let db = c.catalog.database(&e.db).unwrap();
            match m.predict(&e.nl, db) {
                Some(pred) if exact_match(&pred, &e.vql) => correct += 1,
                _ => wrong += 1,
            }
        }
        assert!(correct > 0, "Chat2Vis should solve some queries");
        assert!(wrong > 0, "zero-shot Chat2Vis should not be perfect");
    }
}
