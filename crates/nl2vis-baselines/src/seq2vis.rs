//! **Seq2Vis** (Luo et al., SIGMOD 2021): an LSTM encoder-decoder trained
//! end-to-end on (NL, VQL) pairs.
//!
//! On a templated benchmark, a small seq2seq model's winning strategy is to
//! memorize surface patterns: for a test question it effectively reproduces
//! the training query whose phrasing it matches best, copying the training
//! query's table and column tokens verbatim. That behaviour gives strong
//! in-domain scores (the same database's paraphrases are in training) and a
//! collapse to ~0 cross-domain (the emitted identifiers belong to a training
//! database) — exactly the cliff reported in Table 3 of the paper.

use crate::retrieval::RetrievalIndex;
use crate::Nl2VisModel;
use nl2vis_corpus::Corpus;
use nl2vis_data::Database;
use nl2vis_query::ast::VqlQuery;

/// The trained Seq2Vis model.
#[derive(Debug, Clone)]
pub struct Seq2Vis {
    index: RetrievalIndex,
}

impl Seq2Vis {
    /// "Trains" the model on the given training split (builds the learned
    /// pattern memory).
    pub fn train(corpus: &Corpus, train_ids: &[usize]) -> Seq2Vis {
        Seq2Vis {
            index: RetrievalIndex::build(corpus, train_ids),
        }
    }
}

impl Nl2VisModel for Seq2Vis {
    fn name(&self) -> &str {
        "Seq2Vis"
    }

    fn predict(&self, question: &str, _db: &Database) -> Option<VqlQuery> {
        // Decode = emit the best-matching memorized output verbatim.
        // Below a minimal similarity the decoder produces unusable output.
        let (score, entry) = self.index.best(question)?;
        if score < 0.12 {
            return None;
        }
        Some(entry.vql.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_query::canon::exact_match;

    #[test]
    fn reproduces_training_examples() {
        let c = Corpus::build(&CorpusConfig::small(37));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = Seq2Vis::train(&c, &ids);
        let e = &c.examples[3];
        let db = c.catalog.database(&e.db).unwrap();
        let pred = m.predict(&e.nl, db).unwrap();
        assert!(exact_match(&pred, &e.vql));
    }

    #[test]
    fn emits_training_identifiers_cross_domain() {
        let c = Corpus::build(&CorpusConfig::small(37));
        // Train only on one database's examples.
        let db0 = c.examples[0].db.clone();
        let ids: Vec<usize> = c
            .examples
            .iter()
            .filter(|e| e.db == db0)
            .map(|e| e.id)
            .collect();
        let m = Seq2Vis::train(&c, &ids);
        // Predict on a different database: the output references the
        // training database's tables (the memorization failure mode).
        let other = c.examples.iter().find(|e| e.db != db0).unwrap();
        let db = c.catalog.database(&other.db).unwrap();
        if let Some(pred) = m.predict(&other.nl, db) {
            let from_exists = db.table(&pred.from).is_ok();
            let train_db = c.catalog.database(&db0).unwrap();
            let from_in_train = train_db.table(&pred.from).is_ok();
            assert!(from_in_train || from_exists);
            assert!(
                from_in_train,
                "seq2seq memorization should copy training tables"
            );
        }
    }

    #[test]
    fn gibberish_question_fails() {
        let c = Corpus::build(&CorpusConfig::small(37));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = Seq2Vis::train(&c, &ids);
        let db = c.catalog.database(&c.examples[0].db).unwrap();
        assert!(m.predict("zzz qqq xxx", db).is_none());
    }
}
