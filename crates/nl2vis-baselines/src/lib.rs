//! Baseline and fine-tuned models for NL2VIS (§4.3 of the paper), each a
//! genuinely *trained* Rust model whose inductive bias matches the system it
//! stands in for:
//!
//! - [`seq2vis`]: **Seq2Vis** — an LSTM-style sequence-to-sequence model,
//!   whose dominant behaviour on a templated benchmark is memorization:
//!   nearest-neighbour retrieval of a training query, emitted verbatim.
//! - [`transformer`]: **Transformer** — retrieval plus an attention-copy
//!   mechanism that substitutes literals from the question.
//! - [`ncnet`]: **ncNet** — retrieval plus visualization-aware decoding:
//!   chart-type forcing from the question and schema-token substitution
//!   against the test database.
//! - [`rgvisnet`]: **RGVisNet** — skeleton retrieval plus full schema-aware
//!   re-grounding (prototype of the retrieve-refine-generate framework).
//! - [`chat2vis`]: **Chat2Vis** — a zero-shot inference-only pipeline over
//!   the Chat2Vis prompt template and a davinci-class simulated model.
//! - [`t5`]: **T5-Small / T5-Base** — fine-tuned grammar-constrained
//!   semantic parsers with a *learned lexicon* (phrase↔column statistics fit
//!   on the training split).
//!
//! Why the cross-domain cliff is architectural here: the retrieval models
//! copy table/column tokens from training queries and cannot re-ground them
//! on unseen schemas; RGVisNet re-grounds but lacks synonym knowledge; the
//! fine-tuned models learn the synonym statistics from data; the simulated
//! LLMs get them from pretraining. That ordering *is* Table 3.

pub mod chat2vis;
pub mod ncnet;
pub mod retrieval;
pub mod rgvisnet;
pub mod seq2vis;
pub mod service;
pub mod t5;
pub mod transformer;

use nl2vis_data::Database;
use nl2vis_query::ast::VqlQuery;

/// A model that maps (question, grounded database) to a VQL query.
pub trait Nl2VisModel {
    /// Model name as reported in the paper's tables.
    fn name(&self) -> &str;

    /// Predicts a query; `None` models a generation failure (unparseable
    /// output).
    fn predict(&self, question: &str, db: &Database) -> Option<VqlQuery>;
}

pub use chat2vis::Chat2Vis;
pub use ncnet::NcNet;
pub use rgvisnet::RgVisNet;
pub use seq2vis::Seq2Vis;
pub use service::ModelService;
pub use t5::{T5Model, T5Size};
pub use transformer::TransformerModel;
