//! A shared retrieval index over training examples, used by every
//! retrieval-based baseline (Seq2Vis, Transformer, ncNet, RGVisNet).

use nl2vis_corpus::Corpus;
use nl2vis_data::text::{jaccard_sets, words};
use nl2vis_query::ast::VqlQuery;
use std::collections::HashSet;

/// Filler words shared by almost every realized question. A contextual
/// encoder (Transformer-family) effectively ignores them when matching
/// paraphrases; a plain LSTM does not — which is one of the reasons the
/// Transformer baseline outscores Seq2Vis in-domain (Table 3).
const FILLER: &[&str] = &[
    "show",
    "draw",
    "plot",
    "visualize",
    "display",
    "give",
    "me",
    "create",
    "a",
    "an",
    "the",
    "of",
    "chart",
    "graph",
    "for",
    "each",
    "by",
    "per",
    "grouped",
    "across",
    "from",
    "in",
    "using",
    "table",
    "records",
    "where",
    "is",
    "order",
    "sorted",
    "ordered",
    "ranked",
    "rank",
    "ascending",
    "descending",
    "and",
    "or",
    "to",
];

/// How the index represents questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenMode {
    /// All surface tokens (LSTM-style surface matching).
    Raw,
    /// Content words only (contextual-encoder-style matching).
    Content,
    /// Content words with numeric literals collapsed to a placeholder
    /// (template-level matching, as a fine-tuned LM's representation does).
    Template,
}

/// One indexed training example.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Training example id.
    pub id: usize,
    /// The training question.
    pub nl: String,
    /// Pre-tokenized question words (per the index's [`TokenMode`]).
    pub tokens: HashSet<String>,
    /// The gold query.
    pub vql: VqlQuery,
    /// Database of the training example.
    pub db: String,
}

/// A token-set similarity index over the training split.
#[derive(Debug, Clone)]
pub struct RetrievalIndex {
    entries: Vec<Entry>,
    mode: TokenMode,
}

impl RetrievalIndex {
    /// Builds a raw-token index (Seq2Vis-style).
    pub fn build(corpus: &Corpus, train_ids: &[usize]) -> RetrievalIndex {
        RetrievalIndex::build_with(corpus, train_ids, TokenMode::Raw)
    }

    /// Builds an index with an explicit token mode.
    pub fn build_with(corpus: &Corpus, train_ids: &[usize], mode: TokenMode) -> RetrievalIndex {
        let entries = train_ids
            .iter()
            .filter_map(|id| corpus.example(*id))
            .map(|e| Entry {
                id: e.id,
                nl: e.nl.clone(),
                tokens: tokenize(&e.nl, mode),
                vql: e.vql.clone(),
                db: e.db.clone(),
            })
            .collect();
        RetrievalIndex { entries, mode }
    }

    /// Number of indexed examples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` most similar entries to the question, best first.
    pub fn top(&self, question: &str, k: usize) -> Vec<(f64, &Entry)> {
        let q = tokenize(question, self.mode);
        let mut scored: Vec<(f64, &Entry)> = self
            .entries
            .iter()
            .map(|e| (jaccard_sets(&q, &e.tokens), e))
            .collect();
        // total_cmp, not partial_cmp-to-Equal: a comparator where NaN
        // equals everything is not transitive, and sort_by may reorder
        // well-behaved entries around it.
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));
        scored.truncate(k);
        scored
    }

    /// The single best entry, if any.
    pub fn best(&self, question: &str) -> Option<(f64, &Entry)> {
        self.top(question, 1).into_iter().next()
    }
}

/// Tokenizes per mode.
fn tokenize(text: &str, mode: TokenMode) -> HashSet<String> {
    let normalize = |w: String| {
        if w.chars().all(|c| c.is_ascii_digit()) {
            "<num>".to_string()
        } else {
            w
        }
    };
    match mode {
        TokenMode::Raw => words(text).into_iter().collect(),
        TokenMode::Content => words(text)
            .into_iter()
            .filter(|w| !FILLER.contains(&w.as_str()))
            .collect(),
        TokenMode::Template => words(text)
            .into_iter()
            .filter(|w| !FILLER.contains(&w.as_str()))
            .map(normalize)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;

    #[test]
    fn retrieves_self_with_score_one() {
        let c = Corpus::build(&CorpusConfig::small(31));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let index = RetrievalIndex::build(&c, &ids);
        assert_eq!(index.len(), c.examples.len());
        let probe = &c.examples[7];
        let (score, entry) = index.best(&probe.nl).unwrap();
        assert!((score - 1.0).abs() < 1e-12);
        assert_eq!(entry.id, probe.id);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let c = Corpus::build(&CorpusConfig::small(31));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let index = RetrievalIndex::build(&c, &ids);
        let top = index.top("show a bar chart of the number of things", 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn empty_index() {
        let c = Corpus::build(&CorpusConfig::small(31));
        let index = RetrievalIndex::build(&c, &[]);
        assert!(index.is_empty());
        assert!(index.best("anything").is_none());
    }
}
