//! **ncNet** (Luo et al., TVCG 2022): a Transformer with
//! visualization-aware optimizations — attention forcing on the chart-type
//! token and schema-aware decoding that keeps generated identifiers inside
//! the current database's vocabulary.
//!
//! The reproduction keeps the retrieval backbone of the Transformer baseline
//! and adds the two ncNet mechanisms: the chart type is forced from the
//! question's own signal, and every table/column token of the decoded query
//! is re-mapped into the test database's schema by name similarity. The
//! re-mapping is literal (no synonym knowledge, no intent re-parse), which
//! is why ncNet recovers *some* cross-domain accuracy (schemas share column
//! names like `name` and `city`) but far from all of it — the 0.77 → 0.26
//! drop of Table 3.

use crate::retrieval::RetrievalIndex;
use crate::Nl2VisModel;
use nl2vis_corpus::Corpus;
use nl2vis_data::text::split_identifier;
use nl2vis_data::Database;
use nl2vis_llm::understand::{question_tokens, QTok};
use nl2vis_query::ast::*;

/// The trained ncNet model.
#[derive(Debug, Clone)]
pub struct NcNet {
    index: RetrievalIndex,
}

impl NcNet {
    /// Trains (indexes) the model.
    pub fn train(corpus: &Corpus, train_ids: &[usize]) -> NcNet {
        NcNet {
            index: RetrievalIndex::build_with(
                corpus,
                train_ids,
                crate::retrieval::TokenMode::Content,
            ),
        }
    }
}

impl Nl2VisModel for NcNet {
    fn name(&self) -> &str {
        "ncNet"
    }

    fn predict(&self, question: &str, db: &Database) -> Option<VqlQuery> {
        let (score, entry) = self.index.best(question)?;
        if score < 0.10 {
            return None;
        }
        let mut q = entry.vql.clone();

        // Attention forcing: the chart-type token attends to the question's
        // own chart keyword.
        if let Some(chart) = chart_signal(question) {
            q.chart = chart;
        }

        // Schema-aware decoding: identifiers outside the test database's
        // vocabulary are re-mapped into it, preferring columns the question
        // itself mentions (the copy mechanism attends to schema tokens that
        // co-occur with the question).
        if entry.db != db.name() {
            let mentioned = mentioned_columns(question, db);
            remap_query(&mut q, db, &mentioned);
        }
        Some(q)
    }
}

fn chart_signal(question: &str) -> Option<ChartType> {
    for t in question_tokens(question) {
        if let QTok::Word(w) = t {
            match w.as_str() {
                "bar" | "bars" | "histogram" => return Some(ChartType::Bar),
                "pie" | "donut" => return Some(ChartType::Pie),
                "line" | "trend" | "series" => return Some(ChartType::Line),
                "scatter" | "point" | "cloud" => return Some(ChartType::Scatter),
                _ => {}
            }
        }
    }
    None
}

/// Columns of the database whose identifier tokens all appear in the
/// question (the copy mechanism's candidates).
fn mentioned_columns(question: &str, db: &Database) -> Vec<String> {
    let q_tokens: std::collections::HashSet<String> = nl2vis_data::text::words(question)
        .into_iter()
        .map(|w| nl2vis_data::text::singularize(&w))
        .collect();
    let mut out = Vec::new();
    for t in db.tables() {
        for c in &t.def.columns {
            let tokens = split_identifier(&c.name);
            if !tokens.is_empty()
                && tokens
                    .iter()
                    .all(|w| q_tokens.contains(&nl2vis_data::text::singularize(w)))
                && !out.contains(&c.name)
            {
                out.push(c.name.clone());
            }
        }
    }
    out
}

/// Name-token similarity between two identifiers.
fn name_similarity(a: &str, b: &str) -> f64 {
    let ta: Vec<String> = split_identifier(a);
    let tb: Vec<String> = split_identifier(b);
    let inter = ta.iter().filter(|t| tb.contains(t)).count();
    if inter == 0 {
        return 0.0;
    }
    inter as f64 / (ta.len() + tb.len() - inter) as f64
}

fn best_table(db: &Database, current: &str) -> Option<String> {
    db.tables()
        .iter()
        .map(|t| (name_similarity(current, &t.def.name), t.def.name.clone()))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(s, name)| {
            if s > 0.0 {
                name
            } else {
                db.tables()[0].def.name.clone()
            }
        })
}

fn best_column(
    db: &Database,
    table_hint: &str,
    current: &str,
    mentioned: &[String],
) -> Option<String> {
    // Question-mentioned columns get a strong copy-attention bonus; the
    // hinted table a weak one.
    let mut best: Option<(f64, String)> = None;
    for t in db.tables() {
        let table_weight = if t.def.name.eq_ignore_ascii_case(table_hint) {
            1.1
        } else {
            1.0
        };
        for c in &t.def.columns {
            let mention_bonus = if mentioned.contains(&c.name) {
                0.6
            } else {
                0.0
            };
            let s = name_similarity(current, &c.name) * table_weight + mention_bonus;
            if s > 0.0 && best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, c.name.clone()));
            }
        }
    }
    best.map(|(_, c)| c)
}

fn remap_query(q: &mut VqlQuery, db: &Database, mentioned: &[String]) {
    let from = best_table(db, &q.from).unwrap_or_else(|| q.from.clone());
    q.from = from.clone();
    if let Some(j) = &mut q.join {
        j.table = best_table(db, &j.table).unwrap_or_else(|| j.table.clone());
        remap_colref(&mut j.left, db, &from, mentioned);
        remap_colref(&mut j.right, db, &j.table.clone(), mentioned);
    }
    remap_expr(&mut q.x, db, &from, mentioned);
    remap_expr(&mut q.y, db, &from, mentioned);
    if let Some(f) = &mut q.filter {
        remap_predicate(f, db, &from, mentioned);
    }
    if let Some(b) = &mut q.bin {
        remap_colref(&mut b.column, db, &from, mentioned);
    }
    for g in &mut q.group_by {
        remap_colref(g, db, &from, mentioned);
    }
    if let Some(o) = &mut q.order {
        if let OrderTarget::Column(c) = &mut o.target {
            remap_colref(c, db, &from, mentioned);
        }
    }
}

fn remap_expr(e: &mut SelectExpr, db: &Database, table_hint: &str, mentioned: &[String]) {
    match e {
        SelectExpr::Column(c) => remap_colref(c, db, table_hint, mentioned),
        SelectExpr::Agg { arg: Some(c), .. } => remap_colref(c, db, table_hint, mentioned),
        SelectExpr::Agg { arg: None, .. } => {}
    }
}

fn remap_colref(c: &mut ColumnRef, db: &Database, table_hint: &str, mentioned: &[String]) {
    if let Some(t) = &mut c.table {
        if let Some(mapped) = best_table(db, t) {
            *t = mapped;
        }
    }
    let hint = c.table.clone().unwrap_or_else(|| table_hint.to_string());
    if let Some(mapped) = best_column(db, &hint, &c.column, mentioned) {
        c.column = mapped;
        // Fix up the qualifier to the owning table.
        if let Some(t) = &mut c.table {
            if db
                .table(t)
                .ok()
                .and_then(|tb| tb.def.column_index(&c.column))
                .is_none()
            {
                if let Some(owner) = db
                    .tables()
                    .iter()
                    .find(|tb| tb.def.column_index(&c.column).is_some())
                {
                    *t = owner.def.name.clone();
                }
            }
        }
    }
}

fn remap_predicate(p: &mut Predicate, db: &Database, table_hint: &str, mentioned: &[String]) {
    match p {
        Predicate::Cmp { col, .. } => remap_colref(col, db, table_hint, mentioned),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            remap_predicate(a, db, table_hint, mentioned);
            remap_predicate(b, db, table_hint, mentioned);
        }
        Predicate::InSubquery { col, subquery, .. } => {
            remap_colref(col, db, table_hint, mentioned);
            if let Some(mapped) = best_table(db, &subquery.from) {
                subquery.from = mapped.clone();
                remap_colref(&mut subquery.select, db, &mapped, mentioned);
                if let Some(inner) = &mut subquery.filter {
                    remap_predicate(inner, db, &mapped, mentioned);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_query::canon::exact_match;

    #[test]
    fn chart_forcing_overrides_template() {
        let c = Corpus::build(&CorpusConfig::small(43));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = NcNet::train(&c, &ids);
        // Take a bar-chart example and ask for a pie with the same content.
        let e = c
            .examples
            .iter()
            .find(|e| e.vql.chart == ChartType::Bar)
            .unwrap();
        let altered =
            e.nl.replacen("bar chart", "pie chart", 1)
                .replacen("bar graph", "pie chart", 1)
                .replacen("histogram", "pie chart", 1)
                .replacen("bars", "pie", 1);
        if altered != e.nl {
            let db = c.catalog.database(&e.db).unwrap();
            let pred = m.predict(&altered, db).unwrap();
            assert_eq!(pred.chart, ChartType::Pie);
        }
    }

    #[test]
    fn identifiers_stay_in_test_vocabulary_cross_domain() {
        let c = Corpus::build(&CorpusConfig::small(43));
        let db0 = c.examples[0].db.clone();
        let ids: Vec<usize> = c
            .examples
            .iter()
            .filter(|e| e.db == db0)
            .map(|e| e.id)
            .collect();
        let m = NcNet::train(&c, &ids);
        let other = c.examples.iter().find(|e| e.db != db0).unwrap();
        let db = c.catalog.database(&other.db).unwrap();
        if let Some(pred) = m.predict(&other.nl, db) {
            assert!(
                db.table(&pred.from).is_ok(),
                "FROM should be remapped into the test DB"
            );
        }
    }

    #[test]
    fn reproduces_training_examples() {
        let c = Corpus::build(&CorpusConfig::small(43));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = NcNet::train(&c, &ids);
        let e = &c.examples[1];
        let db = c.catalog.database(&e.db).unwrap();
        let pred = m.predict(&e.nl, db).unwrap();
        assert!(exact_match(&pred, &e.vql));
    }

    #[test]
    fn name_similarity_sane() {
        assert!(name_similarity("hire_date", "hire_date") > 0.99);
        assert!(name_similarity("hire_date", "release_date") > 0.0);
        assert_eq!(name_similarity("team", "salary"), 0.0);
    }
}
