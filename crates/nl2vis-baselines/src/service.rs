//! Adapter exposing any [`Nl2VisModel`] baseline as a
//! [`CompletionService`], so trained baselines (T5, ncNet, retrieval
//! models) compose as tiers in the serving stack next to the simulated
//! LLMs.
//!
//! The baselines consume `(question, grounded database)` while the serving
//! stack speaks `(prompt, GenOptions)`. This adapter bridges the two: it
//! recovers the database name and question from the prompt's own markers
//! (`Database: <name>` from the schema serializers, `Q: <question>` from
//! the ICL builder), resolves the database through a caller-supplied
//! resolver, runs the baseline, and prints the predicted query back to VQL
//! text — the same surface a model completion would present to the
//! validation gate.
//!
//! Failure mapping keeps routing semantics honest:
//!
//! - a prompt the adapter cannot read, or a database the resolver does not
//!   know, is a `Protocol` transport error (the request never reached the
//!   model);
//! - a baseline that declines to predict (its generation failure mode) is
//!   a `Status(422)` — the same channel the validation gate uses — so a
//!   tiered router escalates past it instead of scoring an empty answer.

use std::sync::Arc;

use nl2vis_data::Database;
use nl2vis_service::{
    CompletionOutcome, CompletionService, GenOptions, TransportError, TransportErrorKind,
    VALIDATION_REJECTED_STATUS,
};

use crate::Nl2VisModel;

/// Wraps a trained baseline as a completion service (layer tag
/// `"baseline"`).
pub struct ModelService<M, R> {
    model: M,
    resolve: R,
}

impl<M, R> ModelService<M, R>
where
    M: Nl2VisModel,
    R: Fn(&str) -> Option<Arc<Database>>,
{
    /// Builds the adapter around `model`, resolving database names from
    /// incoming prompts through `resolve`.
    pub fn new(model: M, resolve: R) -> ModelService<M, R> {
        ModelService { model, resolve }
    }
}

/// Pulls the grounded database name out of a prompt. Both schema
/// serializations open with `Database: <name>`; the ICL builder prefixes
/// demonstration schemas with `-- Database: <name>` and places the test
/// schema last, so the *last* marker wins.
fn database_name(prompt: &str) -> Option<&str> {
    prompt
        .lines()
        .filter_map(|line| {
            let line = line.trim_start_matches("-- ");
            line.strip_prefix("Database: ")
        })
        .next_back()
        .map(str::trim)
}

/// Pulls the question out of a prompt: the last `Q: ` line (demonstrations
/// carry their own `Q: ` lines before the test question).
fn question(prompt: &str) -> Option<&str> {
    prompt
        .lines()
        .filter_map(|line| line.strip_prefix("Q: "))
        .next_back()
        .map(str::trim)
}

impl<M, R> CompletionService for ModelService<M, R>
where
    M: Nl2VisModel,
    R: Fn(&str) -> Option<Arc<Database>>,
{
    fn model(&self) -> &str {
        self.model.name()
    }

    fn call(&self, prompt: &str, _opts: &GenOptions) -> CompletionOutcome {
        let db_name = database_name(prompt).ok_or_else(|| {
            TransportError::new(
                TransportErrorKind::Protocol,
                1,
                "prompt carries no `Database:` marker".to_string(),
            )
        })?;
        let question = question(prompt).ok_or_else(|| {
            TransportError::new(
                TransportErrorKind::Protocol,
                1,
                "prompt carries no `Q:` line".to_string(),
            )
        })?;
        let db = (self.resolve)(db_name).ok_or_else(|| {
            TransportError::new(
                TransportErrorKind::Protocol,
                1,
                format!("unknown database `{db_name}`"),
            )
        })?;
        match self.model.predict(question, &db) {
            Some(query) => Ok(nl2vis_query::printer::print(&query)),
            None => Err(TransportError::new(
                TransportErrorKind::Status(VALIDATION_REJECTED_STATUS),
                1,
                format!("{} produced no parse", self.model.name()),
            )),
        }
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("baseline");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Seq2Vis, T5Model, T5Size};
    use nl2vis_corpus::{Corpus, CorpusConfig};
    use std::collections::BTreeMap;

    fn corpus() -> Corpus {
        Corpus::build(&CorpusConfig::small(42))
    }

    fn resolver(corpus: &Corpus) -> impl Fn(&str) -> Option<Arc<Database>> {
        let dbs: BTreeMap<String, Arc<Database>> = corpus
            .catalog
            .iter()
            .map(|d| (d.name().to_string(), Arc::new(d.clone())))
            .collect();
        move |name: &str| dbs.get(name).cloned()
    }

    fn prompt_for(db: &str, q: &str) -> String {
        format!("Database: {db}\nTables: t\nColumns: c\n\nQ: {q}\nVQL:")
    }

    #[test]
    fn adapter_answers_through_the_service_surface() {
        let corpus = corpus();
        let split = corpus.split_in_domain(3);
        let model = T5Model::train(&corpus, &split.train, T5Size::Base, 7);
        let svc = ModelService::new(model, resolver(&corpus));
        let mut answered = 0usize;
        for &id in split.test.iter().take(20) {
            let ex = &corpus.examples[id];
            if let Ok(out) = svc.call(&prompt_for(&ex.db, &ex.nl), &GenOptions::default()) {
                assert!(
                    out.to_uppercase().starts_with("VISUALIZE"),
                    "baseline output is VQL text: {out}"
                );
                answered += 1;
            }
        }
        assert!(answered > 0, "T5 answered none of 20 in-domain prompts");
        assert_eq!(nl2vis_service::stack_of(&svc), vec!["baseline"]);
    }

    #[test]
    fn unreadable_prompts_are_protocol_errors_not_answers() {
        let corpus = corpus();
        let split = corpus.split_in_domain(3);
        let model = Seq2Vis::train(&corpus, &split.train);
        let svc = ModelService::new(model, |_: &str| None::<Arc<Database>>);
        let err = svc
            .call("no markers here", &GenOptions::default())
            .unwrap_err();
        assert!(matches!(err.kind, TransportErrorKind::Protocol));
        let err = svc
            .call(
                &prompt_for("nowhere_db", "list everything"),
                &GenOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err.kind, TransportErrorKind::Protocol));
        assert!(err.to_string().contains("nowhere_db"));
    }

    #[test]
    fn a_declined_prediction_rides_the_validation_channel() {
        let corpus = corpus();
        let split = corpus.split_in_domain(3);
        let model = Seq2Vis::train(&corpus, &split.train);
        let svc = ModelService::new(model, resolver(&corpus));
        let mut saw_answer = false;
        for &id in split.test.iter().take(50) {
            let ex = &corpus.examples[id];
            match svc.call(&prompt_for(&ex.db, &ex.nl), &GenOptions::default()) {
                Ok(_) => saw_answer = true,
                Err(e) => {
                    assert!(matches!(
                        e.kind,
                        TransportErrorKind::Status(VALIDATION_REJECTED_STATUS)
                    ));
                }
            }
        }
        assert!(saw_answer, "Seq2Vis answered none of 50 prompts");
    }
}
