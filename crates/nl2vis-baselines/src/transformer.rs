//! **Transformer** (Vaswani et al.) applied to NL2VIS as in §4.3 of the
//! paper: the same encoder-decoder recipe as Seq2Vis but with attention,
//! whose practical edge on a templated benchmark is the *copy mechanism* —
//! literals (numbers, quoted strings, dates) are copied from the source
//! question into the decoded query rather than hallucinated from the
//! retrieved pattern.

use crate::retrieval::RetrievalIndex;
use crate::Nl2VisModel;
use nl2vis_corpus::Corpus;
use nl2vis_data::Database;
use nl2vis_llm::understand::{question_tokens, QTok};
use nl2vis_query::ast::{Literal, Predicate, VqlQuery};

/// The trained Transformer model.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    index: RetrievalIndex,
}

impl TransformerModel {
    /// Trains (indexes) the model.
    pub fn train(corpus: &Corpus, train_ids: &[usize]) -> TransformerModel {
        TransformerModel {
            index: RetrievalIndex::build_with(
                corpus,
                train_ids,
                crate::retrieval::TokenMode::Content,
            ),
        }
    }
}

impl Nl2VisModel for TransformerModel {
    fn name(&self) -> &str {
        "Transformer"
    }

    fn predict(&self, question: &str, _db: &Database) -> Option<VqlQuery> {
        let (score, entry) = self.index.best(question)?;
        if score < 0.10 {
            return None;
        }
        let mut q = entry.vql.clone();
        // Attention copy: replace filter literals with literals attended in
        // the source question, in order of appearance.
        let mut literals = source_literals(question);
        if let Some(filter) = &mut q.filter {
            substitute_literals(filter, &mut literals);
        }
        Some(q)
    }
}

fn source_literals(question: &str) -> Vec<Literal> {
    question_tokens(question)
        .into_iter()
        .filter_map(|t| match t {
            QTok::Quoted(s) => Some(Literal::Text(s)),
            QTok::Num(n) => Some(if n.fract() == 0.0 {
                Literal::Int(n as i64)
            } else {
                Literal::Float(n)
            }),
            QTok::DateTok(d) => Some(Literal::Date(d)),
            QTok::Word(_) => None,
        })
        .collect()
}

/// Replaces literals left-to-right with type-compatible source literals.
fn substitute_literals(p: &mut Predicate, pool: &mut Vec<Literal>) {
    match p {
        Predicate::Cmp { value, .. } => {
            let compatible = |a: &Literal, b: &Literal| {
                matches!(
                    (a, b),
                    (
                        Literal::Int(_) | Literal::Float(_),
                        Literal::Int(_) | Literal::Float(_)
                    ) | (Literal::Text(_), Literal::Text(_))
                        | (Literal::Date(_), Literal::Date(_))
                        | (Literal::Bool(_), Literal::Bool(_))
                )
            };
            if let Some(pos) = pool.iter().position(|cand| compatible(value, cand)) {
                *value = pool.remove(pos);
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            substitute_literals(a, pool);
            substitute_literals(b, pool);
        }
        Predicate::InSubquery { subquery, .. } => {
            if let Some(inner) = &mut subquery.filter {
                substitute_literals(inner, pool);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_query::ast::{CmpOp, ColumnRef};
    use nl2vis_query::canon::exact_match;

    #[test]
    fn copies_literals_from_question() {
        let c = Corpus::build(&CorpusConfig::small(41));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = TransformerModel::train(&c, &ids);
        // Find a training example with an integer filter literal and perturb
        // the number in the question.
        for e in &c.examples {
            if let Some(Predicate::Cmp {
                value: Literal::Int(n),
                ..
            }) = &e.vql.filter
            {
                let modified = e.nl.replace(&n.to_string(), "1234");
                if modified == e.nl {
                    continue;
                }
                let db = c.catalog.database(&e.db).unwrap();
                let pred = m.predict(&modified, db).unwrap();
                if let Some(Predicate::Cmp { value, .. }) = &pred.filter {
                    assert_eq!(
                        *value,
                        Literal::Int(1234),
                        "copy mechanism should copy 1234"
                    );
                    return;
                }
            }
        }
        panic!("no suitable training example found");
    }

    #[test]
    fn reproduces_training_examples() {
        let c = Corpus::build(&CorpusConfig::small(41));
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        let m = TransformerModel::train(&c, &ids);
        let e = &c.examples[2];
        let db = c.catalog.database(&e.db).unwrap();
        let pred = m.predict(&e.nl, db).unwrap();
        assert!(exact_match(&pred, &e.vql), "self-retrieval should be exact");
    }

    #[test]
    fn literal_substitution_is_type_aware() {
        let mut p = Predicate::Cmp {
            col: ColumnRef::new("team"),
            op: CmpOp::Eq,
            value: Literal::Text("NYY".into()),
        };
        // An int literal must not replace a text literal.
        let mut pool = vec![Literal::Int(5), Literal::Text("BOS".into())];
        substitute_literals(&mut p, &mut pool);
        match p {
            Predicate::Cmp { value, .. } => assert_eq!(value, Literal::Text("BOS".into())),
            _ => unreachable!(),
        }
    }
}
