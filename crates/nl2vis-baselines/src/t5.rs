//! **T5-Small / T5-Base**: encoder-decoder language models *fine-tuned* on
//! the NL2VIS training split (§4.3 of the paper).
//!
//! The reproduction trains two genuinely learned components on the split:
//!
//! 1. a **lexicon** of phrase-word ↔ schema-word associations, fit from
//!    co-occurrence counts between question words and the identifier tokens
//!    of the gold query's columns — this is how a fine-tuned LM acquires
//!    "pay means salary" *from data* and why it generalizes cross-domain
//!    (the same English words recur across databases);
//! 2. a **memorization head**: near-duplicate training questions from the
//!    same database are reproduced verbatim — the reason the fine-tuned
//!    models post 0.92/0.93 in-domain in Table 3.
//!
//! Capacity (Small vs Base) sets the lexicon's evidence threshold and the
//! residual decoder noise.

use crate::retrieval::RetrievalIndex;
use crate::Nl2VisModel;
use nl2vis_corpus::pools::SYNONYMS;
use nl2vis_corpus::Corpus;
use nl2vis_data::text::{split_identifier, words};
use nl2vis_data::{Database, Rng};
use nl2vis_llm::corrupt_query;
use nl2vis_llm::recover::RecoveredSchema;
use nl2vis_llm::sim::fnv1a;
use nl2vis_llm::understand::{ground, parse_question};
use nl2vis_query::ast::{ColumnRef, Predicate, SelectExpr, VqlQuery};
use std::collections::HashMap;

/// Model capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum T5Size {
    /// 60M parameters.
    Small,
    /// 220M parameters.
    Base,
}

impl T5Size {
    /// Paper-reported parameter count (Table 4).
    pub fn params(self) -> &'static str {
        match self {
            T5Size::Small => "60M",
            T5Size::Base => "220M",
        }
    }

    /// Paper-reported artifact size (Table 4).
    pub fn model_size(self) -> &'static str {
        match self {
            T5Size::Small => "200MB",
            T5Size::Base => "500MB",
        }
    }

    /// Evidence threshold for learning a lexicon entry: the bigger model
    /// picks up rarer associations.
    fn lexicon_threshold(self) -> u32 {
        match self {
            T5Size::Small => 2,
            T5Size::Base => 1,
        }
    }

    /// Residual decoder-slip budget after fine-tuning.
    fn decoder_noise(self) -> f64 {
        match self {
            T5Size::Small => 0.40,
            T5Size::Base => 0.16,
        }
    }

    /// Pretraining world knowledge: T5 is a *pretrained* language model, so
    /// beyond what fine-tuning teaches, it already knows a share of English
    /// synonymy. This is what carries synonym linking onto unseen domains —
    /// the fine-tuned lexicon alone cannot (its domain-specific pairs never
    /// occur in other domains' training data; see Ablation 2).
    fn world_knowledge(self) -> f64 {
        match self {
            T5Size::Small => 0.52,
            T5Size::Base => 0.72,
        }
    }
}

/// The learned phrase-word ↔ schema-word lexicon.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    counts: HashMap<(String, String), u32>,
}

impl Lexicon {
    /// Fits co-occurrence counts between question words and the identifier
    /// tokens of columns referenced by the gold query.
    pub fn fit(corpus: &Corpus, train_ids: &[usize]) -> Lexicon {
        let mut counts: HashMap<(String, String), u32> = HashMap::new();
        for id in train_ids {
            let Some(e) = corpus.example(*id) else {
                continue;
            };
            let q_words = words(&e.nl);
            let mut schema_words = Vec::new();
            collect_column_words(&e.vql, &mut schema_words);
            for qw in &q_words {
                for sw in &schema_words {
                    *counts.entry((qw.clone(), sw.clone())).or_insert(0) += 1;
                }
            }
        }
        Lexicon { counts }
    }

    /// Total observations of (phrase word, schema word).
    pub fn count(&self, phrase_word: &str, schema_word: &str) -> u32 {
        self.counts
            .get(&(phrase_word.to_string(), schema_word.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Has the model learned the synonym-dictionary entry for `alias`?
    /// True when training co-occurrence evidence for (alias, canonical)
    /// meets the capacity threshold.
    pub fn knows_alias(&self, alias: &str, threshold: u32) -> bool {
        SYNONYMS
            .iter()
            .filter(|(a, _)| *a == alias)
            .any(|(a, canonical)| self.count(a, canonical) >= threshold)
    }

    /// Number of learned (above-threshold) synonym entries.
    pub fn learned_entries(&self, threshold: u32) -> usize {
        SYNONYMS
            .iter()
            .filter(|(a, _)| self.knows_alias(a, threshold))
            .count()
    }
}

fn collect_column_words(q: &VqlQuery, out: &mut Vec<String>) {
    let mut push_col = |c: &ColumnRef| {
        out.extend(split_identifier(&c.column));
    };
    if let SelectExpr::Column(c) = &q.x {
        push_col(c);
    }
    match &q.y {
        SelectExpr::Column(c) => push_col(c),
        SelectExpr::Agg { arg: Some(c), .. } => push_col(c),
        SelectExpr::Agg { arg: None, .. } => {}
    }
    if let Some(f) = &q.filter {
        collect_predicate_words(f, out);
    }
    for g in &q.group_by {
        out.extend(split_identifier(&g.column));
    }
}

fn collect_predicate_words(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::Cmp { col, .. } => out.extend(split_identifier(&col.column)),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            collect_predicate_words(a, out);
            collect_predicate_words(b, out);
        }
        Predicate::InSubquery { col, subquery, .. } => {
            out.extend(split_identifier(&col.column));
            if let Some(inner) = &subquery.filter {
                collect_predicate_words(inner, out);
            }
        }
    }
}

/// A fine-tuned T5 model.
#[derive(Debug, Clone)]
pub struct T5Model {
    size: T5Size,
    lexicon: Lexicon,
    memory: RetrievalIndex,
    seed: u64,
    name: &'static str,
}

impl T5Model {
    /// Fine-tunes the model on a training split.
    pub fn train(corpus: &Corpus, train_ids: &[usize], size: T5Size, seed: u64) -> T5Model {
        T5Model {
            size,
            lexicon: Lexicon::fit(corpus, train_ids),
            memory: RetrievalIndex::build_with(
                corpus,
                train_ids,
                crate::retrieval::TokenMode::Template,
            ),
            seed,
            name: match size {
                T5Size::Small => "T5-Small",
                T5Size::Base => "T5-Base",
            },
        }
    }

    /// The learned lexicon (exposed for the ablation bench).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Model capacity.
    pub fn size(&self) -> T5Size {
        self.size
    }
}

impl Nl2VisModel for T5Model {
    fn name(&self) -> &str {
        self.name
    }

    fn predict(&self, question: &str, db: &Database) -> Option<VqlQuery> {
        // Memorization head: a near-duplicate training question over the
        // same database decodes to its memorized target.
        if let Some((score, entry)) = self.memory.best(question) {
            if score >= 0.55 && entry.db == db.name() {
                return Some(entry.vql.clone());
            }
        }

        // Learned semantic parsing: intent parse + grounding where synonym
        // knowledge is the union of (a) what fine-tuning's lexicon picked up
        // from co-occurrence and (b) a capacity-dependent share of
        // pretraining synonymy.
        let schema = RecoveredSchema::from_database(db);
        let intent = parse_question(question);
        let threshold = self.size.lexicon_threshold();
        let lexicon = &self.lexicon;
        let wk = self.size.world_knowledge();
        let seed = self.seed;
        let knows = move |alias: &str| {
            lexicon.knows_alias(alias, threshold)
                || (fnv1a(alias) ^ seed.rotate_left(29)) % 10_000 < (wk * 10_000.0) as u64
        };
        let mut grounding = ground(&intent, &schema, &knows)?;

        // Residual decoder noise (seeded, query-deterministic).
        let mut rng = Rng::new(fnv1a(question) ^ self.seed.rotate_left(13));
        let mut budget = self.size.decoder_noise();
        budget += 0.10 * grounding.risk.filters_unlinked as f64;
        if grounding.risk.x_unlinked {
            budget += 0.20;
        }
        corrupt_query(&mut grounding.query, &schema, budget, 1.0, &mut rng);
        Some(grounding.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_query::canon::exact_match;

    fn setup() -> (Corpus, Vec<usize>) {
        let c = Corpus::build(&CorpusConfig {
            seed: 59,
            instances_per_domain: 1,
            queries_per_db: 16,
            paraphrases: (2, 3),
        });
        let ids: Vec<usize> = c.examples.iter().map(|e| e.id).collect();
        (c, ids)
    }

    #[test]
    fn lexicon_learns_synonyms_from_data() {
        let (c, ids) = setup();
        let lex = Lexicon::fit(&c, &ids);
        // Something should be learned: aliases like "pay" co-occur with
        // salary columns across domains.
        let learned = lex.learned_entries(1);
        assert!(learned > 5, "lexicon learned only {learned} entries");
        // Higher thresholds learn less.
        assert!(lex.learned_entries(5) <= learned);
    }

    #[test]
    fn base_learns_more_than_small() {
        let (c, ids) = setup();
        let small = T5Model::train(&c, &ids, T5Size::Small, 1);
        let base = T5Model::train(&c, &ids, T5Size::Base, 1);
        let s = small
            .lexicon()
            .learned_entries(T5Size::Small.lexicon_threshold());
        let b = base
            .lexicon()
            .learned_entries(T5Size::Base.lexicon_threshold());
        assert!(
            b >= s,
            "base ({b}) should learn at least as much as small ({s})"
        );
    }

    #[test]
    fn memorizes_training_examples() {
        let (c, ids) = setup();
        let m = T5Model::train(&c, &ids, T5Size::Base, 1);
        let mut exact = 0;
        for e in c.examples.iter().take(40) {
            let db = c.catalog.database(&e.db).unwrap();
            if m.predict(&e.nl, db)
                .is_some_and(|p| exact_match(&p, &e.vql))
            {
                exact += 1;
            }
        }
        assert!(
            exact >= 36,
            "fine-tuned model should reproduce training data, got {exact}/40"
        );
    }

    #[test]
    fn generalizes_cross_domain_better_than_seq2vis() {
        let (c, _) = setup();
        let split = c.split_cross_domain(1);
        let t5 = T5Model::train(&c, &split.train, T5Size::Base, 1);
        let s2v = crate::Seq2Vis::train(&c, &split.train);
        let mut t5_ok = 0;
        let mut s2v_ok = 0;
        for id in split.test.iter().take(60) {
            let e = c.example(*id).unwrap();
            let db = c.catalog.database(&e.db).unwrap();
            if t5
                .predict(&e.nl, db)
                .is_some_and(|p| exact_match(&p, &e.vql))
            {
                t5_ok += 1;
            }
            if s2v
                .predict(&e.nl, db)
                .is_some_and(|p| exact_match(&p, &e.vql))
            {
                s2v_ok += 1;
            }
        }
        assert!(
            t5_ok > s2v_ok,
            "T5 ({t5_ok}) should beat Seq2Vis ({s2v_ok}) cross-domain"
        );
    }

    #[test]
    fn predictions_are_deterministic() {
        let (c, ids) = setup();
        let m = T5Model::train(&c, &ids, T5Size::Small, 7);
        let e = &c.examples[5];
        let db = c.catalog.database(&e.db).unwrap();
        assert_eq!(m.predict(&e.nl, db), m.predict(&e.nl, db));
    }

    #[test]
    fn size_metadata() {
        assert_eq!(T5Size::Small.params(), "60M");
        assert_eq!(T5Size::Base.model_size(), "500MB");
    }
}
