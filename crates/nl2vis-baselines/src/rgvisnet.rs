//! **RGVisNet** (Song et al., KDD 2022): retrieve the most relevant
//! visualization-query *prototype* from a codebase, then *revise* it with a
//! schema-aware network before generating the final query.
//!
//! The reproduction follows the same retrieve-refine split: the skeleton
//! (clause structure) comes from the retrieved prototype, while every
//! grounded element — table, columns, literals, join keys — is re-derived
//! from the test question and the test database schema using the shared
//! intent parser and linker, *without* synonym world-knowledge (the GNN
//! schema encoder sees identifier tokens, not English). This re-grounding is
//! what lifts RGVisNet's cross-domain accuracy far above the pure seq2seq
//! baselines (0.45 in Table 3) while still trailing the LLMs.

use crate::retrieval::RetrievalIndex;
use crate::Nl2VisModel;
use nl2vis_corpus::Corpus;
use nl2vis_data::Database;
use nl2vis_llm::recover::RecoveredSchema;
use nl2vis_llm::understand::{ground, parse_question};
use nl2vis_query::ast::VqlQuery;
use nl2vis_query::printer::print_sketch;

/// The trained RGVisNet model.
#[derive(Debug, Clone)]
pub struct RgVisNet {
    index: RetrievalIndex,
}

impl RgVisNet {
    /// Trains (indexes the prototype codebase).
    pub fn train(corpus: &Corpus, train_ids: &[usize]) -> RgVisNet {
        RgVisNet {
            index: RetrievalIndex::build_with(
                corpus,
                train_ids,
                crate::retrieval::TokenMode::Content,
            ),
        }
    }
}

impl Nl2VisModel for RgVisNet {
    fn name(&self) -> &str {
        "RGVisNet"
    }

    fn predict(&self, question: &str, db: &Database) -> Option<VqlQuery> {
        // Refine-and-generate: parse the intent and ground it on the *test*
        // schema. No synonym knowledge — the schema encoder only matches
        // identifier tokens.
        let schema = RecoveredSchema::from_database(db);
        let intent = parse_question(question);
        let no_synonyms = |_: &str| false;
        let grounded = ground(&intent, &schema, &no_synonyms);

        // Retrieve the prototype for structural validation.
        let prototype = self.index.best(question);

        match (grounded, prototype) {
            (Some(g), Some((score, proto))) => {
                // When grounding lost essential parts (unlinked axes), the
                // revision network trusts the prototype if it is a close
                // match from the same database; otherwise it emits the
                // grounded query *restricted to the prototype's clause
                // structure* — the revision network fills the retrieved
                // skeleton's slots, it cannot invent clauses the prototype
                // lacks (the framework's known limitation on novel
                // structures).
                let risky = g.risk.x_unlinked || g.risk.y_unlinked;
                if risky && score > 0.8 && proto.db == db.name() {
                    Some(proto.vql.clone())
                } else {
                    let mut q = g.query;
                    if print_sketch(&q) != print_sketch(&proto.vql) {
                        restrict_to_skeleton(&mut q, &proto.vql);
                    }
                    Some(q)
                }
            }
            (Some(g), None) => Some(g.query),
            (None, Some((score, proto))) if score > 0.5 && proto.db == db.name() => {
                Some(proto.vql.clone())
            }
            _ => None,
        }
    }
}

/// Drops the clauses of `q` that the retrieved prototype's skeleton does not
/// contain: the revision network can only fill slots the skeleton has.
fn restrict_to_skeleton(q: &mut VqlQuery, proto: &VqlQuery) {
    if proto.filter.is_none() {
        q.filter = None;
    }
    if proto.order.is_none() {
        q.order = None;
    }
    if proto.bin.is_none() {
        q.bin = None;
    }
    if proto.group_by.len() < 2 && q.group_by.len() > 1 {
        q.group_by.truncate(1);
    }
    if proto.group_by.is_empty() && !q.y.is_aggregate() {
        q.group_by.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::CorpusConfig;
    use nl2vis_query::canon::exact_match;

    #[test]
    fn regrounds_on_unseen_database() {
        let c = Corpus::build(&CorpusConfig::small(47));
        let db0 = c.examples[0].db.clone();
        let train_ids: Vec<usize> = c
            .examples
            .iter()
            .filter(|e| e.db == db0)
            .map(|e| e.id)
            .collect();
        let m = RgVisNet::train(&c, &train_ids);
        // Predictions on unseen databases use the test schema's identifiers.
        let mut correct = 0;
        let mut total = 0;
        for e in c.examples.iter().filter(|e| e.db != db0).take(40) {
            let db = c.catalog.database(&e.db).unwrap();
            if let Some(pred) = m.predict(&e.nl, db) {
                assert!(
                    db.table(&pred.from).is_ok(),
                    "grounded FROM must exist in test DB"
                );
                total += 1;
                if exact_match(&pred, &e.vql) {
                    correct += 1;
                }
            }
        }
        assert!(total > 10);
        assert!(
            correct > 0,
            "re-grounding should solve some unseen-DB queries"
        );
    }

    #[test]
    fn beats_pure_retrieval_cross_domain() {
        let c = Corpus::build(&CorpusConfig::small(47));
        let split = c.split_cross_domain(1);
        let rg = RgVisNet::train(&c, &split.train);
        let s2v = crate::Seq2Vis::train(&c, &split.train);
        let mut rg_ok = 0;
        let mut s2v_ok = 0;
        for id in split.test.iter().take(60) {
            let e = c.example(*id).unwrap();
            let db = c.catalog.database(&e.db).unwrap();
            if rg
                .predict(&e.nl, db)
                .is_some_and(|p| exact_match(&p, &e.vql))
            {
                rg_ok += 1;
            }
            if s2v
                .predict(&e.nl, db)
                .is_some_and(|p| exact_match(&p, &e.vql))
            {
                s2v_ok += 1;
            }
        }
        assert!(
            rg_ok > s2v_ok,
            "RGVisNet ({rg_ok}) should beat Seq2Vis ({s2v_ok}) cross-domain"
        );
    }
}
