//! Demonstration selection for in-context learning.
//!
//! The paper selects demonstrations by Jaccard similarity to the test
//! question (§2.2.2) and, in RQ2-2 / Figure 8, controls the *diversity* of
//! the demonstrations: `A` distinct databases × `B` examples per database.

use nl2vis_corpus::Example;
use nl2vis_data::text::{jaccard_sets, words};
use nl2vis_data::Rng;
use std::collections::{BTreeMap, HashSet};

/// Template filler words carried by almost every realized question; they
/// would otherwise dominate the Jaccard signal and drown out the schema
/// words that identify the relevant database.
const FILLER: &[&str] = &[
    "show",
    "draw",
    "plot",
    "visualize",
    "display",
    "give",
    "me",
    "create",
    "a",
    "an",
    "the",
    "of",
    "chart",
    "graph",
    "for",
    "each",
    "by",
    "per",
    "grouped",
    "across",
    "from",
    "in",
    "using",
    "table",
    "records",
    "where",
    "is",
    "order",
    "sorted",
    "ordered",
    "ranked",
    "rank",
    "ascending",
    "descending",
    "and",
    "or",
    "to",
    "number",
    "how",
    "many",
    "count",
    "total",
    "sum",
    "average",
    "mean",
    "combined",
];

/// Content-word Jaccard similarity between two questions.
fn content_jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    jaccard_sets(a, b)
}

/// Extracts the content-word set of a question.
fn content_set(text: &str) -> HashSet<String> {
    words(text)
        .into_iter()
        .filter(|w| !FILLER.contains(&w.as_str()))
        .collect()
}

/// Per-database accumulator: the best similarity score seen for the
/// database plus every scored example in it.
type DbSlots<'a> = BTreeMap<&'a str, (f64, Vec<(f64, &'a Example)>)>;

/// A demonstration pool with precomputed content-word sets, so repeated
/// selections over the same training split don't re-tokenize every example.
pub struct DemoPool<'a> {
    entries: Vec<(&'a Example, HashSet<String>)>,
}

impl<'a> DemoPool<'a> {
    /// Builds the pool from candidate examples.
    pub fn new(pool: &[&'a Example]) -> DemoPool<'a> {
        DemoPool {
            entries: pool.iter().map(|e| (*e, content_set(&e.nl))).collect(),
        }
    }

    /// Number of pooled examples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Top-`k` most similar demonstrations, excluding `exclude_id`.
    pub fn select_similar(&self, question: &str, k: usize, exclude_id: usize) -> Vec<&'a Example> {
        let q = content_set(question);
        let scored: Vec<(f64, &Example)> = self
            .entries
            .iter()
            .filter(|(e, _)| e.id != exclude_id)
            .map(|(e, set)| (content_jaccard(&q, set), *e))
            .collect();
        rank_scored(scored, k)
    }

    /// All `k` demonstrations from the single most relevant database.
    pub fn select_same_db(&self, question: &str, k: usize, exclude_id: usize) -> Vec<&'a Example> {
        let q = content_set(question);
        let mut best: Option<(&str, f64)> = None;
        let mut by_db: BTreeMap<&str, Vec<(f64, &Example)>> = BTreeMap::new();
        for (e, set) in &self.entries {
            if e.id == exclude_id {
                continue;
            }
            // Score once against the cached content set; the same score
            // ranks databases *and* the examples inside the winning one —
            // the whole point of pooling is to never re-tokenize.
            let score = content_jaccard(&q, set);
            by_db.entry(e.db.as_str()).or_default().push((score, e));
            let beats = match best {
                Some((_, b)) => score.total_cmp(&b).is_gt(),
                None => true,
            };
            if beats {
                best = Some((e.db.as_str(), score));
            }
        }
        match best {
            Some((db, _)) => rank_scored(by_db.remove(db).unwrap_or_default(), k),
            None => Vec::new(),
        }
    }

    /// `dbs × per_db` demonstrations from distinct databases.
    pub fn select_grouped(
        &self,
        question: &str,
        dbs: usize,
        per_db: usize,
        exclude_id: usize,
    ) -> Vec<&'a Example> {
        let q = content_set(question);
        let mut by_db: DbSlots = BTreeMap::new();
        for (e, set) in &self.entries {
            if e.id == exclude_id {
                continue;
            }
            let score = content_jaccard(&q, set);
            let slot = by_db.entry(e.db.as_str()).or_insert((f64::MIN, Vec::new()));
            if score.total_cmp(&slot.0).is_gt() {
                slot.0 = score;
            }
            slot.1.push((score, e));
        }
        let mut ranked: Vec<(&str, f64)> = by_db.iter().map(|(db, (s, _))| (*db, *s)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let winners: Vec<&str> = ranked.into_iter().take(dbs).map(|(db, _)| db).collect();
        let mut out = Vec::new();
        for db in winners {
            if let Some((_, scored)) = by_db.remove(db) {
                out.extend(rank_scored(scored, per_db));
            }
        }
        out
    }
}

/// Sorts pre-scored demonstrations best-first (ties broken by example id,
/// matching the unscored selectors) and returns the top `k`. `total_cmp`
/// keeps the comparator a total order — a `partial_cmp`-to-`Equal`
/// fallback makes NaN compare equal to *everything*, which violates sort's
/// transitivity contract and can scramble an otherwise well-ordered list.
fn rank_scored(mut scored: Vec<(f64, &Example)>, k: usize) -> Vec<&Example> {
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));
    scored.into_iter().take(k).map(|(_, e)| e).collect()
}

/// Selects up to `k` demonstrations from the pool, most Jaccard-similar to
/// the question first.
pub fn select_by_similarity<'a>(
    pool: &[&'a Example],
    question: &str,
    k: usize,
) -> Vec<&'a Example> {
    let q = content_set(question);
    let scored: Vec<(f64, &Example)> = pool
        .iter()
        .map(|e| (content_jaccard(&q, &content_set(&e.nl)), *e))
        .collect();
    rank_scored(scored, k)
}

/// Selects demonstrations restricted to one database: the pool database most
/// similar to the question supplies all `k` examples (mimicking "examples
/// drawn from the same database" in Figure 8).
pub fn select_same_database<'a>(
    pool: &[&'a Example],
    question: &str,
    k: usize,
) -> Vec<&'a Example> {
    let by_db = group_by_db(pool);
    let q = content_set(question);
    // Rank databases by their best example similarity.
    let mut best: Option<(&str, f64)> = None;
    for (db, examples) in &by_db {
        let score = examples
            .iter()
            .map(|e| content_jaccard(&q, &content_set(&e.nl)))
            .fold(f64::MIN, f64::max);
        if best.is_none() || score > best.unwrap().1 {
            best = Some((db, score));
        }
    }
    match best {
        Some((db, _)) => select_by_similarity(&by_db[db], question, k),
        None => Vec::new(),
    }
}

/// Selects `n_dbs × per_db` demonstrations from `n_dbs` distinct databases
/// (`A × B` of Figure 8). Databases are ranked by similarity; within each,
/// the most similar examples are taken. Falls back to fewer databases when
/// the pool has too few.
pub fn select_grouped<'a>(
    pool: &[&'a Example],
    question: &str,
    n_dbs: usize,
    per_db: usize,
) -> Vec<&'a Example> {
    let by_db = group_by_db(pool);
    let q = content_set(question);
    let mut ranked: Vec<(&str, f64)> = by_db
        .iter()
        .map(|(db, examples)| {
            let score = examples
                .iter()
                .map(|e| content_jaccard(&q, &content_set(&e.nl)))
                .fold(f64::MIN, f64::max);
            (*db, score)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = Vec::new();
    for (db, _) in ranked.into_iter().take(n_dbs) {
        out.extend(select_by_similarity(&by_db[db], question, per_db));
    }
    out
}

/// Selects `k` random demonstrations (ablation baseline for the
/// similarity-based selector).
pub fn select_random<'a>(pool: &[&'a Example], k: usize, rng: &mut Rng) -> Vec<&'a Example> {
    let idx = rng.sample_indices(pool.len(), k);
    idx.into_iter().map(|i| pool[i]).collect()
}

fn group_by_db<'a>(pool: &[&'a Example]) -> BTreeMap<&'a str, Vec<&'a Example>> {
    let mut map: BTreeMap<&str, Vec<&Example>> = BTreeMap::new();
    for e in pool {
        map.entry(e.db.as_str()).or_default().push(e);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::{Corpus, CorpusConfig};
    use std::collections::HashSet;

    fn corpus() -> Corpus {
        Corpus::build(&CorpusConfig::small(11))
    }

    #[test]
    fn similarity_selection_prefers_similar() {
        let c = corpus();
        let pool: Vec<&Example> = c.examples.iter().collect();
        let probe = &c.examples[5];
        let picked = select_by_similarity(&pool, &probe.nl, 3);
        assert_eq!(picked.len(), 3);
        // The probe itself is in the pool and maximally similar.
        assert_eq!(picked[0].id, probe.id);
    }

    #[test]
    fn same_database_selection_is_single_db() {
        let c = corpus();
        let pool: Vec<&Example> = c.examples.iter().collect();
        let picked = select_same_database(&pool, &c.examples[0].nl, 4);
        let dbs: HashSet<&str> = picked.iter().map(|e| e.db.as_str()).collect();
        assert_eq!(dbs.len(), 1);
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn grouped_selection_spans_databases() {
        let c = corpus();
        let pool: Vec<&Example> = c.examples.iter().collect();
        let picked = select_grouped(&pool, &c.examples[0].nl, 3, 2);
        assert_eq!(picked.len(), 6);
        let dbs: HashSet<&str> = picked.iter().map(|e| e.db.as_str()).collect();
        assert_eq!(dbs.len(), 3);
    }

    #[test]
    fn grouped_caps_at_available_databases() {
        let c = corpus();
        let one_db = c.examples[0].db.clone();
        let pool: Vec<&Example> = c.examples.iter().filter(|e| e.db == one_db).collect();
        let picked = select_grouped(&pool, "anything", 4, 1);
        assert_eq!(picked.len(), 1);
    }

    #[test]
    fn random_selection_is_distinct_and_seeded() {
        let c = corpus();
        let pool: Vec<&Example> = c.examples.iter().collect();
        let a = select_random(&pool, 5, &mut Rng::new(3));
        let b = select_random(&pool, 5, &mut Rng::new(3));
        assert_eq!(
            a.iter().map(|e| e.id).collect::<Vec<_>>(),
            b.iter().map(|e| e.id).collect::<Vec<_>>()
        );
        let ids: HashSet<usize> = a.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 5);
    }

    /// The pooled selectors rank from cached content sets; they must pick
    /// exactly what the tokenize-per-call free functions pick.
    #[test]
    fn pooled_selectors_match_free_functions() {
        let c = corpus();
        let pool_refs: Vec<&Example> = c.examples.iter().collect();
        let pool = DemoPool::new(&pool_refs);
        for probe in [&c.examples[0], &c.examples[7], &c.examples[13]] {
            let ids = |v: Vec<&Example>| v.iter().map(|e| e.id).collect::<Vec<_>>();
            // exclude_id past the corpus: the pooled methods exclude
            // nothing, same as the free functions.
            let none = usize::MAX;
            assert_eq!(
                ids(pool.select_similar(&probe.nl, 4, none)),
                ids(select_by_similarity(&pool_refs, &probe.nl, 4)),
            );
            assert_eq!(
                ids(pool.select_same_db(&probe.nl, 4, none)),
                ids(select_same_database(&pool_refs, &probe.nl, 4)),
            );
            assert_eq!(
                ids(pool.select_grouped(&probe.nl, 3, 2, none)),
                ids(select_grouped(&pool_refs, &probe.nl, 3, 2)),
            );
        }
    }

    #[test]
    fn pooled_same_db_is_single_db_and_excludes() {
        let c = corpus();
        let pool_refs: Vec<&Example> = c.examples.iter().collect();
        let pool = DemoPool::new(&pool_refs);
        let probe = &c.examples[5];
        let picked = pool.select_same_db(&probe.nl, 4, probe.id);
        let dbs: HashSet<&str> = picked.iter().map(|e| e.db.as_str()).collect();
        assert_eq!(dbs.len(), 1);
        assert!(picked.iter().all(|e| e.id != probe.id));
    }

    #[test]
    fn selection_deterministic_under_ties() {
        let c = corpus();
        let pool: Vec<&Example> = c.examples.iter().collect();
        let a = select_by_similarity(&pool, "completely unrelated words qqq", 4);
        let b = select_by_similarity(&pool, "completely unrelated words qqq", 4);
        assert_eq!(
            a.iter().map(|e| e.id).collect::<Vec<_>>(),
            b.iter().map(|e| e.id).collect::<Vec<_>>()
        );
    }
}
