//! Prompt engineering for NL2VIS (§3.2 and RQ1 of the paper): table
//! serialization strategies, demonstration selection, and in-context-learning
//! prompt assembly.

pub mod icl;
pub mod select;
pub mod serialize;

pub use icl::{build_prompt, AnswerFormat, Prompt, PromptOptions};
pub use serialize::PromptFormat;
