//! The table-to-prompt serialization strategies of Figure 4 of the paper.
//!
//! Four families, fourteen concrete variants:
//!
//! - **A. Table serialization** — `Schema`, `Table (Column)`, `Column=[]`,
//!   `+FK`, `+Value`;
//! - **B. Table summarization** — `Table2NL` (a generated prose summary) and
//!   `Chat2Vis*` (the per-column template of Maddigan & Susnjak);
//! - **C. Table markup formatting** — `Table2JSON`, `Table2CSV`, `Table2MD`,
//!   `Table2XML`;
//! - **D. Table programming** — `Table2SQL`, `Table2SQL+Select`,
//!   `Table2Code` (Python class representation).
//!
//! Each variant preserves a different amount of structure (column↔table
//! attribution, types, keys, rows) at a different token cost; the simulated
//! LLM's per-format prompt parsers and the ICL token budget turn those
//! differences into the accuracy differences of Table 2.

use nl2vis_data::text::{approx_token_count, jaccard};
use nl2vis_data::{csv, Database, Json, Table};

/// A concrete serialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PromptFormat {
    /// Flat schema: table names and a *global* column list (columns are not
    /// attributed to tables — the weakest signal).
    Schema,
    /// `technician ( tech_id , name , ... )` per table.
    TableColumn,
    /// `technician = [ tech_id , name , ... ]` per table.
    ColumnList,
    /// `Column=[]` plus foreign-key lines.
    ColumnListFk,
    /// `Column=[]+FK` plus the first rows of each table.
    ColumnListFkValue,
    /// Generated natural-language summary of the tables.
    Table2Nl,
    /// Chat2Vis-style per-column typed description.
    Chat2Vis,
    /// JSON document (columns, types, keys, one relevant row).
    Table2Json,
    /// CSV blocks (header plus one relevant row; no types, no keys).
    Table2Csv,
    /// Markdown tables (header plus one relevant row).
    Table2Md,
    /// XML document (columns, types, keys, one relevant row).
    Table2Xml,
    /// SQL `CREATE TABLE` statements with PK/FK constraints.
    Table2Sql,
    /// `Table2SQL` plus `SELECT * FROM t LIMIT R` row listings.
    Table2SqlSelect,
    /// Python class-based representation with type hints.
    Table2Code,
}

impl PromptFormat {
    /// Every variant, in the order of Table 2 of the paper.
    pub fn all() -> [PromptFormat; 14] {
        use PromptFormat::*;
        [
            Schema,
            TableColumn,
            ColumnList,
            ColumnListFk,
            ColumnListFkValue,
            Table2Nl,
            Chat2Vis,
            Table2Json,
            Table2Csv,
            Table2Md,
            Table2Xml,
            Table2Sql,
            Table2SqlSelect,
            Table2Code,
        ]
    }

    /// The eleven variants that appear as rows of Table 2.
    pub fn table2_rows() -> [PromptFormat; 11] {
        use PromptFormat::*;
        [
            Schema,
            TableColumn,
            ColumnList,
            Table2Nl,
            Chat2Vis,
            Table2Json,
            Table2Csv,
            Table2Md,
            Table2Xml,
            Table2Sql,
            Table2Code,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PromptFormat::Schema => "Schema",
            PromptFormat::TableColumn => "Table (Column)",
            PromptFormat::ColumnList => "Column=[]",
            PromptFormat::ColumnListFk => "Column=[]+FK",
            PromptFormat::ColumnListFkValue => "Column=[]+FK+Value",
            PromptFormat::Table2Nl => "Table2NL",
            PromptFormat::Chat2Vis => "Chat2Vis*",
            PromptFormat::Table2Json => "Table2JSON",
            PromptFormat::Table2Csv => "Table2CSV",
            PromptFormat::Table2Md => "Table2MD",
            PromptFormat::Table2Xml => "Table2XML",
            PromptFormat::Table2Sql => "Table2SQL",
            PromptFormat::Table2SqlSelect => "Table2SQL+Select",
            PromptFormat::Table2Code => "Table2Code",
        }
    }

    /// Serializes a database for a given question (the question drives
    /// relevant-row selection for the formats that embed rows, per §5.1.1 of
    /// the paper).
    pub fn serialize(self, db: &Database, question: &str) -> String {
        match self {
            PromptFormat::Schema => schema_flat(db),
            PromptFormat::TableColumn => table_column(db),
            PromptFormat::ColumnList => column_list(db, false, 0, question),
            PromptFormat::ColumnListFk => column_list(db, true, 0, question),
            PromptFormat::ColumnListFkValue => column_list(db, true, 3, question),
            PromptFormat::Table2Nl => table2nl(db),
            PromptFormat::Chat2Vis => chat2vis(db),
            PromptFormat::Table2Json => table2json(db, question),
            PromptFormat::Table2Csv => table2csv(db, question),
            PromptFormat::Table2Md => table2md(db, question),
            PromptFormat::Table2Xml => table2xml(db, question),
            PromptFormat::Table2Sql => table2sql(db, 0, question),
            PromptFormat::Table2SqlSelect => table2sql(db, 3, question),
            PromptFormat::Table2Code => table2code(db),
        }
    }

    /// Does this format attribute columns to their tables?
    pub fn attributes_columns(self) -> bool {
        !matches!(self, PromptFormat::Schema)
    }

    /// Does this format carry column types?
    pub fn carries_types(self) -> bool {
        matches!(
            self,
            PromptFormat::Chat2Vis
                | PromptFormat::Table2Json
                | PromptFormat::Table2Xml
                | PromptFormat::Table2Sql
                | PromptFormat::Table2SqlSelect
                | PromptFormat::Table2Code
        )
    }

    /// Does this format carry foreign-key relationships?
    pub fn carries_fks(self) -> bool {
        matches!(
            self,
            PromptFormat::ColumnListFk
                | PromptFormat::ColumnListFkValue
                | PromptFormat::Table2Nl
                | PromptFormat::Table2Json
                | PromptFormat::Table2Xml
                | PromptFormat::Table2Sql
                | PromptFormat::Table2SqlSelect
                | PromptFormat::Table2Code
        )
    }

    /// Approximate token cost of serializing this database.
    pub fn token_cost(self, db: &Database, question: &str) -> usize {
        approx_token_count(&self.serialize(db, question))
    }
}

impl std::fmt::Display for PromptFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Index of the row of `table` most relevant to the question, by Jaccard
/// similarity between the question and the rendered row (§2.2.2).
pub fn most_relevant_row(table: &Table, question: &str) -> Option<usize> {
    (0..table.len()).max_by(|&a, &b| {
        let render = |i: usize| {
            table
                .row(i)
                .unwrap()
                .iter()
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join(" ")
        };
        jaccard(question, &render(a))
            .total_cmp(&jaccard(question, &render(b)))
            // Stable tie-break toward the earlier row.
            .then(b.cmp(&a))
    })
}

fn schema_flat(db: &Database) -> String {
    let tables: Vec<&str> = db.tables().iter().map(|t| t.def.name.as_str()).collect();
    let mut columns = Vec::new();
    for t in db.tables() {
        for c in &t.def.columns {
            columns.push(c.name.as_str());
        }
    }
    format!(
        "Database: {}\nTables: {}\nColumns: {}",
        db.name(),
        tables.join(", "),
        columns.join(", ")
    )
}

fn table_column(db: &Database) -> String {
    let mut out = format!("Database: {}\n", db.name());
    for t in db.tables() {
        out.push_str(&format!(
            "{} ( {} )\n",
            t.def.name,
            t.def.column_names().join(" , ")
        ));
    }
    out.trim_end().to_string()
}

fn column_list(db: &Database, fks: bool, rows: usize, question: &str) -> String {
    let mut out = format!("Database: {}\n", db.name());
    for t in db.tables() {
        out.push_str(&format!(
            "{} = [ {} ]\n",
            t.def.name,
            t.def.column_names().join(" , ")
        ));
    }
    if fks {
        for fk in &db.schema.foreign_keys {
            out.push_str(&format!(
                "Foreign key: {}.{} = {}.{}\n",
                fk.from_table, fk.from_column, fk.to_table, fk.to_column
            ));
        }
    }
    if rows > 0 {
        for t in db.tables() {
            let anchor = most_relevant_row(t, question).unwrap_or(0);
            out.push_str(&format!("Rows of {}:\n", t.def.name));
            for i in anchor..(anchor + rows).min(t.len()) {
                let cells: Vec<String> = t.row(i).unwrap().iter().map(|v| v.render()).collect();
                out.push_str(&format!("( {} )\n", cells.join(" , ")));
            }
        }
    }
    out.trim_end().to_string()
}

fn table2nl(db: &Database) -> String {
    // A generated prose summary, in the style the paper obtains by asking
    // ChatGPT to "describe the tabular data in text".
    let mut out = format!(
        "The database \"{}\" covers the {} domain and contains {} table{}. ",
        db.name(),
        db.schema.domain,
        db.tables().len(),
        if db.tables().len() == 1 { "" } else { "s" }
    );
    for t in db.tables() {
        let cols = t.def.column_names().join(", ");
        out.push_str(&format!(
            "The table {} records {} entries and includes the fields {}. ",
            t.def.name,
            t.len(),
            cols
        ));
    }
    for fk in &db.schema.foreign_keys {
        out.push_str(&format!(
            "Each {} row refers to a {} row through {}. ",
            fk.from_table, fk.to_table, fk.from_column
        ));
    }
    out.trim_end().to_string()
}

fn chat2vis(db: &Database) -> String {
    // Chat2Vis builds, per table, a description enumerating each column with
    // its data type (Maddigan & Susnjak 2023). No foreign-key information.
    let mut out = String::new();
    for t in db.tables() {
        out.push_str(&format!(
            "Use a dataframe called {} with columns {}. ",
            t.def.name,
            t.def.column_names().join(", ")
        ));
        for c in &t.def.columns {
            out.push_str(&format!(
                "The column '{}' has data type {}. ",
                c.name,
                c.dtype.name()
            ));
        }
        out.push('\n');
    }
    out.trim_end().to_string()
}

fn table2json(db: &Database, question: &str) -> String {
    let tables: Vec<Json> = db
        .tables()
        .iter()
        .map(|t| {
            let columns: Vec<Json> = t
                .def
                .columns
                .iter()
                .map(|c| {
                    Json::object(vec![
                        ("name", Json::from(c.name.as_str())),
                        ("type", Json::from(c.dtype.name())),
                    ])
                })
                .collect();
            let mut obj = vec![
                ("name", Json::from(t.def.name.as_str())),
                ("columns", Json::Array(columns)),
            ];
            if let Some(pk) = t.def.primary_key {
                obj.push(("primary_key", Json::from(t.def.columns[pk].name.as_str())));
            }
            if let Some(i) = most_relevant_row(t, question) {
                let row: Vec<Json> = t.row(i).unwrap().iter().map(Json::from).collect();
                obj.push(("sample_row", Json::Array(row)));
            }
            Json::object(obj)
        })
        .collect();
    let fks: Vec<Json> = db
        .schema
        .foreign_keys
        .iter()
        .map(|fk| {
            Json::object(vec![
                (
                    "from",
                    Json::from(format!("{}.{}", fk.from_table, fk.from_column).as_str()),
                ),
                (
                    "to",
                    Json::from(format!("{}.{}", fk.to_table, fk.to_column).as_str()),
                ),
            ])
        })
        .collect();
    Json::object(vec![
        ("database", Json::from(db.name())),
        ("tables", Json::Array(tables)),
        ("foreign_keys", Json::Array(fks)),
    ])
    .to_pretty()
}

fn table2csv(db: &Database, question: &str) -> String {
    let mut out = String::new();
    for t in db.tables() {
        out.push_str(&format!("# table: {}\n", t.def.name));
        let mut rows: Vec<Vec<String>> =
            vec![t.def.column_names().iter().map(|s| s.to_string()).collect()];
        if let Some(i) = most_relevant_row(t, question) {
            rows.push(t.row(i).unwrap().iter().map(|v| v.render()).collect());
        }
        out.push_str(&csv::write_rows(&rows));
        out.push('\n');
    }
    out.trim_end().to_string()
}

fn table2md(db: &Database, question: &str) -> String {
    let mut out = String::new();
    for t in db.tables() {
        out.push_str(&format!("### {}\n", t.def.name));
        out.push_str(&format!("| {} |\n", t.def.column_names().join(" | ")));
        out.push_str(&format!("|{}\n", " --- |".repeat(t.def.columns.len())));
        if let Some(i) = most_relevant_row(t, question) {
            let cells: Vec<String> = t.row(i).unwrap().iter().map(|v| v.render()).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
    }
    out.trim_end().to_string()
}

fn table2xml(db: &Database, question: &str) -> String {
    let mut out = format!("<database name=\"{}\">\n", db.name());
    for t in db.tables() {
        out.push_str(&format!("  <table name=\"{}\">\n", t.def.name));
        for (i, c) in t.def.columns.iter().enumerate() {
            let pk = if t.def.primary_key == Some(i) {
                " key=\"primary\""
            } else {
                ""
            };
            out.push_str(&format!(
                "    <column name=\"{}\" type=\"{}\"{pk}/>\n",
                c.name,
                c.dtype.name()
            ));
        }
        if let Some(i) = most_relevant_row(t, question) {
            out.push_str("    <row>");
            for (c, v) in t.def.columns.iter().zip(t.row(i).unwrap()) {
                out.push_str(&format!(
                    "<{}>{}</{}>",
                    c.name,
                    xml_escape(&v.render()),
                    c.name
                ));
            }
            out.push_str("</row>\n");
        }
        out.push_str("  </table>\n");
    }
    for fk in &db.schema.foreign_keys {
        out.push_str(&format!(
            "  <foreign_key from=\"{}.{}\" to=\"{}.{}\"/>\n",
            fk.from_table, fk.from_column, fk.to_table, fk.to_column
        ));
    }
    out.push_str("</database>");
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn table2sql(db: &Database, select_rows: usize, question: &str) -> String {
    let mut out = String::new();
    for t in db.tables() {
        out.push_str(&format!("CREATE TABLE {} (\n", t.def.name));
        let mut lines = Vec::new();
        for (i, c) in t.def.columns.iter().enumerate() {
            let pk = if t.def.primary_key == Some(i) {
                " PRIMARY KEY"
            } else {
                ""
            };
            lines.push(format!("  {} {}{pk}", c.name, c.dtype.sql_name()));
        }
        for fk in &db.schema.foreign_keys {
            if fk.from_table.eq_ignore_ascii_case(&t.def.name) {
                lines.push(format!(
                    "  FOREIGN KEY ({}) REFERENCES {}({})",
                    fk.from_column, fk.to_table, fk.to_column
                ));
            }
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n);\n");
    }
    if select_rows > 0 {
        for t in db.tables() {
            out.push_str(&format!(
                "-- SELECT * FROM {} LIMIT {select_rows};\n",
                t.def.name
            ));
            let anchor = most_relevant_row(t, question).unwrap_or(0);
            // Anchor window: the most relevant row plus its successors.
            let start = anchor.min(t.len().saturating_sub(select_rows));
            for row in &t.rows()[start..(start + select_rows).min(t.len())] {
                let cells: Vec<String> = row.iter().map(|v| v.render()).collect();
                out.push_str(&format!("-- {}\n", cells.join(" | ")));
            }
        }
    }
    out.trim_end().to_string()
}

fn table2code(db: &Database) -> String {
    // Python class-based representation with type hints (§3.2.D): classes for
    // each table, attributes with type hints, and explicit key objects.
    let mut out = String::from("import datetime\nfrom dataclasses import dataclass\n\n");
    for t in db.tables() {
        out.push_str(&format!("@dataclass\nclass {}:\n", pascal(&t.def.name)));
        out.push_str(&format!(
            "    \"\"\"Table {} of database {}.\"\"\"\n",
            t.def.name,
            db.name()
        ));
        for (i, c) in t.def.columns.iter().enumerate() {
            let marker = if t.def.primary_key == Some(i) {
                "  # primary key"
            } else {
                ""
            };
            out.push_str(&format!(
                "    {}: {}{marker}\n",
                c.name,
                c.dtype.python_name()
            ));
        }
        out.push('\n');
    }
    for fk in &db.schema.foreign_keys {
        out.push_str(&format!(
            "ForeignKey(source={}.{}, target={}.{})\n",
            pascal(&fk.from_table),
            fk.from_column,
            pascal(&fk.to_table),
            fk.to_column
        ));
    }
    out.trim_end().to_string()
}

fn pascal(ident: &str) -> String {
    nl2vis_data::text::split_identifier(ident)
        .iter()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::domains::all_domains;
    use nl2vis_corpus::generate::instantiate;
    use nl2vis_data::Rng;

    fn db() -> Database {
        instantiate(&all_domains()[0], 0, &mut Rng::new(2))
    }

    #[test]
    fn all_formats_produce_output() {
        let d = db();
        for f in PromptFormat::all() {
            let s = f.serialize(&d, "count technicians per team");
            assert!(!s.is_empty(), "{f} empty");
            assert!(
                s.contains("technician") || s.contains("Technician"),
                "{f}: {s}"
            );
        }
    }

    #[test]
    fn schema_flat_does_not_attribute_columns() {
        let d = db();
        let s = PromptFormat::Schema.serialize(&d, "");
        // One global column list, not per-table groupings.
        assert!(s.contains("Columns: "));
        assert!(!s.contains("technician ("));
        assert!(!PromptFormat::Schema.attributes_columns());
    }

    #[test]
    fn sql_has_ddl_with_keys() {
        let d = db();
        let s = PromptFormat::Table2Sql.serialize(&d, "");
        assert!(s.contains("CREATE TABLE technician"));
        assert!(s.contains("PRIMARY KEY"));
        assert!(s.contains("FOREIGN KEY (tech_id) REFERENCES technician(tech_id)"));
        assert!(s.contains("REAL") && s.contains("TEXT") && s.contains("DATE"));
    }

    #[test]
    fn sql_select_appends_rows() {
        let d = db();
        let s = PromptFormat::Table2SqlSelect.serialize(&d, "technicians in NYY");
        assert!(s.contains("SELECT * FROM technician LIMIT 3"));
        assert!(s.matches("-- ").count() >= 4);
    }

    #[test]
    fn json_parses_and_carries_structure() {
        let d = db();
        let s = PromptFormat::Table2Json.serialize(&d, "salary by team");
        let j = Json::parse(&s).unwrap();
        let tables = j.get("tables").and_then(Json::as_array).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].get("primary_key").is_some());
        assert!(tables[0].get("sample_row").is_some());
        assert!(!j
            .get("foreign_keys")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn xml_structure() {
        let d = db();
        let s = PromptFormat::Table2Xml.serialize(&d, "");
        assert!(s.starts_with("<database"));
        assert!(s.contains("<column name=\"team\" type=\"text\"/>"));
        assert!(s.contains("key=\"primary\""));
        assert!(s.contains("<foreign_key"));
        assert!(s.ends_with("</database>"));
    }

    #[test]
    fn markdown_and_csv_have_headers_and_a_row() {
        let d = db();
        let md = PromptFormat::Table2Md.serialize(&d, "");
        assert!(md.contains("### technician"));
        assert!(md.contains("| tech_id | name |") || md.contains("| tech_id |"));
        let c = PromptFormat::Table2Csv.serialize(&d, "");
        assert!(c.contains("# table: technician"));
        assert!(c.contains("tech_id,name,team"));
    }

    #[test]
    fn code_has_classes_and_hints() {
        let d = db();
        let s = PromptFormat::Table2Code.serialize(&d, "");
        assert!(s.contains("class Technician:"));
        assert!(s.contains("salary: float"));
        assert!(s.contains("# primary key"));
        assert!(s.contains("ForeignKey(source=Machine.tech_id, target=Technician.tech_id)"));
    }

    #[test]
    fn relevant_row_selection_prefers_mentioned_values() {
        let d = db();
        let t = d.table("technician").unwrap();
        // Find a name that exists and ask about it.
        let name = t.row(3).unwrap()[1].render();
        let idx = most_relevant_row(t, &format!("what is the salary of {name}")).unwrap();
        assert_eq!(t.row(idx).unwrap()[1].render(), name);
    }

    #[test]
    fn token_costs_ordered_sensibly() {
        let d = db();
        let q = "count technicians per team";
        let schema = PromptFormat::Schema.token_cost(&d, q);
        let sql = PromptFormat::Table2Sql.token_cost(&d, q);
        let code = PromptFormat::Table2Code.token_cost(&d, q);
        assert!(schema < sql, "schema {schema} < sql {sql}");
        assert!(sql < code, "sql {sql} < code {code}");
    }

    #[test]
    fn metadata_flags_consistent() {
        assert!(PromptFormat::Table2Sql.carries_fks());
        assert!(PromptFormat::Table2Sql.carries_types());
        assert!(!PromptFormat::Chat2Vis.carries_fks());
        assert!(PromptFormat::Chat2Vis.carries_types());
        assert!(!PromptFormat::ColumnList.carries_types());
        assert!(PromptFormat::ColumnListFk.carries_fks());
    }

    #[test]
    fn nl_summary_mentions_every_table_and_fk() {
        let d = db();
        let s = PromptFormat::Table2Nl.serialize(&d, "");
        assert!(s.contains("The table technician"));
        assert!(s.contains("The table machine"));
        assert!(s.contains("refers to a technician row"));
    }
}
