//! In-context-learning prompt assembly (Figure 2 of the paper).
//!
//! A prompt consists of a task instruction, `k` demonstration examples (each
//! a serialized table, a question, optionally a chain-of-thought sketch, and
//! the gold VQL), and the test item (serialized table + question).
//!
//! The builder enforces a **token budget** mirroring the LLM context window:
//! demonstrations are included most-relevant-first until the budget is
//! exhausted. Verbose serialization formats therefore fit fewer effective
//! shots — the mechanism behind several of Table 2's orderings.

use crate::serialize::PromptFormat;
use nl2vis_corpus::Example;
use nl2vis_data::text::approx_token_count;
use nl2vis_data::Database;
use nl2vis_query::printer::{print, print_sketch};

/// Marker introducing each demonstration block.
pub const EXAMPLE_MARKER: &str = "-- Example:";
/// Marker introducing the test block.
pub const TEST_MARKER: &str = "-- Test:";
/// Marker introducing a serialized database.
pub const DATABASE_MARKER: &str = "-- Database:";

/// The output formalism the prompt requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnswerFormat {
    /// The flat VQL intermediate (the paper's default).
    #[default]
    Vql,
    /// Direct Vega-Lite JSON (the paper's §6.2 direct-generation setting).
    VegaLite,
}

/// Options for prompt construction.
#[derive(Debug, Clone)]
pub struct PromptOptions {
    /// Serialization strategy for tables.
    pub format: PromptFormat,
    /// The output formalism demonstrations show and the cue requests.
    pub answer: AnswerFormat,
    /// Token budget for the whole prompt (GPT-3.5-era completion models had
    /// ~4k; `gpt-3.5-turbo-16k` had 16k).
    pub token_budget: usize,
    /// Add chain-of-thought sketches to demonstrations and ask for one.
    pub chain_of_thought: bool,
    /// Prepend the role-playing persona line.
    pub role_play: bool,
}

impl Default for PromptOptions {
    fn default() -> PromptOptions {
        PromptOptions {
            format: PromptFormat::Table2Sql,
            answer: AnswerFormat::Vql,
            token_budget: 4096,
            chain_of_thought: false,
            role_play: false,
        }
    }
}

/// An assembled prompt.
#[derive(Debug, Clone)]
pub struct Prompt {
    /// The full prompt text handed to the model.
    pub text: String,
    /// How many demonstrations actually fit the budget.
    pub included_demos: usize,
    /// How many were requested.
    pub requested_demos: usize,
    /// The serialization format used.
    pub format: PromptFormat,
    /// Approximate token length of `text`.
    pub tokens: usize,
}

/// Builds an ICL prompt for a test question over `test_db`, with
/// demonstrations resolved against their own databases via `db_of`.
pub fn build_prompt<'a, F>(
    options: &PromptOptions,
    test_db: &Database,
    question: &str,
    demos: &[&'a Example],
    db_of: F,
) -> Prompt
where
    F: Fn(&'a Example) -> &'a Database,
{
    let mut head = String::new();
    if options.role_play {
        head.push_str("You are a data visualization assistant.\n");
    }
    head.push_str(
        "-- Task: Translate the natural-language question into a VQL visualization query \
         grounded on the given database.\n",
    );
    if options.chain_of_thought {
        head.push_str(
            "-- Let's think step by step. Generate the sketch as an intermediate \
             representation and then the final VQL.\n",
        );
    }

    let mut tail = String::new();
    tail.push_str(TEST_MARKER);
    tail.push('\n');
    tail.push_str(DATABASE_MARKER);
    tail.push('\n');
    tail.push_str(&options.format.serialize(test_db, question));
    tail.push('\n');
    tail.push_str(&format!("Q: {question}\n"));
    if options.chain_of_thought {
        tail.push_str("Sketch:");
    } else {
        tail.push_str(match options.answer {
            AnswerFormat::Vql => "VQL:",
            AnswerFormat::VegaLite => "VL:",
        });
    }

    let fixed_tokens = approx_token_count(&head) + approx_token_count(&tail);
    let mut remaining = options.token_budget.saturating_sub(fixed_tokens);

    let mut demo_blocks = Vec::new();
    for demo in demos {
        let block = render_demo(options, demo, db_of(demo));
        let cost = approx_token_count(&block);
        if cost > remaining {
            break;
        }
        remaining -= cost;
        demo_blocks.push(block);
    }

    let included = demo_blocks.len();
    let mut text = head;
    for b in &demo_blocks {
        text.push_str(b);
    }
    text.push_str(&tail);
    let tokens = approx_token_count(&text);
    Prompt {
        text,
        included_demos: included,
        requested_demos: demos.len(),
        format: options.format,
        tokens,
    }
}

fn render_demo(options: &PromptOptions, demo: &Example, db: &Database) -> String {
    let mut out = String::new();
    out.push_str(EXAMPLE_MARKER);
    out.push('\n');
    out.push_str(DATABASE_MARKER);
    out.push('\n');
    out.push_str(&options.format.serialize(db, &demo.nl));
    out.push('\n');
    out.push_str(&format!("Q: {}\n", demo.nl));
    if options.chain_of_thought {
        out.push_str(&format!("Sketch: {}\n", print_sketch(&demo.vql)));
    }
    match options.answer {
        AnswerFormat::Vql => out.push_str(&format!("VQL: {}\n", print(&demo.vql))),
        AnswerFormat::VegaLite => out.push_str(&format!(
            "VL: {}\n",
            nl2vis_vega::spec::to_vega_lite_named(&demo.vql).to_compact()
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::{Corpus, CorpusConfig};

    fn fixture() -> Corpus {
        Corpus::build(&CorpusConfig::small(13))
    }

    #[test]
    fn prompt_contains_sections() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(2).collect();
        let p = build_prompt(&PromptOptions::default(), db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert!(p.text.starts_with("-- Task:"));
        assert_eq!(p.text.matches(EXAMPLE_MARKER).count(), 2);
        assert!(p.text.contains(TEST_MARKER));
        assert!(p.text.trim_end().ends_with("VQL:"));
        assert_eq!(p.included_demos, 2);
    }

    #[test]
    fn budget_limits_demos() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(10).collect();
        let tight = PromptOptions {
            token_budget: 600,
            ..Default::default()
        };
        let p = build_prompt(&tight, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert!(p.included_demos < 10, "tight budget must drop demos");
        let generous = PromptOptions {
            token_budget: 100_000,
            ..Default::default()
        };
        let p2 = build_prompt(&generous, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert_eq!(p2.included_demos, 10);
        assert!(p2.tokens > p.tokens);
    }

    #[test]
    fn verbose_formats_fit_fewer_demos() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(12).collect();
        let fit = |format: PromptFormat| {
            let o = PromptOptions {
                format,
                token_budget: 2500,
                ..Default::default()
            };
            build_prompt(&o, db, &e.nl, &demos, |d| {
                c.catalog.database(&d.db).unwrap()
            })
            .included_demos
        };
        assert!(
            fit(PromptFormat::TableColumn) >= fit(PromptFormat::Table2Code),
            "concise formats fit at least as many demos"
        );
    }

    #[test]
    fn cot_adds_sketches() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(1).collect();
        let o = PromptOptions {
            chain_of_thought: true,
            ..Default::default()
        };
        let p = build_prompt(&o, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert!(p.text.contains("Sketch: VISUALIZE["));
        assert!(p.text.contains("step by step"));
        assert!(p.text.trim_end().ends_with("Sketch:"));
    }

    #[test]
    fn role_play_prefixes_persona() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let o = PromptOptions {
            role_play: true,
            ..Default::default()
        };
        let p = build_prompt(&o, db, &e.nl, &[], |d| c.catalog.database(&d.db).unwrap());
        assert!(p
            .text
            .starts_with("You are a data visualization assistant."));
    }

    #[test]
    fn vega_answer_format_changes_cue_and_demos() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(1).collect();
        let o = PromptOptions {
            answer: AnswerFormat::VegaLite,
            token_budget: 50_000,
            ..Default::default()
        };
        let p = build_prompt(&o, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert!(
            p.text.trim_end().ends_with("VL:"),
            "cue should request Vega-Lite"
        );
        assert!(
            p.text.contains("VL: {"),
            "demo answers should be JSON specs"
        );
        assert!(!p.text.contains("VQL: VISUALIZE"));
    }

    #[test]
    fn zero_shot_has_no_examples() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let p = build_prompt(&PromptOptions::default(), db, &e.nl, &[], |d| {
            c.catalog.database(&d.db).unwrap()
        });
        assert_eq!(p.included_demos, 0);
        assert!(!p.text.contains(EXAMPLE_MARKER));
    }
}
