//! VQL query synthesis: generating gold visualization queries over a
//! database, stratified by the nvBench hardness taxonomy
//! (easy / medium / hard / extra hard) and by join vs non-join scenario.
//!
//! Synthesis is data-aware: filter literals are drawn from actual column
//! values so that gold queries execute to non-empty results, making the
//! Execution-Accuracy metric meaningful.

use nl2vis_data::value::{DataType, Value};
use nl2vis_data::{Database, Rng, Table};
use nl2vis_query::ast::*;
use nl2vis_query::execute;
use std::fmt;

/// nvBench hardness levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hardness {
    /// Core skeleton only (optionally grouped).
    Easy,
    /// One extra operator (filter or order).
    Medium,
    /// Several extra operators, or a join, or a color series, or a bin.
    Hard,
    /// Joins with compound filters, or nested subqueries.
    Extra,
}

impl Hardness {
    /// All levels, easy first.
    pub fn all() -> [Hardness; 4] {
        [
            Hardness::Easy,
            Hardness::Medium,
            Hardness::Hard,
            Hardness::Extra,
        ]
    }

    /// Display label matching the paper ("easy", "medium", "hard", "extra hard").
    pub fn label(self) -> &'static str {
        match self {
            Hardness::Easy => "easy",
            Hardness::Medium => "medium",
            Hardness::Hard => "hard",
            Hardness::Extra => "extra hard",
        }
    }
}

impl fmt::Display for Hardness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The inferred synthesis role of a column (derived from the schema and the
/// data rather than the domain template, so synthesis works on any database).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Key column (`*_id`): never an axis.
    Id,
    /// Low-cardinality text/bool: x axis for bar/pie, color series, filters.
    Category,
    /// High-cardinality text: x axis for counting entities.
    Label,
    /// Numeric: y measure (SUM/AVG), scatter axes, range filters.
    Measure,
    /// Date: binned x axis, range filters.
    Temporal,
}

/// Infers the role of every column of a table.
pub fn column_roles(table: &Table) -> Vec<Role> {
    table
        .def
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if c.name.ends_with("_id") || c.name == "id" {
                Role::Id
            } else {
                match c.dtype {
                    DataType::Date => Role::Temporal,
                    DataType::Int | DataType::Float => Role::Measure,
                    DataType::Bool => Role::Category,
                    DataType::Text => {
                        let distinct = table.distinct_values(i).len();
                        if distinct <= 12 || distinct * 2 <= table.len() {
                            Role::Category
                        } else {
                            Role::Label
                        }
                    }
                }
            }
        })
        .collect()
}

/// Synthesizes one gold query of the requested hardness over the database.
/// Returns `None` when the database lacks the material (e.g. `Extra` needs a
/// foreign key for the join/subquery patterns) or when several attempts all
/// execute to empty results.
pub fn synthesize(db: &Database, hardness: Hardness, rng: &mut Rng) -> Option<VqlQuery> {
    for _ in 0..24 {
        if let Some(q) = try_synthesize(db, hardness, rng) {
            if let Ok(result) = execute(&q, db) {
                if !result.rows.is_empty() && result.rows.len() <= 60 {
                    return Some(q);
                }
            }
        }
    }
    None
}

fn try_synthesize(db: &Database, hardness: Hardness, rng: &mut Rng) -> Option<VqlQuery> {
    let want_join = match hardness {
        Hardness::Easy => false,
        Hardness::Medium => rng.chance(0.15),
        Hardness::Hard => rng.chance(0.5),
        Hardness::Extra => rng.chance(0.6),
    } && !db.schema.foreign_keys.is_empty();

    let (main, joined, join_clause) = if want_join {
        let fk = rng.pick(&db.schema.foreign_keys).clone();
        // FROM the referencing table, JOIN the referenced one.
        let main = db.table(&fk.from_table).ok()?;
        let joined = db.table(&fk.to_table).ok()?;
        let join = Join {
            table: fk.to_table.clone(),
            left: ColumnRef::qualified(fk.from_table.clone(), fk.from_column.clone()),
            right: ColumnRef::qualified(fk.to_table.clone(), fk.to_column.clone()),
        };
        (main, Some(joined), Some(join))
    } else {
        let tables = db.tables();
        let main = &tables[rng.below_usize(tables.len())];
        (main, None, None)
    };

    // Collect usable columns across the in-scope tables, qualified when a
    // join is present.
    let mut columns: Vec<(ColumnRef, Role, DataType, usize, usize)> = Vec::new();
    let sources: Vec<&Table> = std::iter::once(main).chain(joined).collect();
    for (si, t) in sources.iter().enumerate() {
        let roles = column_roles(t);
        for (ci, c) in t.def.columns.iter().enumerate() {
            let col = if join_clause.is_some() {
                ColumnRef::qualified(t.def.name.clone(), c.name.clone())
            } else {
                ColumnRef::new(c.name.clone())
            };
            columns.push((col, roles[ci], c.dtype, si, ci));
        }
    }

    let cats: Vec<_> = columns
        .iter()
        .filter(|(_, r, ..)| matches!(r, Role::Category | Role::Label))
        .collect();
    let measures: Vec<_> = columns
        .iter()
        .filter(|(_, r, ..)| *r == Role::Measure)
        .collect();
    let temporals: Vec<_> = columns
        .iter()
        .filter(|(_, r, ..)| *r == Role::Temporal)
        .collect();

    // Pick a chart pattern supported by the available columns.
    #[derive(Clone, Copy, PartialEq)]
    enum Pattern {
        CatAgg,  // bar/pie over a categorical x
        TimeAgg, // line over a binned temporal x
        Scatter, // numeric vs numeric
    }
    let mut patterns = Vec::new();
    if !cats.is_empty() {
        patterns.push(Pattern::CatAgg);
        patterns.push(Pattern::CatAgg); // weight categorical higher, as in nvBench
    }
    if !temporals.is_empty() {
        patterns.push(Pattern::TimeAgg);
    }
    if measures.len() >= 2 {
        patterns.push(Pattern::Scatter);
    }
    if patterns.is_empty() {
        return None;
    }
    let pattern = *rng.pick(&patterns);

    let mut bin = None;
    let (chart, x, y) = match pattern {
        Pattern::CatAgg => {
            let xcol = rng.pick(&cats).0.clone();
            let chart = if rng.chance(0.25) {
                ChartType::Pie
            } else {
                ChartType::Bar
            };
            let y = pick_aggregate(&xcol, &measures, rng);
            (chart, SelectExpr::Column(xcol), y)
        }
        Pattern::TimeAgg => {
            let xcol = rng.pick(&temporals).0.clone();
            let unit = *rng.pick(&[
                BinUnit::Year,
                BinUnit::Month,
                BinUnit::Weekday,
                BinUnit::Quarter,
            ]);
            bin = Some(Bin {
                column: xcol.clone(),
                unit,
            });
            let chart = if rng.chance(0.7) {
                ChartType::Line
            } else {
                ChartType::Bar
            };
            let y = pick_aggregate(&xcol, &measures, rng);
            (chart, SelectExpr::Column(xcol), y)
        }
        Pattern::Scatter => {
            let idx = rng.sample_indices(measures.len(), 2);
            let xcol = measures[idx[0]].0.clone();
            let ycol = measures[idx[1]].0.clone();
            (
                ChartType::Scatter,
                SelectExpr::Column(xcol),
                SelectExpr::Column(ycol),
            )
        }
    };

    let mut q = VqlQuery::new(chart, x, y, main.def.name.clone());
    q.join = join_clause;
    q.bin = bin;

    // Aggregated categorical/temporal charts carry an explicit GROUP BY.
    if q.y.is_aggregate() {
        if let Some(xc) = q.x.column() {
            q.group_by.push(xc.clone());
        }
    }

    // Color series: a second categorical column, only for hard+ bar/scatter.
    if matches!(hardness, Hardness::Hard | Hardness::Extra)
        && rng.chance(0.35)
        && matches!(q.chart, ChartType::Bar | ChartType::Scatter)
    {
        let x_name = q.x.column().map(|c| c.column.clone()).unwrap_or_default();
        let color_candidates: Vec<_> = columns
            .iter()
            .filter(|(c, r, _, si, ci)| {
                *r == Role::Category && c.column != x_name && {
                    sources[*si].distinct_values(*ci).len() <= 6
                }
            })
            .collect();
        if !color_candidates.is_empty() {
            let c = rng.pick(&color_candidates).0.clone();
            if q.group_by.is_empty() {
                if let Some(xc) = q.x.column() {
                    q.group_by.push(xc.clone());
                }
            }
            if !q.group_by.is_empty() {
                q.group_by.push(c);
            }
        }
    }

    // Filters.
    let n_atoms = match hardness {
        Hardness::Easy => 0,
        Hardness::Medium => usize::from(rng.chance(0.7)),
        Hardness::Hard => 1,
        Hardness::Extra => 2,
    };
    if n_atoms > 0 {
        let subquery_case = hardness == Hardness::Extra
            && rng.chance(0.4)
            && !db.schema.foreign_keys.is_empty()
            && q.join.is_none();
        if subquery_case {
            q.filter = make_subquery_filter(db, main, rng);
        }
        if q.filter.is_none() {
            let mut atoms = Vec::new();
            for _ in 0..n_atoms {
                if let Some(a) = make_atom(&columns, &sources, rng) {
                    atoms.push(a);
                }
            }
            q.filter = combine_atoms(atoms, rng);
        }
        if q.filter.is_none() && hardness != Hardness::Medium {
            return None;
        }
    }

    // Ordering.
    let want_order = match hardness {
        Hardness::Easy => false,
        Hardness::Medium => q.filter.is_none() || rng.chance(0.3),
        Hardness::Hard | Hardness::Extra => rng.chance(0.6),
    };
    if want_order && q.chart != ChartType::Pie {
        let target = if q.y.is_aggregate() && rng.chance(0.4) {
            OrderTarget::Y
        } else if let Some(xc) = q.x.column() {
            OrderTarget::Column(xc.clone())
        } else {
            OrderTarget::X
        };
        let dir = if rng.chance(0.6) {
            SortDir::Asc
        } else {
            SortDir::Desc
        };
        q.order = Some(OrderBy { target, dir });
    }

    Some(q)
}

fn pick_aggregate(
    xcol: &ColumnRef,
    measures: &[&(ColumnRef, Role, DataType, usize, usize)],
    rng: &mut Rng,
) -> SelectExpr {
    // Measures from a different column than x.
    let usable: Vec<_> = measures
        .iter()
        .filter(|(c, ..)| c.column != xcol.column)
        .collect();
    if !usable.is_empty() && rng.chance(0.45) {
        #[allow(clippy::explicit_auto_deref)] // clippy's suggestion does not typecheck here
        let picked: &(ColumnRef, Role, DataType, usize, usize) = **rng.pick(&usable);
        let (m, dtype) = (picked.0.clone(), picked.2);
        let funcs: &[AggFunc] = if dtype.is_numeric() {
            &[AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min]
        } else {
            &[AggFunc::Count]
        };
        SelectExpr::Agg {
            func: *rng.pick(funcs),
            arg: Some(m),
        }
    } else {
        SelectExpr::Agg {
            func: AggFunc::Count,
            arg: Some(xcol.clone()),
        }
    }
}

fn make_atom(
    columns: &[(ColumnRef, Role, DataType, usize, usize)],
    sources: &[&Table],
    rng: &mut Rng,
) -> Option<Predicate> {
    let filterable: Vec<_> = columns
        .iter()
        .filter(|(_, r, ..)| matches!(r, Role::Category | Role::Measure | Role::Temporal))
        .collect();
    if filterable.is_empty() {
        return None;
    }
    #[allow(clippy::explicit_auto_deref)] // clippy's suggestion does not typecheck here
    let picked: &(ColumnRef, Role, DataType, usize, usize) = *rng.pick(&filterable);
    let (col, role, si, ci) = (picked.0.clone(), picked.1, picked.3, picked.4);
    let table = sources[si];
    let values = table.distinct_values(ci);
    if values.is_empty() {
        return None;
    }
    let (op, lit) = match role {
        Role::Category => {
            let v = rng.pick(&values).clone();
            let op = if rng.chance(0.75) {
                CmpOp::Eq
            } else {
                CmpOp::Ne
            };
            (op, value_to_literal(&v)?)
        }
        Role::Measure | Role::Temporal => {
            let mut sorted = values.clone();
            sorted.sort();
            // A literal near the 30th-70th percentile keeps results non-empty.
            let lo = sorted.len() * 3 / 10;
            let hi = (sorted.len() * 7 / 10).max(lo + 1).min(sorted.len());
            let v = sorted[lo + rng.below_usize(hi - lo)].clone();
            let op = *rng.pick(&[CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le]);
            (op, value_to_literal(&v)?)
        }
        _ => return None,
    };
    Some(Predicate::Cmp {
        col: col.clone(),
        op,
        value: lit,
    })
}

fn value_to_literal(v: &Value) -> Option<Literal> {
    Some(match v {
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Text(s) => Literal::Text(s.clone()),
        Value::Bool(b) => Literal::Bool(*b),
        Value::Date(d) => Literal::Date(*d),
        Value::Null => return None,
    })
}

fn combine_atoms(mut atoms: Vec<Predicate>, rng: &mut Rng) -> Option<Predicate> {
    let first = if atoms.is_empty() {
        return None;
    } else {
        atoms.remove(0)
    };
    let mut acc = first;
    for a in atoms {
        acc = if rng.chance(0.6) {
            Predicate::And(Box::new(acc), Box::new(a))
        } else {
            Predicate::Or(Box::new(acc), Box::new(a))
        };
    }
    Some(acc)
}

/// Builds `pk IN/NOT IN (SELECT fk FROM child [WHERE measure-cond])` when the
/// main table is referenced by a foreign key.
fn make_subquery_filter(db: &Database, main: &Table, rng: &mut Rng) -> Option<Predicate> {
    let fks: Vec<_> = db
        .schema
        .foreign_keys
        .iter()
        .filter(|fk| fk.to_table.eq_ignore_ascii_case(&main.def.name))
        .collect();
    if fks.is_empty() {
        return None;
    }
    let fk = *rng.pick(&fks);
    let child = db.table(&fk.from_table).ok()?;
    // Optional inner condition on a child measure.
    let inner = {
        let roles = column_roles(child);
        let candidates: Vec<usize> = (0..child.def.columns.len())
            .filter(|&i| roles[i] == Role::Measure)
            .collect();
        if candidates.is_empty() || rng.chance(0.4) {
            None
        } else {
            let ci = *rng.pick(&candidates);
            let mut values = child.distinct_values(ci);
            values.sort();
            if values.is_empty() {
                None
            } else {
                let v = values[values.len() / 2].clone();
                let lit = value_to_literal(&v)?;
                Some(Box::new(Predicate::Cmp {
                    col: ColumnRef::new(child.def.columns[ci].name.clone()),
                    op: *rng.pick(&[CmpOp::Gt, CmpOp::Lt]),
                    value: lit,
                }))
            }
        }
    };
    Some(Predicate::InSubquery {
        col: ColumnRef::new(fk.to_column.clone()),
        negated: rng.chance(0.4),
        subquery: SubQuery {
            select: ColumnRef::new(fk.from_column.clone()),
            from: fk.from_table.clone(),
            filter: inner,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::generate::instantiate;

    fn sample_db(seed: u64) -> Database {
        instantiate(&all_domains()[0], 0, &mut Rng::new(seed))
    }

    #[test]
    fn synthesizes_every_hardness() {
        let db = sample_db(5);
        let mut rng = Rng::new(9);
        for h in Hardness::all() {
            let q = synthesize(&db, h, &mut rng).unwrap_or_else(|| panic!("no query for {h}"));
            let r = execute(&q, &db).unwrap();
            assert!(!r.rows.is_empty());
        }
    }

    #[test]
    fn easy_queries_are_minimal() {
        let db = sample_db(6);
        let mut rng = Rng::new(10);
        for _ in 0..20 {
            let q = synthesize(&db, Hardness::Easy, &mut rng).unwrap();
            assert!(q.filter.is_none());
            assert!(q.order.is_none());
            assert!(q.join.is_none());
        }
    }

    #[test]
    fn extra_queries_are_complex() {
        let db = sample_db(7);
        let mut rng = Rng::new(11);
        let mut saw_join = false;
        let mut saw_subquery = false;
        let mut saw_two_atoms = false;
        for _ in 0..60 {
            let Some(q) = synthesize(&db, Hardness::Extra, &mut rng) else {
                continue;
            };
            saw_join |= q.join.is_some();
            if let Some(f) = &q.filter {
                saw_subquery |= f.has_subquery();
                saw_two_atoms |= f.atom_count() >= 2;
            }
        }
        assert!(saw_join, "extra hardness should sometimes join");
        assert!(saw_subquery, "extra hardness should sometimes nest");
        assert!(
            saw_two_atoms,
            "extra hardness should sometimes have compound filters"
        );
    }

    #[test]
    fn gold_queries_execute_nonempty_across_domains() {
        let mut rng = Rng::new(21);
        for spec in all_domains() {
            let db = instantiate(spec, 0, &mut rng);
            let mut qrng = rng.fork(1);
            let mut produced = 0;
            for h in Hardness::all() {
                if let Some(q) = synthesize(&db, h, &mut qrng) {
                    produced += 1;
                    let r = execute(&q, &db).unwrap();
                    assert!(!r.rows.is_empty(), "{}: {h}", spec.domain);
                }
            }
            assert!(
                produced >= 2,
                "domain {} produced too few queries",
                spec.domain
            );
        }
    }

    #[test]
    fn roles_inferred_sensibly() {
        let db = sample_db(8);
        let t = db.table("technician").unwrap();
        let roles = column_roles(t);
        assert_eq!(roles[0], Role::Id); // tech_id
        assert_eq!(roles[1], Role::Label); // name (high cardinality)
        assert_eq!(roles[2], Role::Category); // team
        assert_eq!(roles[3], Role::Measure); // age
        assert_eq!(roles[5], Role::Temporal); // hire_date
    }

    #[test]
    fn deterministic_given_seed() {
        let db = sample_db(5);
        let a = synthesize(&db, Hardness::Hard, &mut Rng::new(99));
        let b = synthesize(&db, Hardness::Hard, &mut Rng::new(99));
        assert_eq!(a, b);
    }
}
