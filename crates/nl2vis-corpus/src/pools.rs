//! Shared value pools and the global synonym dictionary.
//!
//! The pools feed the data generator (people names, cities, teams, …). The
//! synonym dictionary plays the role of *pretrained world knowledge*: the
//! corpus realizer draws user phrasings from it ("pay" for `salary`), and the
//! simulated inference-only LLMs consult it when linking natural language to
//! schema — exactly the generalization edge the paper attributes to LLM
//! pretraining. Trained baselines do **not** get the dictionary; they must
//! learn phrase↔column mappings from the training split, which is why they
//! collapse cross-domain (Table 3 of the paper).

/// First names used for person-like label columns.
pub const PERSON_NAMES: &[&str] = &[
    "Olivia",
    "Liam",
    "Emma",
    "Noah",
    "Ava",
    "Ethan",
    "Sophia",
    "Mason",
    "Isabella",
    "Logan",
    "Mia",
    "Lucas",
    "Amelia",
    "Jackson",
    "Harper",
    "Aiden",
    "Evelyn",
    "Carter",
    "Abigail",
    "Sebastian",
    "Emily",
    "Mateo",
    "Ella",
    "Daniel",
    "Scarlett",
    "Henry",
    "Grace",
    "Owen",
    "Chloe",
    "Wyatt",
    "Victoria",
    "Jack",
    "Riley",
    "Luke",
    "Aria",
    "Gabriel",
    "Lily",
    "Anthony",
    "Aubrey",
    "Isaac",
    "Zoey",
    "Grayson",
    "Penelope",
    "Julian",
    "Layla",
    "Levi",
    "Nora",
    "Christopher",
    "Camila",
    "Joshua",
];

/// City names for location columns.
pub const CITIES: &[&str] = &[
    "Springfield",
    "Riverton",
    "Lakewood",
    "Fairview",
    "Madison",
    "Georgetown",
    "Arlington",
    "Clinton",
    "Salem",
    "Bristol",
    "Dover",
    "Hudson",
    "Kingston",
    "Milton",
    "Newport",
    "Oxford",
    "Ashland",
    "Burlington",
    "Clayton",
    "Dayton",
    "Easton",
    "Franklin",
    "Greenville",
    "Hamilton",
];

/// Team codes for sports domains.
pub const TEAMS: &[&str] = &["NYY", "BOS", "LAD", "CHC", "ATL", "HOU", "SEA", "SFG"];

/// Academic departments.
pub const DEPARTMENTS: &[&str] = &[
    "Biology",
    "Chemistry",
    "Physics",
    "Mathematics",
    "History",
    "Economics",
    "Literature",
];

/// Product categories for retail domains.
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "Electronics",
    "Clothing",
    "Grocery",
    "Toys",
    "Furniture",
    "Sports",
    "Books",
];

/// Product names.
pub const PRODUCTS: &[&str] = &[
    "Widget",
    "Gadget",
    "Sprocket",
    "Gizmo",
    "Doohickey",
    "Contraption",
    "Apparatus",
    "Device",
    "Fixture",
    "Instrument",
    "Module",
    "Component",
    "Unit",
    "Kit",
    "Bundle",
    "Pack",
];

/// Airline codes.
pub const AIRLINES: &[&str] = &["UA", "DL", "AA", "SW", "JB", "AK"];

/// Music genres.
pub const GENRES: &[&str] = &[
    "Rock",
    "Pop",
    "Jazz",
    "Classical",
    "HipHop",
    "Country",
    "Folk",
];

/// Movie ratings.
pub const RATINGS: &[&str] = &["G", "PG", "PG13", "R"];

/// Cuisine types.
pub const CUISINES: &[&str] = &[
    "Italian", "Mexican", "Japanese", "Indian", "French", "Thai", "Greek",
];

/// Room types for hotels.
pub const ROOM_TYPES: &[&str] = &["Single", "Double", "Suite", "Deluxe"];

/// Account types for banking.
pub const ACCOUNT_TYPES: &[&str] = &["Checking", "Savings", "Credit", "Loan"];

/// Weather conditions.
pub const CONDITIONS: &[&str] = &["Sunny", "Cloudy", "Rain", "Snow", "Fog", "Storm"];

/// Vehicle makes.
pub const MAKES: &[&str] = &["Toyota", "Ford", "Honda", "BMW", "Tesla", "Volvo", "Kia"];

/// Medical specialties.
pub const SPECIALTIES: &[&str] = &[
    "Cardiology",
    "Neurology",
    "Pediatrics",
    "Oncology",
    "Radiology",
    "Surgery",
];

/// Book publishers.
pub const PUBLISHERS: &[&str] = &[
    "Acme Press",
    "Summit Books",
    "Harbor House",
    "Northstar",
    "Quill",
];

/// Payment methods.
pub const PAYMENT_METHODS: &[&str] = &["Cash", "Card", "Transfer", "Voucher"];

/// Job titles.
pub const JOB_TITLES: &[&str] = &[
    "Engineer",
    "Analyst",
    "Manager",
    "Designer",
    "Technician",
    "Director",
    "Clerk",
];

/// Countries.
pub const COUNTRIES: &[&str] = &[
    "USA",
    "Canada",
    "Mexico",
    "Brazil",
    "Germany",
    "France",
    "Japan",
    "Australia",
];

/// Severity/priority labels.
pub const PRIORITIES: &[&str] = &["Low", "Medium", "High", "Critical"];

/// The global phrase→identifier-word synonym dictionary ("world knowledge").
/// Each pair maps a word a user might say to the canonical word used in
/// schema identifiers.
pub const SYNONYMS: &[(&str, &str)] = &[
    ("pay", "salary"),
    ("wage", "salary"),
    ("earnings", "salary"),
    ("cost", "price"),
    ("fee", "price"),
    ("charge", "price"),
    ("revenue", "sales"),
    ("turnover", "sales"),
    ("client", "customer"),
    ("buyer", "customer"),
    ("shopper", "customer"),
    ("staff", "employee"),
    ("worker", "employee"),
    ("personnel", "employee"),
    ("division", "department"),
    ("unit", "department"),
    ("grade", "score"),
    ("mark", "score"),
    ("points", "score"),
    ("location", "city"),
    ("town", "city"),
    ("squad", "team"),
    ("club", "team"),
    ("side", "team"),
    ("earned", "amount"),
    ("sum", "amount"),
    ("quantity", "stock"),
    ("inventory", "stock"),
    ("age", "age"),
    ("born", "birth"),
    ("hired", "hire"),
    ("joined", "hire"),
    ("enrolled", "enroll"),
    ("capacity", "seats"),
    ("size", "capacity"),
    ("duration", "length"),
    ("runtime", "length"),
    ("title", "name"),
    ("label", "name"),
    ("kind", "type"),
    ("category", "type"),
    ("style", "genre"),
    ("rating", "rating"),
    ("stars", "rating"),
    ("physician", "doctor"),
    ("patients", "patient"),
    ("flight", "flight"),
    ("journey", "trip"),
    ("spending", "expense"),
    ("profit", "margin"),
    ("deposit", "balance"),
    ("funds", "balance"),
    ("temperature", "temp"),
    ("rainfall", "precipitation"),
    ("mileage", "miles"),
    ("distance", "miles"),
    // An alias may map to several canonical words; the schema context
    // disambiguates during linking ("grade" is a gpa at a college but a
    // score on an inspection report).
    ("worth", "value"),
    ("cost", "value"),
    ("cost", "fee"),
    ("cost", "rate"),
    ("price", "rate"),
    ("major", "department"),
    ("grade", "gpa"),
    ("field", "specialty"),
    ("charge", "fee"),
    ("emergency", "urgent"),
    ("kind", "category"),
    ("type", "category"),
    ("spending", "amount"),
    ("bought", "purchase"),
    ("carrier", "airline"),
    ("departure", "depart"),
    ("fare", "price"),
    ("cabin", "class"),
    ("musician", "artist"),
    ("released", "release"),
    ("movie", "film"),
    ("certificate", "rating"),
    ("revenue", "gross"),
    ("box", "gross"),
    ("office", "gross"),
    ("audience", "attendance"),
    ("eatery", "restaurant"),
    ("food", "cuisine"),
    ("rating", "stars"),
    ("inspected", "inspect"),
    ("press", "publisher"),
    ("length", "pages"),
    ("role", "job"),
    ("position", "job"),
    ("remotely", "remote"),
    ("funding", "budget"),
    ("effort", "hours"),
    ("owner", "holder"),
    ("opened", "open"),
    ("method", "channel"),
    ("rooms", "bedrooms"),
    ("asking", "price"),
    ("listed", "list"),
    ("realtor", "agent"),
    ("observed", "obs"),
    ("sky", "condition"),
    ("brand", "make"),
    ("manufacturer", "make"),
    ("sticker", "price"),
    ("ev", "electric"),
    ("sold", "sale"),
    ("rebate", "discount"),
    ("urgency", "priority"),
    ("shipped", "ship"),
    ("level", "floor"),
    ("stay", "nights"),
    ("check", "checkin"),
    ("source", "origin"),
    ("station", "plant"),
    ("source", "fuel"),
    ("size", "acres"),
    ("size", "capacity"),
    ("recorded", "read"),
    ("output", "yield"),
    ("production", "output"),
    ("tier", "plan"),
    ("signed", "signup"),
    ("joined", "signup"),
    ("duration", "minutes"),
    ("length", "minutes"),
    ("region", "county"),
    ("location", "county"),
    ("area", "acres"),
    ("produce", "crop"),
    ("harvested", "harvest"),
    ("gamer", "handle"),
    ("role", "main"),
    ("position", "main"),
    ("elo", "rating"),
    ("eliminations", "kills"),
    ("victory", "won"),
    ("played", "played"),
    ("exhibition", "exhibit"),
    ("hall", "wing"),
    ("section", "wing"),
    ("value", "insured"),
    ("worth", "insured"),
    ("visited", "visit"),
    ("attendance", "visitors"),
    ("audience", "visitors"),
    ("line", "route"),
    ("stations", "stops"),
    ("taken", "ride"),
    ("riders", "passengers"),
    ("fare", "fare"),
    ("coverage", "line"),
    ("price", "premium"),
    ("cost", "premium"),
    ("started", "start"),
    ("payout", "amount"),
    ("accepted", "approved"),
    ("shop", "shop"),
    ("store", "shop"),
    ("location", "country"),
    ("score", "stars"),
    ("reviewed", "review"),
    ("confirmed", "verified"),
    ("abroad", "international"),
    ("average", "avg"),
    ("line", "coverage"),
    ("business", "coverage"),
    ("revenue", "fare"),
    ("vehicle", "mode"),
    ("client", "subscriber"),
    ("published", "publish"),
];

/// Looks up the canonical identifier word for a phrase word, or echoes the
/// word back when it has no entry.
pub fn canonical_word(word: &str) -> &str {
    let lower = word.to_ascii_lowercase();
    SYNONYMS
        .iter()
        .find(|(alias, _)| *alias == lower)
        .map(|(_, canonical)| *canonical)
        .unwrap_or_else(|| {
            // Return a static reference by locating the word in SYNONYMS'
            // canonical side if present; otherwise the caller keeps the word.
            SYNONYMS
                .iter()
                .find(|(_, c)| *c == lower)
                .map(|(_, c)| *c)
                .unwrap_or("")
        })
}

/// All alias words that map to the given canonical word.
pub fn aliases_of(canonical: &str) -> Vec<&'static str> {
    SYNONYMS
        .iter()
        .filter(|(_, c)| *c == canonical)
        .map(|(a, _)| *a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_nonempty_and_unique() {
        for pool in [PERSON_NAMES, CITIES, TEAMS, PRODUCTS, GENRES] {
            assert!(!pool.is_empty());
            let mut v: Vec<_> = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "pool has duplicates");
        }
    }

    #[test]
    fn canonical_lookup() {
        assert_eq!(canonical_word("pay"), "salary");
        assert_eq!(canonical_word("WAGE"), "salary");
        assert_eq!(canonical_word("salary"), "salary");
        assert_eq!(canonical_word("zebra"), "");
    }

    #[test]
    fn aliases_inverse() {
        let a = aliases_of("salary");
        assert!(a.contains(&"pay"));
        assert!(a.contains(&"wage"));
        assert!(aliases_of("nonexistent").is_empty());
    }
}
