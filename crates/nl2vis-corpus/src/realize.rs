//! Natural-language realization: turning a gold VQL query into the kind of
//! utterance a user would type.
//!
//! Realization follows nvBench's synthesis recipe: pattern templates with
//! lexical variation. Column mentions alternate between the identifier's own
//! words ("hire date") and a synonym from the alias bank ("joined") so that
//! literal string matching is insufficient and real schema linking (or
//! learned lexicons) is required — the property that separates the paper's
//! model families.

use nl2vis_data::text::split_identifier;
use nl2vis_data::{Database, Rng};
use nl2vis_query::ast::*;

/// Realizes a query as a natural-language request. Two sentence families
/// alternate, as users phrase requests both ways:
///
/// 1. `"Show a bar chart of the number of technicians for each team ..."`
/// 2. `"For each team, show a bar chart of the number of technicians ..."`
pub fn realize(q: &VqlQuery, db: &Database, rng: &mut Rng) -> String {
    let mut parts: Vec<String> = Vec::new();

    // Family 2 leads with the grouping phrase; it needs an x column and the
    // "against" form of plain scatters doesn't fit it.
    let group_first = rng.chance(0.25)
        && q.x.column().is_some()
        && (q.chart != ChartType::Scatter || q.y.is_aggregate());

    if group_first {
        let xc = q.x.column().expect("guarded above");
        parts.push(format!("For each {},", column_phrase(xc, &q.from, db, rng)));
        let command = *rng.pick(&["show", "draw", "plot", "display"]);
        let chart_phrase = chart_phrase(q.chart, rng);
        parts.push(format!("{command} {chart_phrase} of"));
        parts.push(y_phrase(q, db, rng));
    } else {
        let command = *rng.pick(&[
            "Show",
            "Draw",
            "Plot",
            "Visualize",
            "Display",
            "Give me",
            "Create",
        ]);
        let chart_phrase = chart_phrase(q.chart, rng);
        parts.push(format!("{command} {chart_phrase} of"));
        parts.push(y_phrase(q, db, rng));

        // X grouping phrase (except plain scatter, where "against" reads
        // better).
        if q.chart == ChartType::Scatter && !q.y.is_aggregate() {
            let x = column_phrase(
                q.x.column().expect("scatter x is a column"),
                &q.from,
                db,
                rng,
            );
            parts.push(format!("against {x}"));
        } else if let Some(xc) = q.x.column() {
            let per = *rng.pick(&["for each", "by", "per", "grouped by", "across"]);
            parts.push(format!("{per} {}", column_phrase(xc, &q.from, db, rng)));
        }
    }

    // Source table(s).
    if let Some(j) = &q.join {
        parts.push(format!(
            "combining {} with {}",
            table_phrase(&q.from, rng),
            table_phrase(&j.table, rng)
        ));
    } else if rng.chance(0.65) {
        let prep = *rng.pick(&["from", "in", "using"]);
        parts.push(format!("{prep} {}", table_phrase(&q.from, rng)));
    }

    if let Some(f) = &q.filter {
        parts.push(filter_phrase(f, &q.from, db, rng));
    }

    if let Some(b) = &q.bin {
        let how = *rng.pick(&["binned by", "bucketed by", "per"]);
        parts.push(format!("{how} {}", b.unit.keyword()));
    }

    if let Some(color) = q.color() {
        let how = *rng.pick(&["colored by", "stacked by", "split by", "broken down by"]);
        parts.push(format!("{how} {}", column_phrase(color, &q.from, db, rng)));
    }

    if let Some(o) = &q.order {
        parts.push(order_phrase(o, q, db, rng));
    }

    let mut s = parts.join(" ");
    s.push('.');
    s
}

#[allow(clippy::explicit_auto_deref)] // the deref is load-bearing: pick returns &&'static str
fn chart_phrase(chart: ChartType, rng: &mut Rng) -> &'static str {
    match chart {
        ChartType::Bar => *rng.pick(&["a bar chart", "a bar graph", "bars", "a histogram"]),
        ChartType::Pie => *rng.pick(&["a pie chart", "a pie", "a donut-style breakdown"]),
        ChartType::Line => *rng.pick(&["a line chart", "a trend line", "a time series"]),
        ChartType::Scatter => *rng.pick(&["a scatter plot", "a scatter chart", "a point cloud"]),
    }
}

fn y_phrase(q: &VqlQuery, db: &Database, rng: &mut Rng) -> String {
    match &q.y {
        SelectExpr::Agg { func, arg } => {
            let target = arg
                .as_ref()
                .map(|c| column_phrase(c, &q.from, db, rng))
                .unwrap_or_else(|| "records".to_string());
            match func {
                AggFunc::Count => {
                    let how = *rng.pick(&["the number of", "how many", "the count of"]);
                    format!("{how} {target}")
                }
                AggFunc::Sum => {
                    let how = *rng.pick(&["the total", "the sum of", "the combined"]);
                    format!("{how} {target}")
                }
                AggFunc::Avg => {
                    let how = *rng.pick(&["the average", "the mean", "the typical"]);
                    format!("{how} {target}")
                }
                AggFunc::Min => format!("{} {target}", rng.pick(&["the minimum", "the lowest"])),
                AggFunc::Max => format!("{} {target}", rng.pick(&["the maximum", "the highest"])),
            }
        }
        SelectExpr::Column(c) => column_phrase(c, &q.from, db, rng),
    }
}

/// Renders a column mention: the identifier's own words, or an alias.
fn column_phrase(c: &ColumnRef, from: &str, db: &Database, rng: &mut Rng) -> String {
    let table_name = c.table.as_deref().unwrap_or(from);
    let aliases: Vec<String> = db
        .table(table_name)
        .ok()
        .and_then(|t| t.def.column(&c.column).map(|col| col.aliases.clone()))
        .unwrap_or_default();
    if !aliases.is_empty() && rng.chance(0.4) {
        aliases[rng.below_usize(aliases.len())].clone()
    } else {
        split_identifier(&c.column).join(" ")
    }
}

fn table_phrase(name: &str, rng: &mut Rng) -> String {
    let words = split_identifier(name).join(" ");
    if rng.chance(0.5) {
        format!("the {words} table")
    } else {
        format!("the {words} records")
    }
}

fn filter_phrase(p: &Predicate, from: &str, db: &Database, rng: &mut Rng) -> String {
    match p {
        Predicate::Cmp { col, op, value } => {
            let c = column_phrase(col, from, db, rng);
            let v = literal_phrase(value);
            let rel = match op {
                CmpOp::Eq => *rng.pick(&["is", "equals", "is exactly"]),
                CmpOp::Ne => *rng.pick(&["is not", "differs from", "excludes"]),
                CmpOp::Gt => *rng.pick(&["is greater than", "is more than", "is over", "exceeds"]),
                CmpOp::Ge => *rng.pick(&["is at least", "is no less than"]),
                CmpOp::Lt => *rng.pick(&["is less than", "is under", "is below"]),
                CmpOp::Le => *rng.pick(&["is at most", "is no more than"]),
            };
            let lead = *rng.pick(&["where", "for records whose", "keeping only rows where"]);
            format!("{lead} {c} {rel} {v}")
        }
        Predicate::And(a, b) => format!(
            "{} and {}",
            filter_phrase(a, from, db, rng),
            strip_lead(&filter_phrase(b, from, db, rng))
        ),
        Predicate::Or(a, b) => format!(
            "{} or {}",
            filter_phrase(a, from, db, rng),
            strip_lead(&filter_phrase(b, from, db, rng))
        ),
        Predicate::InSubquery {
            col,
            negated,
            subquery,
        } => {
            let c = column_phrase(col, from, db, rng);
            let child = split_identifier(&subquery.from).join(" ");
            let inner = subquery
                .filter
                .as_ref()
                .map(|f| {
                    format!(
                        " {}",
                        strip_lead(&filter_phrase(f, &subquery.from, db, rng))
                    )
                })
                .unwrap_or_default();
            if *negated {
                format!("where {c} has no matching {child} entry{inner}")
            } else {
                format!("where {c} appears among the {child} entries{inner}")
            }
        }
    }
}

/// Removes a leading connective so conjoined filter phrases read naturally.
fn strip_lead(s: &str) -> String {
    for lead in ["where ", "for records whose ", "keeping only rows where "] {
        if let Some(rest) = s.strip_prefix(lead) {
            return rest.to_string();
        }
    }
    s.to_string()
}

fn literal_phrase(l: &Literal) -> String {
    match l {
        Literal::Int(i) => i.to_string(),
        Literal::Float(f) => format!("{f}"),
        Literal::Text(s) => format!("\"{s}\""),
        Literal::Bool(b) => b.to_string(),
        Literal::Date(d) => d.to_string(),
    }
}

fn order_phrase(o: &OrderBy, q: &VqlQuery, db: &Database, rng: &mut Rng) -> String {
    let dir_word = match o.dir {
        SortDir::Asc => *rng.pick(&["ascending", "increasing", "from smallest to largest"]),
        SortDir::Desc => *rng.pick(&["descending", "decreasing", "from largest to smallest"]),
    };
    match &o.target {
        OrderTarget::Y => {
            let noun = *rng.pick(&["the value", "the y-axis", "the measure"]);
            format!("sorted by {noun} in {dir_word} order")
        }
        OrderTarget::X => format!("rank the x-axis in {dir_word} order"),
        OrderTarget::Column(c) => {
            let phrase = column_phrase(c, &q.from, db, rng);
            let style = *rng.pick(&["sorted by", "ordered by", "ranked by"]);
            format!("{style} {phrase} in {dir_word} order")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::generate::instantiate;
    use crate::synth::{synthesize, Hardness};
    use nl2vis_data::Rng;

    fn setup() -> Database {
        instantiate(&all_domains()[0], 0, &mut Rng::new(4))
    }

    #[test]
    fn realizations_are_nonempty_sentences() {
        let db = setup();
        let mut rng = Rng::new(17);
        for h in Hardness::all() {
            for _ in 0..10 {
                if let Some(q) = synthesize(&db, h, &mut rng) {
                    let nl = realize(&q, &db, &mut rng);
                    assert!(nl.ends_with('.'));
                    assert!(nl.split_whitespace().count() >= 4, "too short: {nl}");
                    assert!(!nl.contains("  "), "double space: {nl}");
                }
            }
        }
    }

    #[test]
    fn realization_varies_with_rng() {
        let db = setup();
        let mut rng = Rng::new(1);
        let q = synthesize(&db, Hardness::Hard, &mut rng).unwrap();
        let mut r1 = Rng::new(100);
        let mut r2 = Rng::new(200);
        let a = realize(&q, &db, &mut r1);
        let b = realize(&q, &db, &mut r2);
        // Different seeds usually give different phrasings of the same query.
        assert!(a != b || a.len() < 30, "{a} == {b}");
    }

    #[test]
    fn filters_mentioned_in_text() {
        let db = setup();
        let mut rng = Rng::new(2);
        for _ in 0..30 {
            let Some(q) = synthesize(&db, Hardness::Hard, &mut rng) else {
                continue;
            };
            if let Some(Predicate::Cmp {
                value: Literal::Text(s),
                ..
            }) = &q.filter
            {
                let nl = realize(&q, &db, &mut rng);
                assert!(
                    nl.contains(&format!("\"{s}\"")),
                    "literal missing from: {nl}"
                );
                return;
            }
        }
    }

    #[test]
    fn chart_type_signaled() {
        let db = setup();
        let mut rng = Rng::new(3);
        let q = synthesize(&db, Hardness::Easy, &mut rng).unwrap();
        let nl = realize(&q, &db, &mut rng).to_lowercase();
        let signal = match q.chart {
            ChartType::Bar => ["bar", "histogram"].iter().any(|w| nl.contains(w)),
            ChartType::Pie => ["pie", "donut"].iter().any(|w| nl.contains(w)),
            ChartType::Line => ["line", "trend", "time series"]
                .iter()
                .any(|w| nl.contains(w)),
            ChartType::Scatter => ["scatter", "point"].iter().any(|w| nl.contains(w)),
        };
        assert!(signal, "chart type unsignaled in: {nl}");
    }

    #[test]
    fn deterministic_given_seed() {
        let db = setup();
        let mut rng = Rng::new(5);
        let q = synthesize(&db, Hardness::Medium, &mut rng).unwrap();
        let a = realize(&q, &db, &mut Rng::new(7));
        let b = realize(&q, &db, &mut Rng::new(7));
        assert_eq!(a, b);
    }
}
