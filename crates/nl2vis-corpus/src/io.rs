//! Corpus persistence: export the generated benchmark (databases + examples)
//! as a JSON document and load it back, so the corpus can be inspected,
//! shipped, or consumed by external tooling — the role of nvBench's release
//! files.

use crate::corpus::{Corpus, Example};
use crate::synth::Hardness;
use nl2vis_data::schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
use nl2vis_data::value::{DataType, Date, Value};
use nl2vis_data::{Catalog, Database, Json};
use nl2vis_query::printer::print;

/// Errors from corpus (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Malformed JSON.
    Json(String),
    /// Structurally valid JSON that is not a corpus document.
    Schema(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "invalid JSON: {e}"),
            IoError::Schema(e) => write!(f, "invalid corpus document: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Serializes a corpus to a JSON document.
pub fn corpus_to_json(corpus: &Corpus) -> Json {
    let databases: Vec<Json> = corpus.catalog.iter().map(database_to_json).collect();
    let examples: Vec<Json> = corpus
        .examples
        .iter()
        .map(|e| {
            Json::object(vec![
                ("id", Json::from(e.id)),
                ("db", Json::from(e.db.as_str())),
                ("domain", Json::from(e.domain.as_str())),
                ("nl", Json::from(e.nl.as_str())),
                ("vql", Json::from(print(&e.vql).as_str())),
                ("hardness", Json::from(e.hardness.label())),
                ("is_join", Json::from(e.is_join)),
            ])
        })
        .collect();
    Json::object(vec![
        ("format", Json::from("nl2vis-corpus/v1")),
        ("databases", Json::Array(databases)),
        ("examples", Json::Array(examples)),
    ])
}

fn database_to_json(db: &Database) -> Json {
    let tables: Vec<Json> = db
        .tables()
        .iter()
        .map(|t| {
            let columns: Vec<Json> = t
                .def
                .columns
                .iter()
                .map(|c| {
                    let mut obj = Json::object(vec![
                        ("name", Json::from(c.name.as_str())),
                        ("type", Json::from(c.dtype.name())),
                    ]);
                    if !c.aliases.is_empty() {
                        obj.set(
                            "aliases",
                            Json::Array(c.aliases.iter().map(|a| Json::from(a.as_str())).collect()),
                        );
                    }
                    obj
                })
                .collect();
            let rows: Vec<Json> = t
                .rows()
                .iter()
                .map(|r| Json::Array(r.iter().map(Json::from).collect()))
                .collect();
            let mut obj = Json::object(vec![
                ("name", Json::from(t.def.name.as_str())),
                ("columns", Json::Array(columns)),
                ("rows", Json::Array(rows)),
            ]);
            if let Some(pk) = t.def.primary_key {
                obj.set("primary_key", Json::from(t.def.columns[pk].name.as_str()));
            }
            obj
        })
        .collect();
    let fks: Vec<Json> = db
        .schema
        .foreign_keys
        .iter()
        .map(|fk| {
            Json::Array(vec![
                Json::from(fk.from_table.as_str()),
                Json::from(fk.from_column.as_str()),
                Json::from(fk.to_table.as_str()),
                Json::from(fk.to_column.as_str()),
            ])
        })
        .collect();
    Json::object(vec![
        ("name", Json::from(db.name())),
        ("domain", Json::from(db.schema.domain.as_str())),
        ("tables", Json::Array(tables)),
        ("foreign_keys", Json::Array(fks)),
    ])
}

/// Loads a corpus from its JSON document.
pub fn corpus_from_json(doc: &Json) -> Result<Corpus, IoError> {
    if doc.get("format").and_then(Json::as_str) != Some("nl2vis-corpus/v1") {
        return Err(IoError::Schema(
            "missing or unknown `format` marker".to_string(),
        ));
    }
    let mut catalog = Catalog::new();
    for dbj in doc.get("databases").and_then(Json::as_array).unwrap_or(&[]) {
        catalog.add(database_from_json(dbj)?);
    }
    let mut examples = Vec::new();
    for ej in doc.get("examples").and_then(Json::as_array).unwrap_or(&[]) {
        let field = |k: &str| {
            ej.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| IoError::Schema(format!("example missing `{k}`")))
        };
        let vql_text = field("vql")?;
        let vql = nl2vis_query::parse(&vql_text)
            .map_err(|e| IoError::Schema(format!("bad VQL `{vql_text}`: {e}")))?;
        let hardness_label = field("hardness")?;
        let hardness = Hardness::all()
            .into_iter()
            .find(|h| h.label() == hardness_label)
            .ok_or_else(|| IoError::Schema(format!("unknown hardness `{hardness_label}`")))?;
        examples.push(Example {
            id: ej
                .get("id")
                .and_then(Json::as_f64)
                .ok_or_else(|| IoError::Schema("example missing `id`".to_string()))?
                as usize,
            db: field("db")?,
            domain: field("domain")?,
            nl: field("nl")?,
            is_join: ej
                .get("is_join")
                .and_then(Json::as_bool)
                .unwrap_or(vql.is_join()),
            vql,
            hardness,
        });
    }
    Ok(Corpus { catalog, examples })
}

fn database_from_json(dbj: &Json) -> Result<Database, IoError> {
    let name = dbj
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| IoError::Schema("database missing `name`".to_string()))?;
    let domain = dbj
        .get("domain")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let mut schema = DatabaseSchema::new(name, domain);
    let tables = dbj
        .get("tables")
        .and_then(Json::as_array)
        .ok_or_else(|| IoError::Schema(format!("database `{name}` missing `tables`")))?;
    let mut all_rows: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
    for tj in tables {
        let tname = tj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| IoError::Schema("table missing `name`".to_string()))?;
        let mut columns = Vec::new();
        let mut dtypes = Vec::new();
        for cj in tj.get("columns").and_then(Json::as_array).unwrap_or(&[]) {
            let cname = cj
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| IoError::Schema("column missing `name`".to_string()))?;
            let dtype = match cj.get("type").and_then(Json::as_str) {
                Some("int") => DataType::Int,
                Some("float") => DataType::Float,
                Some("text") => DataType::Text,
                Some("bool") => DataType::Bool,
                Some("date") => DataType::Date,
                other => {
                    return Err(IoError::Schema(format!(
                        "column `{cname}` has unknown type {other:?}"
                    )))
                }
            };
            dtypes.push(dtype);
            let aliases: Vec<String> = cj
                .get("aliases")
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default();
            columns.push(ColumnDef::new(cname, dtype).with_aliases(aliases));
        }
        let mut def = TableDef::new(tname, columns);
        if let Some(pk) = tj.get("primary_key").and_then(Json::as_str) {
            let idx = def
                .column_index(pk)
                .ok_or_else(|| IoError::Schema(format!("primary key `{pk}` not a column")))?;
            def.primary_key = Some(idx);
        }
        let mut rows = Vec::new();
        for rj in tj.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
            let cells = rj
                .as_array()
                .ok_or_else(|| IoError::Schema("row is not an array".to_string()))?;
            let row: Result<Vec<Value>, IoError> = cells
                .iter()
                .zip(&dtypes)
                .map(|(v, dtype)| value_from_json(v, *dtype))
                .collect();
            rows.push(row?);
        }
        all_rows.push((tname.to_string(), rows));
        schema.tables.push(def);
    }
    for fkj in dbj
        .get("foreign_keys")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let parts = fkj
            .as_array()
            .filter(|a| a.len() == 4)
            .ok_or_else(|| IoError::Schema("foreign key is not a 4-array".to_string()))?;
        let s = |i: usize| parts[i].as_str().unwrap_or_default().to_string();
        schema
            .foreign_keys
            .push(ForeignKey::new(s(0), s(1), s(2), s(3)));
    }
    schema.check().map_err(IoError::Schema)?;
    let mut db = Database::new(schema);
    for (tname, rows) in all_rows {
        for row in rows {
            db.insert(&tname, row)
                .map_err(|e| IoError::Schema(e.to_string()))?;
        }
    }
    Ok(db)
}

fn value_from_json(v: &Json, dtype: DataType) -> Result<Value, IoError> {
    Ok(match (v, dtype) {
        (Json::Null, _) => Value::Null,
        (Json::Number(n), DataType::Int) => Value::Int(*n as i64),
        (Json::Number(n), DataType::Float) => Value::Float(*n),
        (Json::String(s), DataType::Text) => Value::Text(s.clone()),
        (Json::Bool(b), DataType::Bool) => Value::Bool(*b),
        (Json::String(s), DataType::Date) => {
            Value::Date(Date::parse(s).ok_or_else(|| IoError::Schema(format!("bad date `{s}`")))?)
        }
        (other, dtype) => {
            return Err(IoError::Schema(format!(
                "value {other} does not fit type {dtype}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use nl2vis_query::canon::exact_match;

    #[test]
    fn corpus_roundtrips_through_json() {
        let original = Corpus::build(&CorpusConfig::small(77));
        let doc = corpus_to_json(&original);
        let text = doc.to_compact();
        let reparsed = Json::parse(&text).unwrap();
        let loaded = corpus_from_json(&reparsed).unwrap();

        assert_eq!(loaded.catalog.len(), original.catalog.len());
        assert_eq!(loaded.examples.len(), original.examples.len());
        for (a, b) in original.examples.iter().zip(&loaded.examples) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.nl, b.nl);
            assert_eq!(a.hardness, b.hardness);
            assert!(
                exact_match(&a.vql, &b.vql),
                "{} vs {}",
                print(&a.vql),
                print(&b.vql)
            );
        }
        // Databases round-trip with data: every example still executes to
        // the same result.
        for e in original.examples.iter().take(40) {
            let db_a = original.catalog.database(&e.db).unwrap();
            let db_b = loaded.catalog.database(&e.db).unwrap();
            let ra = nl2vis_query::execute(&e.vql, db_a).unwrap();
            let rb = nl2vis_query::execute(&e.vql, db_b).unwrap();
            assert!(ra.same_data(&rb));
        }
        loaded.catalog.validate().unwrap();
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(corpus_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(corpus_from_json(&Json::parse(r#"{"format":"something-else"}"#).unwrap()).is_err());
        let bad_vql = r#"{"format":"nl2vis-corpus/v1","databases":[],
            "examples":[{"id":0,"db":"d","domain":"x","nl":"q","vql":"NOT VQL","hardness":"easy"}]}"#;
        assert!(corpus_from_json(&Json::parse(bad_vql).unwrap()).is_err());
    }

    #[test]
    fn alias_and_pk_metadata_survive() {
        let original = Corpus::build(&CorpusConfig::small(77));
        let loaded = corpus_from_json(&corpus_to_json(&original)).unwrap();
        let a = original.catalog.database("baseball_club").unwrap();
        let b = loaded.catalog.database("baseball_club").unwrap();
        let ta = a.table("technician").unwrap();
        let tb = b.table("technician").unwrap();
        assert_eq!(ta.def.primary_key, tb.def.primary_key);
        let ca = ta.def.column("team").unwrap();
        let cb = tb.def.column("team").unwrap();
        assert_eq!(ca.aliases, cb.aliases);
    }
}
