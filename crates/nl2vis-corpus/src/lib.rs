//! The synthetic **nvBench-substitute corpus** (see DESIGN.md §1 for the
//! substitution argument).
//!
//! nvBench [Luo et al. 2021] synthesizes NL2VIS pairs from the Spider NL2SQL
//! benchmark: relational databases across 105 domains, VQL queries over four
//! hardness levels, and templated natural-language descriptions. This crate
//! regenerates a corpus of the same shape from first principles:
//!
//! - [`domains`]: 16 hand-written domain templates (sports, college,
//!   hospital, retail, …) with typed columns, foreign keys and NL alias
//!   banks;
//! - [`generate`]: instantiation of templates into populated,
//!   referentially-consistent databases;
//! - [`synth`]: data-aware gold-query synthesis stratified by hardness and
//!   join scenario;
//! - [`realize`]: template-based natural-language realization with lexical
//!   variation (synonyms from [`pools::SYNONYMS`]);
//! - [`corpus`]: corpus assembly plus the paper's in-domain and cross-domain
//!   7:2:1 splits;
//! - [`io`]: JSON export/import of the whole benchmark (the role of
//!   nvBench's release files).

pub mod corpus;
pub mod domains;
pub mod generate;
pub mod io;
pub mod pools;
pub mod realize;
pub mod synth;

pub use corpus::{Corpus, CorpusConfig, Example, Split};
pub use io::{corpus_from_json, corpus_to_json};
pub use synth::Hardness;
