//! The domain library: parametric schema templates the corpus generator
//! instantiates into concrete databases.
//!
//! nvBench spans 105 domains / 153 databases synthesized from Spider; we
//! follow the same recipe with 16 hand-written domain templates (sports,
//! college, hospital, retail, …) that the generator instantiates multiple
//! times with varied data, giving a catalog of the same *kind* of diversity.

use nl2vis_data::value::DataType;

use crate::pools::*;

/// How a column participates in query synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColRole {
    /// Primary/foreign key; never an axis.
    Id,
    /// Low-cardinality category: usable as X, color, and equality filters.
    Category,
    /// Entity label (names/titles): usable as X for counts.
    Label,
    /// Numeric measure: usable as Y (SUM/AVG), scatter axes, range filters.
    Measure,
    /// Date column: usable as binned X and range filters.
    Temporal,
}

/// Value generator for a column.
#[derive(Debug, Clone, Copy)]
pub enum ColGen {
    /// 1..=n serial unique integers.
    Serial,
    /// Distinct-ish labels drawn from a pool (suffixes added on collision).
    FromPool(&'static [&'static str]),
    /// Low-cardinality categorical values from a pool.
    Cat(&'static [&'static str]),
    /// Uniform integer in a range.
    IntRange(i64, i64),
    /// Uniform float in a range (rounded to 2 decimals).
    FloatRange(f64, f64),
    /// Date with year in the inclusive range.
    DateBetween(i32, i32),
    /// Boolean.
    Bool,
    /// Foreign key into the named table's primary key.
    Fk(&'static str),
}

/// A column template.
#[derive(Debug, Clone, Copy)]
pub struct ColSpec {
    /// Identifier.
    pub name: &'static str,
    /// Declared type.
    pub dtype: DataType,
    /// Value generator.
    pub gen: ColGen,
    /// NL alias words users say for this column.
    pub aliases: &'static [&'static str],
    /// Synthesis role.
    pub role: ColRole,
}

/// A table template.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Identifier.
    pub name: &'static str,
    /// Row-count range for data generation.
    pub rows: (usize, usize),
    /// Columns; the first `Serial` column is the primary key.
    pub columns: &'static [ColSpec],
}

/// A domain template.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Topical domain ("sports", "college", ...).
    pub domain: &'static str,
    /// Base database name; instantiations suffix an index.
    pub db_base: &'static str,
    /// Tables.
    pub tables: &'static [TableSpec],
    /// Foreign keys: (from_table, from_column, to_table, to_column).
    pub fks: &'static [(&'static str, &'static str, &'static str, &'static str)],
}

const fn col(
    name: &'static str,
    dtype: DataType,
    gen: ColGen,
    aliases: &'static [&'static str],
    role: ColRole,
) -> ColSpec {
    ColSpec {
        name,
        dtype,
        gen,
        aliases,
        role,
    }
}

use ColGen::{Bool, Cat, DateBetween, Fk, FloatRange, FromPool, IntRange, Serial};
use ColRole::*;
use DataType::{Bool as TBool, Date as TDate, Float as TFloat, Int as TInt, Text as TText};

/// All domain templates.
pub fn all_domains() -> &'static [DomainSpec] {
    DOMAINS
}

static DOMAINS: &[DomainSpec] = &[
    DomainSpec {
        domain: "sports",
        db_base: "baseball_club",
        tables: &[
            TableSpec {
                name: "technician",
                rows: (18, 30),
                columns: &[
                    col("tech_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["technician"],
                        Label,
                    ),
                    col("team", TText, Cat(TEAMS), &["squad", "club"], Category),
                    col("age", TInt, IntRange(22, 55), &["age"], Measure),
                    col(
                        "salary",
                        TFloat,
                        FloatRange(30_000.0, 120_000.0),
                        &["pay", "wage"],
                        Measure,
                    ),
                    col(
                        "hire_date",
                        TDate,
                        DateBetween(2012, 2023),
                        &["hired", "joined"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "machine",
                rows: (25, 45),
                columns: &[
                    col("machine_id", TInt, Serial, &[], Id),
                    col("tech_id", TInt, Fk("technician"), &[], Id),
                    col(
                        "machine_series",
                        TText,
                        Cat(PRODUCTS),
                        &["series"],
                        Category,
                    ),
                    col(
                        "value",
                        TFloat,
                        FloatRange(1_000.0, 90_000.0),
                        &["worth", "cost"],
                        Measure,
                    ),
                    col("quality_rank", TInt, IntRange(1, 10), &["rank"], Measure),
                ],
            },
        ],
        fks: &[("machine", "tech_id", "technician", "tech_id")],
    },
    DomainSpec {
        domain: "college",
        db_base: "university",
        tables: &[
            TableSpec {
                name: "student",
                rows: (30, 60),
                columns: &[
                    col("student_id", TInt, Serial, &[], Id),
                    col("name", TText, FromPool(PERSON_NAMES), &["student"], Label),
                    col(
                        "department",
                        TText,
                        Cat(DEPARTMENTS),
                        &["division", "major"],
                        Category,
                    ),
                    col("gpa", TFloat, FloatRange(2.0, 4.0), &["grade"], Measure),
                    col(
                        "credits",
                        TInt,
                        IntRange(0, 140),
                        &["credit hours"],
                        Measure,
                    ),
                    col(
                        "enroll_date",
                        TDate,
                        DateBetween(2016, 2023),
                        &["enrolled"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "course",
                rows: (12, 20),
                columns: &[
                    col("course_id", TInt, Serial, &[], Id),
                    col("title", TText, FromPool(PRODUCTS), &["course"], Label),
                    col(
                        "department",
                        TText,
                        Cat(DEPARTMENTS),
                        &["division"],
                        Category,
                    ),
                    col("credits", TInt, IntRange(1, 5), &["credit hours"], Measure),
                ],
            },
            TableSpec {
                name: "enrollment",
                rows: (50, 90),
                columns: &[
                    col("enrollment_id", TInt, Serial, &[], Id),
                    col("student_id", TInt, Fk("student"), &[], Id),
                    col("course_id", TInt, Fk("course"), &[], Id),
                    col("score", TFloat, FloatRange(40.0, 100.0), &["mark"], Measure),
                ],
            },
        ],
        fks: &[
            ("enrollment", "student_id", "student", "student_id"),
            ("enrollment", "course_id", "course", "course_id"),
        ],
    },
    DomainSpec {
        domain: "hospital",
        db_base: "clinic",
        tables: &[
            TableSpec {
                name: "doctor",
                rows: (14, 24),
                columns: &[
                    col("doctor_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["doctor", "physician"],
                        Label,
                    ),
                    col("specialty", TText, Cat(SPECIALTIES), &["field"], Category),
                    col(
                        "salary",
                        TFloat,
                        FloatRange(90_000.0, 300_000.0),
                        &["pay", "earnings"],
                        Measure,
                    ),
                    col(
                        "experience_years",
                        TInt,
                        IntRange(1, 35),
                        &["experience"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "appointment",
                rows: (40, 80),
                columns: &[
                    col("appointment_id", TInt, Serial, &[], Id),
                    col("doctor_id", TInt, Fk("doctor"), &[], Id),
                    col(
                        "visit_date",
                        TDate,
                        DateBetween(2020, 2023),
                        &["visit"],
                        Temporal,
                    ),
                    col(
                        "fee",
                        TFloat,
                        FloatRange(40.0, 500.0),
                        &["cost", "charge"],
                        Measure,
                    ),
                    col("urgent", TBool, Bool, &["emergency"], Category),
                ],
            },
        ],
        fks: &[("appointment", "doctor_id", "doctor", "doctor_id")],
    },
    DomainSpec {
        domain: "retail",
        db_base: "store_front",
        tables: &[
            TableSpec {
                name: "customer",
                rows: (25, 50),
                columns: &[
                    col("customer_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["customer", "client", "buyer"],
                        Label,
                    ),
                    col("city", TText, Cat(CITIES), &["location", "town"], Category),
                    col(
                        "loyalty_points",
                        TInt,
                        IntRange(0, 5000),
                        &["points"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "purchase",
                rows: (60, 110),
                columns: &[
                    col("purchase_id", TInt, Serial, &[], Id),
                    col("customer_id", TInt, Fk("customer"), &[], Id),
                    col(
                        "category",
                        TText,
                        Cat(PRODUCT_CATEGORIES),
                        &["kind", "type"],
                        Category,
                    ),
                    col(
                        "amount",
                        TFloat,
                        FloatRange(5.0, 900.0),
                        &["sum", "spending"],
                        Measure,
                    ),
                    col(
                        "purchase_date",
                        TDate,
                        DateBetween(2019, 2023),
                        &["bought"],
                        Temporal,
                    ),
                    col(
                        "payment_method",
                        TText,
                        Cat(PAYMENT_METHODS),
                        &["payment"],
                        Category,
                    ),
                ],
            },
        ],
        fks: &[("purchase", "customer_id", "customer", "customer_id")],
    },
    DomainSpec {
        domain: "airline",
        db_base: "airways",
        tables: &[
            TableSpec {
                name: "flight",
                rows: (30, 60),
                columns: &[
                    col("flight_id", TInt, Serial, &[], Id),
                    col("airline", TText, Cat(AIRLINES), &["carrier"], Category),
                    col(
                        "origin",
                        TText,
                        Cat(CITIES),
                        &["origin city", "source city"],
                        Category,
                    ),
                    col(
                        "miles",
                        TFloat,
                        FloatRange(100.0, 5_000.0),
                        &["distance", "mileage"],
                        Measure,
                    ),
                    col("seats", TInt, IntRange(50, 300), &["capacity"], Measure),
                    col(
                        "depart_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["departure"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "booking",
                rows: (60, 100),
                columns: &[
                    col("booking_id", TInt, Serial, &[], Id),
                    col("flight_id", TInt, Fk("flight"), &[], Id),
                    col(
                        "price",
                        TFloat,
                        FloatRange(60.0, 1_500.0),
                        &["cost", "fee", "fare"],
                        Measure,
                    ),
                    col(
                        "class",
                        TText,
                        Cat(&["Economy", "Business", "First"]),
                        &["cabin"],
                        Category,
                    ),
                ],
            },
        ],
        fks: &[("booking", "flight_id", "flight", "flight_id")],
    },
    DomainSpec {
        domain: "music",
        db_base: "record_label",
        tables: &[
            TableSpec {
                name: "artist",
                rows: (15, 28),
                columns: &[
                    col("artist_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["artist", "musician"],
                        Label,
                    ),
                    col("genre", TText, Cat(GENRES), &["style"], Category),
                    col(
                        "debut_year",
                        TInt,
                        IntRange(1975, 2020),
                        &["debut"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "album",
                rows: (30, 60),
                columns: &[
                    col("album_id", TInt, Serial, &[], Id),
                    col("artist_id", TInt, Fk("artist"), &[], Id),
                    col("title", TText, FromPool(PRODUCTS), &["album"], Label),
                    col(
                        "sales",
                        TFloat,
                        FloatRange(1_000.0, 2_000_000.0),
                        &["revenue", "turnover"],
                        Measure,
                    ),
                    col(
                        "release_date",
                        TDate,
                        DateBetween(2000, 2023),
                        &["released"],
                        Temporal,
                    ),
                ],
            },
        ],
        fks: &[("album", "artist_id", "artist", "artist_id")],
    },
    DomainSpec {
        domain: "movie",
        db_base: "cinema_db",
        tables: &[
            TableSpec {
                name: "film",
                rows: (25, 50),
                columns: &[
                    col("film_id", TInt, Serial, &[], Id),
                    col(
                        "title",
                        TText,
                        FromPool(PRODUCTS),
                        &["film", "movie"],
                        Label,
                    ),
                    col("rating", TText, Cat(RATINGS), &["certificate"], Category),
                    col(
                        "length_minutes",
                        TInt,
                        IntRange(70, 210),
                        &["duration", "runtime"],
                        Measure,
                    ),
                    col(
                        "gross",
                        TFloat,
                        FloatRange(100_000.0, 900_000_000.0),
                        &["box office", "revenue"],
                        Measure,
                    ),
                    col(
                        "release_date",
                        TDate,
                        DateBetween(1995, 2023),
                        &["released"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "screening",
                rows: (40, 80),
                columns: &[
                    col("screening_id", TInt, Serial, &[], Id),
                    col("film_id", TInt, Fk("film"), &[], Id),
                    col("city", TText, Cat(CITIES), &["location"], Category),
                    col("attendance", TInt, IntRange(5, 400), &["audience"], Measure),
                ],
            },
        ],
        fks: &[("screening", "film_id", "film", "film_id")],
    },
    DomainSpec {
        domain: "restaurant",
        db_base: "dining_guide",
        tables: &[
            TableSpec {
                name: "restaurant",
                rows: (20, 40),
                columns: &[
                    col("restaurant_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PRODUCTS),
                        &["restaurant", "eatery"],
                        Label,
                    ),
                    col("cuisine", TText, Cat(CUISINES), &["food type"], Category),
                    col("city", TText, Cat(CITIES), &["location", "town"], Category),
                    col("stars", TFloat, FloatRange(1.0, 5.0), &["rating"], Measure),
                ],
            },
            TableSpec {
                name: "inspection",
                rows: (35, 70),
                columns: &[
                    col("inspection_id", TInt, Serial, &[], Id),
                    col("restaurant_id", TInt, Fk("restaurant"), &[], Id),
                    col(
                        "inspect_date",
                        TDate,
                        DateBetween(2018, 2023),
                        &["inspected"],
                        Temporal,
                    ),
                    col(
                        "score",
                        TInt,
                        IntRange(50, 100),
                        &["grade", "mark"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[("inspection", "restaurant_id", "restaurant", "restaurant_id")],
    },
    DomainSpec {
        domain: "library",
        db_base: "city_library",
        tables: &[
            TableSpec {
                name: "book",
                rows: (30, 60),
                columns: &[
                    col("book_id", TInt, Serial, &[], Id),
                    col("title", TText, FromPool(PRODUCTS), &["book"], Label),
                    col("publisher", TText, Cat(PUBLISHERS), &["press"], Category),
                    col("pages", TInt, IntRange(80, 1200), &["length"], Measure),
                    col(
                        "publish_date",
                        TDate,
                        DateBetween(1990, 2023),
                        &["published"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "loan",
                rows: (50, 90),
                columns: &[
                    col("loan_id", TInt, Serial, &[], Id),
                    col("book_id", TInt, Fk("book"), &[], Id),
                    col(
                        "member_city",
                        TText,
                        Cat(CITIES),
                        &["borrower city"],
                        Category,
                    ),
                    col("days_kept", TInt, IntRange(1, 60), &["loan days"], Measure),
                ],
            },
        ],
        fks: &[("loan", "book_id", "book", "book_id")],
    },
    DomainSpec {
        domain: "business",
        db_base: "company_hr",
        tables: &[
            TableSpec {
                name: "employee",
                rows: (30, 55),
                columns: &[
                    col("employee_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["employee", "staff", "worker"],
                        Label,
                    ),
                    col(
                        "job_title",
                        TText,
                        Cat(JOB_TITLES),
                        &["role", "position"],
                        Category,
                    ),
                    col(
                        "salary",
                        TFloat,
                        FloatRange(35_000.0, 220_000.0),
                        &["pay", "wage", "earnings"],
                        Measure,
                    ),
                    col(
                        "hire_date",
                        TDate,
                        DateBetween(2008, 2023),
                        &["hired", "joined"],
                        Temporal,
                    ),
                    col("remote", TBool, Bool, &["works remotely"], Category),
                ],
            },
            TableSpec {
                name: "project",
                rows: (10, 18),
                columns: &[
                    col("project_id", TInt, Serial, &[], Id),
                    col(
                        "project_name",
                        TText,
                        FromPool(PRODUCTS),
                        &["project"],
                        Label,
                    ),
                    col(
                        "budget",
                        TFloat,
                        FloatRange(10_000.0, 2_000_000.0),
                        &["funding"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "assignment",
                rows: (40, 70),
                columns: &[
                    col("assignment_id", TInt, Serial, &[], Id),
                    col("employee_id", TInt, Fk("employee"), &[], Id),
                    col("project_id", TInt, Fk("project"), &[], Id),
                    col("hours", TInt, IntRange(5, 400), &["effort"], Measure),
                ],
            },
        ],
        fks: &[
            ("assignment", "employee_id", "employee", "employee_id"),
            ("assignment", "project_id", "project", "project_id"),
        ],
    },
    DomainSpec {
        domain: "banking",
        db_base: "credit_union",
        tables: &[
            TableSpec {
                name: "account",
                rows: (30, 60),
                columns: &[
                    col("account_id", TInt, Serial, &[], Id),
                    col(
                        "holder_name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["holder", "owner"],
                        Label,
                    ),
                    col(
                        "account_type",
                        TText,
                        Cat(ACCOUNT_TYPES),
                        &["kind"],
                        Category,
                    ),
                    col(
                        "balance",
                        TFloat,
                        FloatRange(-2_000.0, 250_000.0),
                        &["funds", "deposit"],
                        Measure,
                    ),
                    col(
                        "open_date",
                        TDate,
                        DateBetween(2010, 2023),
                        &["opened"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "transaction",
                rows: (70, 120),
                columns: &[
                    col("transaction_id", TInt, Serial, &[], Id),
                    col("account_id", TInt, Fk("account"), &[], Id),
                    col(
                        "amount",
                        TFloat,
                        FloatRange(1.0, 9_000.0),
                        &["sum"],
                        Measure,
                    ),
                    col(
                        "channel",
                        TText,
                        Cat(&["ATM", "Online", "Branch", "Mobile"]),
                        &["method"],
                        Category,
                    ),
                ],
            },
        ],
        fks: &[("transaction", "account_id", "account", "account_id")],
    },
    DomainSpec {
        domain: "realestate",
        db_base: "property_market",
        tables: &[
            TableSpec {
                name: "property",
                rows: (25, 50),
                columns: &[
                    col("property_id", TInt, Serial, &[], Id),
                    col("city", TText, Cat(CITIES), &["location", "town"], Category),
                    col("bedrooms", TInt, IntRange(1, 6), &["rooms"], Measure),
                    col(
                        "price",
                        TFloat,
                        FloatRange(90_000.0, 2_500_000.0),
                        &["cost", "asking"],
                        Measure,
                    ),
                    col(
                        "list_date",
                        TDate,
                        DateBetween(2018, 2023),
                        &["listed"],
                        Temporal,
                    ),
                    col("sold", TBool, Bool, &["is sold"], Category),
                ],
            },
            TableSpec {
                name: "agent",
                rows: (8, 14),
                columns: &[
                    col("agent_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["agent", "realtor"],
                        Label,
                    ),
                    col(
                        "commission_rate",
                        TFloat,
                        FloatRange(0.01, 0.06),
                        &["commission"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[],
    },
    DomainSpec {
        domain: "weather",
        db_base: "climate_log",
        tables: &[TableSpec {
            name: "observation",
            rows: (60, 110),
            columns: &[
                col("observation_id", TInt, Serial, &[], Id),
                col(
                    "station_city",
                    TText,
                    Cat(CITIES),
                    &["station", "location"],
                    Category,
                ),
                col(
                    "obs_date",
                    TDate,
                    DateBetween(2020, 2023),
                    &["observed"],
                    Temporal,
                ),
                col(
                    "temp_celsius",
                    TFloat,
                    FloatRange(-20.0, 42.0),
                    &["temperature"],
                    Measure,
                ),
                col(
                    "precipitation_mm",
                    TFloat,
                    FloatRange(0.0, 80.0),
                    &["rainfall"],
                    Measure,
                ),
                col("condition", TText, Cat(CONDITIONS), &["sky"], Category),
            ],
        }],
        fks: &[],
    },
    DomainSpec {
        domain: "automotive",
        db_base: "dealership",
        tables: &[
            TableSpec {
                name: "vehicle",
                rows: (25, 50),
                columns: &[
                    col("vehicle_id", TInt, Serial, &[], Id),
                    col(
                        "make",
                        TText,
                        Cat(MAKES),
                        &["brand", "manufacturer"],
                        Category,
                    ),
                    col("model_year", TInt, IntRange(2005, 2024), &["year"], Measure),
                    col(
                        "price",
                        TFloat,
                        FloatRange(4_000.0, 140_000.0),
                        &["cost", "sticker"],
                        Measure,
                    ),
                    col("electric", TBool, Bool, &["is electric", "ev"], Category),
                ],
            },
            TableSpec {
                name: "sale",
                rows: (40, 70),
                columns: &[
                    col("sale_id", TInt, Serial, &[], Id),
                    col("vehicle_id", TInt, Fk("vehicle"), &[], Id),
                    col(
                        "sale_date",
                        TDate,
                        DateBetween(2019, 2023),
                        &["sold"],
                        Temporal,
                    ),
                    col(
                        "discount",
                        TFloat,
                        FloatRange(0.0, 8_000.0),
                        &["rebate"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[("sale", "vehicle_id", "vehicle", "vehicle_id")],
    },
    DomainSpec {
        domain: "logistics",
        db_base: "shipping_hub",
        tables: &[
            TableSpec {
                name: "shipment",
                rows: (40, 80),
                columns: &[
                    col("shipment_id", TInt, Serial, &[], Id),
                    col(
                        "destination_country",
                        TText,
                        Cat(COUNTRIES),
                        &["destination"],
                        Category,
                    ),
                    col(
                        "weight_kg",
                        TFloat,
                        FloatRange(0.5, 900.0),
                        &["weight"],
                        Measure,
                    ),
                    col("priority", TText, Cat(PRIORITIES), &["urgency"], Category),
                    col(
                        "ship_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["shipped"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "warehouse",
                rows: (6, 12),
                columns: &[
                    col("warehouse_id", TInt, Serial, &[], Id),
                    col("city", TText, Cat(CITIES), &["location"], Category),
                    col("capacity", TInt, IntRange(500, 20_000), &["size"], Measure),
                ],
            },
        ],
        fks: &[],
    },
    DomainSpec {
        domain: "hotel",
        db_base: "resort_chain",
        tables: &[
            TableSpec {
                name: "room",
                rows: (20, 40),
                columns: &[
                    col("room_id", TInt, Serial, &[], Id),
                    col("room_type", TText, Cat(ROOM_TYPES), &["kind"], Category),
                    col(
                        "nightly_rate",
                        TFloat,
                        FloatRange(60.0, 900.0),
                        &["price", "cost", "rate"],
                        Measure,
                    ),
                    col("floor", TInt, IntRange(1, 20), &["level"], Measure),
                ],
            },
            TableSpec {
                name: "reservation",
                rows: (50, 90),
                columns: &[
                    col("reservation_id", TInt, Serial, &[], Id),
                    col("room_id", TInt, Fk("room"), &[], Id),
                    col(
                        "guest_name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["guest"],
                        Label,
                    ),
                    col("nights", TInt, IntRange(1, 14), &["stay length"], Measure),
                    col(
                        "checkin_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["check in"],
                        Temporal,
                    ),
                ],
            },
        ],
        fks: &[("reservation", "room_id", "room", "room_id")],
    },
    DomainSpec {
        domain: "energy",
        db_base: "power_grid",
        tables: &[
            TableSpec {
                name: "plant",
                rows: (12, 22),
                columns: &[
                    col("plant_id", TInt, Serial, &[], Id),
                    col(
                        "plant_name",
                        TText,
                        FromPool(PRODUCTS),
                        &["plant", "station"],
                        Label,
                    ),
                    col(
                        "fuel",
                        TText,
                        Cat(&["Solar", "Wind", "Gas", "Hydro", "Nuclear"]),
                        &["source"],
                        Category,
                    ),
                    col(
                        "capacity_mw",
                        TFloat,
                        FloatRange(5.0, 1200.0),
                        &["capacity", "size"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "reading",
                rows: (50, 90),
                columns: &[
                    col("reading_id", TInt, Serial, &[], Id),
                    col("plant_id", TInt, Fk("plant"), &[], Id),
                    col(
                        "read_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["recorded"],
                        Temporal,
                    ),
                    col(
                        "output_mwh",
                        TFloat,
                        FloatRange(0.0, 900.0),
                        &["output", "production"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[("reading", "plant_id", "plant", "plant_id")],
    },
    DomainSpec {
        domain: "telecom",
        db_base: "phone_network",
        tables: &[
            TableSpec {
                name: "subscriber",
                rows: (30, 55),
                columns: &[
                    col("subscriber_id", TInt, Serial, &[], Id),
                    col(
                        "name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["subscriber", "client"],
                        Label,
                    ),
                    col(
                        "plan",
                        TText,
                        Cat(&["Basic", "Plus", "Premium", "Family"]),
                        &["tier"],
                        Category,
                    ),
                    col(
                        "monthly_fee",
                        TFloat,
                        FloatRange(10.0, 120.0),
                        &["fee", "cost"],
                        Measure,
                    ),
                    col(
                        "signup_date",
                        TDate,
                        DateBetween(2017, 2023),
                        &["signed up", "joined"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "call",
                rows: (60, 110),
                columns: &[
                    col("call_id", TInt, Serial, &[], Id),
                    col("subscriber_id", TInt, Fk("subscriber"), &[], Id),
                    col(
                        "minutes",
                        TFloat,
                        FloatRange(0.2, 180.0),
                        &["duration", "length"],
                        Measure,
                    ),
                    col("international", TBool, Bool, &["abroad"], Category),
                ],
            },
        ],
        fks: &[("call", "subscriber_id", "subscriber", "subscriber_id")],
    },
    DomainSpec {
        domain: "agriculture",
        db_base: "farm_coop",
        tables: &[
            TableSpec {
                name: "farm",
                rows: (14, 26),
                columns: &[
                    col("farm_id", TInt, Serial, &[], Id),
                    col("farm_name", TText, FromPool(PRODUCTS), &["farm"], Label),
                    col(
                        "county",
                        TText,
                        Cat(CITIES),
                        &["region", "location"],
                        Category,
                    ),
                    col(
                        "acres",
                        TFloat,
                        FloatRange(20.0, 3000.0),
                        &["area", "size"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "harvest",
                rows: (40, 80),
                columns: &[
                    col("harvest_id", TInt, Serial, &[], Id),
                    col("farm_id", TInt, Fk("farm"), &[], Id),
                    col(
                        "crop",
                        TText,
                        Cat(&["Wheat", "Corn", "Soy", "Barley", "Oats"]),
                        &["produce"],
                        Category,
                    ),
                    col(
                        "yield_tons",
                        TFloat,
                        FloatRange(1.0, 400.0),
                        &["yield", "output"],
                        Measure,
                    ),
                    col(
                        "harvest_date",
                        TDate,
                        DateBetween(2019, 2023),
                        &["harvested"],
                        Temporal,
                    ),
                ],
            },
        ],
        fks: &[("harvest", "farm_id", "farm", "farm_id")],
    },
    DomainSpec {
        domain: "gaming",
        db_base: "esports_league",
        tables: &[
            TableSpec {
                name: "player",
                rows: (24, 44),
                columns: &[
                    col("player_id", TInt, Serial, &[], Id),
                    col(
                        "handle",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["player", "gamer"],
                        Label,
                    ),
                    col(
                        "main_role",
                        TText,
                        Cat(&["Tank", "Support", "Carry", "Flex"]),
                        &["role", "position"],
                        Category,
                    ),
                    col(
                        "rating",
                        TInt,
                        IntRange(800, 3200),
                        &["elo", "skill rating"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "match_result",
                rows: (50, 90),
                columns: &[
                    col("match_id", TInt, Serial, &[], Id),
                    col("player_id", TInt, Fk("player"), &[], Id),
                    col("kills", TInt, IntRange(0, 30), &["eliminations"], Measure),
                    col("won", TBool, Bool, &["victory"], Category),
                    col(
                        "played_date",
                        TDate,
                        DateBetween(2022, 2023),
                        &["played"],
                        Temporal,
                    ),
                ],
            },
        ],
        fks: &[("match_result", "player_id", "player", "player_id")],
    },
    DomainSpec {
        domain: "museum",
        db_base: "city_museum",
        tables: &[
            TableSpec {
                name: "exhibit",
                rows: (16, 30),
                columns: &[
                    col("exhibit_id", TInt, Serial, &[], Id),
                    col(
                        "title",
                        TText,
                        FromPool(PRODUCTS),
                        &["exhibit", "exhibition"],
                        Label,
                    ),
                    col(
                        "wing",
                        TText,
                        Cat(&["East", "West", "North", "Modern", "Ancient"]),
                        &["hall", "section"],
                        Category,
                    ),
                    col(
                        "insured_value",
                        TFloat,
                        FloatRange(10_000.0, 5_000_000.0),
                        &["value", "worth"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "visit",
                rows: (50, 95),
                columns: &[
                    col("visit_id", TInt, Serial, &[], Id),
                    col("exhibit_id", TInt, Fk("exhibit"), &[], Id),
                    col(
                        "visit_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["visited"],
                        Temporal,
                    ),
                    col(
                        "visitors",
                        TInt,
                        IntRange(5, 900),
                        &["attendance", "audience"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[("visit", "exhibit_id", "exhibit", "exhibit_id")],
    },
    DomainSpec {
        domain: "transit",
        db_base: "metro_system",
        tables: &[
            TableSpec {
                name: "route",
                rows: (10, 18),
                columns: &[
                    col("route_id", TInt, Serial, &[], Id),
                    col(
                        "route_name",
                        TText,
                        FromPool(PRODUCTS),
                        &["route", "line"],
                        Label,
                    ),
                    col(
                        "mode",
                        TText,
                        Cat(&["Bus", "Tram", "Subway", "Ferry"]),
                        &["vehicle kind"],
                        Category,
                    ),
                    col("stops", TInt, IntRange(6, 48), &["stations"], Measure),
                ],
            },
            TableSpec {
                name: "ride",
                rows: (60, 110),
                columns: &[
                    col("ride_id", TInt, Serial, &[], Id),
                    col("route_id", TInt, Fk("route"), &[], Id),
                    col(
                        "ride_date",
                        TDate,
                        DateBetween(2022, 2023),
                        &["taken"],
                        Temporal,
                    ),
                    col("passengers", TInt, IntRange(1, 400), &["riders"], Measure),
                    col(
                        "fare_total",
                        TFloat,
                        FloatRange(2.0, 900.0),
                        &["fare", "revenue"],
                        Measure,
                    ),
                ],
            },
        ],
        fks: &[("ride", "route_id", "route", "route_id")],
    },
    DomainSpec {
        domain: "insurance",
        db_base: "mutual_insurance",
        tables: &[
            TableSpec {
                name: "policy",
                rows: (28, 50),
                columns: &[
                    col("policy_id", TInt, Serial, &[], Id),
                    col(
                        "holder_name",
                        TText,
                        FromPool(PERSON_NAMES),
                        &["holder", "owner"],
                        Label,
                    ),
                    col(
                        "coverage_type",
                        TText,
                        Cat(&["Auto", "Home", "Life", "Travel"]),
                        &["coverage kind", "line of business"],
                        Category,
                    ),
                    col(
                        "premium",
                        TFloat,
                        FloatRange(200.0, 6_000.0),
                        &["price", "cost"],
                        Measure,
                    ),
                    col(
                        "start_date",
                        TDate,
                        DateBetween(2015, 2023),
                        &["started"],
                        Temporal,
                    ),
                ],
            },
            TableSpec {
                name: "claim",
                rows: (40, 80),
                columns: &[
                    col("claim_id", TInt, Serial, &[], Id),
                    col("policy_id", TInt, Fk("policy"), &[], Id),
                    col(
                        "amount",
                        TFloat,
                        FloatRange(100.0, 90_000.0),
                        &["payout", "sum"],
                        Measure,
                    ),
                    col("approved", TBool, Bool, &["accepted"], Category),
                ],
            },
        ],
        fks: &[("claim", "policy_id", "policy", "policy_id")],
    },
    DomainSpec {
        domain: "ecommerce",
        db_base: "marketplace",
        tables: &[
            TableSpec {
                name: "seller",
                rows: (20, 38),
                columns: &[
                    col("seller_id", TInt, Serial, &[], Id),
                    col(
                        "shop_name",
                        TText,
                        FromPool(PRODUCTS),
                        &["seller", "shop", "store"],
                        Label,
                    ),
                    col("country", TText, Cat(COUNTRIES), &["location"], Category),
                    col(
                        "rating_avg",
                        TFloat,
                        FloatRange(1.0, 5.0),
                        &["average rating"],
                        Measure,
                    ),
                ],
            },
            TableSpec {
                name: "review",
                rows: (60, 110),
                columns: &[
                    col("review_id", TInt, Serial, &[], Id),
                    col("seller_id", TInt, Fk("seller"), &[], Id),
                    col("stars", TInt, IntRange(1, 5), &["score", "rating"], Measure),
                    col(
                        "review_date",
                        TDate,
                        DateBetween(2021, 2023),
                        &["reviewed"],
                        Temporal,
                    ),
                    col("verified", TBool, Bool, &["confirmed"], Category),
                ],
            },
        ],
        fks: &[("review", "seller_id", "seller", "seller_id")],
    },
];

impl DomainSpec {
    /// The table spec by name.
    pub fn table(&self, name: &str) -> Option<&TableSpec> {
        self.tables.iter().find(|t| t.name == name)
    }
}

impl TableSpec {
    /// Index of the primary-key column (the first `Serial` column), if any.
    pub fn primary_key(&self) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| matches!(c.gen, ColGen::Serial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_well_formed() {
        let domains = all_domains();
        assert!(domains.len() >= 14, "need a broad domain library");
        for d in domains {
            assert!(!d.tables.is_empty());
            for t in d.tables {
                assert!(t.rows.0 <= t.rows.1);
                assert!(t.columns.len() >= 3, "{} too narrow", t.name);
            }
            for (ft, fc, tt, tc) in d.fks {
                let from = d.table(ft).unwrap_or_else(|| panic!("missing table {ft}"));
                assert!(from.columns.iter().any(|c| c.name == *fc), "{ft}.{fc}");
                let to = d.table(tt).unwrap_or_else(|| panic!("missing table {tt}"));
                assert!(to.columns.iter().any(|c| c.name == *tc), "{tt}.{tc}");
            }
        }
    }

    #[test]
    fn every_fk_column_declared_as_fk_gen() {
        for d in all_domains() {
            for t in d.tables {
                for c in t.columns {
                    if let ColGen::Fk(parent) = c.gen {
                        assert!(
                            d.fks.iter().any(|(ft, fc, tt, _)| *ft == t.name
                                && *fc == c.name
                                && *tt == parent),
                            "Fk column {}.{} lacks a schema FK edge",
                            t.name,
                            c.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn domains_have_synthesis_material() {
        // Every domain needs at least one categorical/label x and a measure,
        // so query synthesis never starves.
        for d in all_domains() {
            let has_x = d.tables.iter().any(|t| {
                t.columns
                    .iter()
                    .any(|c| matches!(c.role, ColRole::Category | ColRole::Label))
            });
            let has_measure = d
                .tables
                .iter()
                .any(|t| t.columns.iter().any(|c| c.role == ColRole::Measure));
            assert!(has_x && has_measure, "domain {} lacks material", d.domain);
        }
    }

    #[test]
    fn primary_keys_are_first_serial() {
        for d in all_domains() {
            for t in d.tables {
                assert_eq!(t.primary_key(), Some(0), "{} pk must be column 0", t.name);
            }
        }
    }
}
