//! Database instantiation: turning a [`DomainSpec`] into a populated,
//! referentially-consistent [`Database`].

use crate::domains::{ColGen, DomainSpec};
use nl2vis_data::schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
use nl2vis_data::value::{Date, Value};
use nl2vis_data::{Database, Rng};
use std::collections::HashMap;

/// Instantiates a domain template into a concrete database.
///
/// `instance` distinguishes multiple databases generated from the same
/// template (they get distinct names and distinct data), mirroring how
/// nvBench contains several databases per domain.
pub fn instantiate(spec: &DomainSpec, instance: usize, rng: &mut Rng) -> Database {
    let db_name = if instance == 0 {
        spec.db_base.to_string()
    } else {
        format!("{}_{}", spec.db_base, instance + 1)
    };
    let mut schema = DatabaseSchema::new(db_name, spec.domain);

    for t in spec.tables {
        let mut def = TableDef::new(
            t.name,
            t.columns
                .iter()
                .map(|c| {
                    ColumnDef::new(c.name, c.dtype)
                        .with_aliases(c.aliases.iter().map(|a| a.to_string()))
                })
                .collect(),
        );
        if let Some(pk) = t.primary_key() {
            def.primary_key = Some(pk);
        }
        schema.tables.push(def);
    }
    for (ft, fc, tt, tc) in spec.fks {
        schema
            .foreign_keys
            .push(ForeignKey::new(*ft, *fc, *tt, *tc));
    }
    schema
        .check()
        .expect("domain templates produce valid schemas");

    let mut db = Database::new(schema);

    // Parent tables must be generated before children; the templates list
    // them in dependency order.
    let mut pk_values: HashMap<&str, Vec<Value>> = HashMap::new();
    for t in spec.tables {
        let n = t.rows.0 + rng.below_usize(t.rows.1 - t.rows.0 + 1);
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(t.columns.len());
            for c in t.columns {
                row.push(generate_value(&c.gen, i, rng, &pk_values, t.name, c.name));
            }
            rows.push(row);
        }
        if let Some(pk) = t.primary_key() {
            pk_values.insert(t.name, rows.iter().map(|r| r[pk].clone()).collect());
        }
        for row in rows {
            db.insert(t.name, row)
                .expect("generated rows satisfy the schema");
        }
    }

    db.validate()
        .expect("generated data is referentially consistent");
    db
}

fn generate_value(
    gen: &ColGen,
    row_index: usize,
    rng: &mut Rng,
    pk_values: &HashMap<&str, Vec<Value>>,
    table: &str,
    column: &str,
) -> Value {
    match gen {
        ColGen::Serial => Value::Int(row_index as i64 + 1),
        ColGen::FromPool(pool) => {
            let base = pool[row_index % pool.len()];
            if row_index < pool.len() {
                Value::Text(base.to_string())
            } else {
                // Pool exhausted: disambiguate with a numeric suffix so label
                // columns stay (mostly) distinct.
                Value::Text(format!("{base} {}", row_index / pool.len() + 1))
            }
        }
        ColGen::Cat(pool) => Value::Text(rng.pick(pool).to_string()),
        ColGen::IntRange(lo, hi) => Value::Int(rng.range_i64(*lo, *hi)),
        ColGen::FloatRange(lo, hi) => {
            let raw = lo + rng.f64() * (hi - lo);
            Value::Float((raw * 100.0).round() / 100.0)
        }
        ColGen::DateBetween(y0, y1) => {
            let year = rng.range_i64(i64::from(*y0), i64::from(*y1)) as i32;
            let month = rng.range_i64(1, 12) as u8;
            let day = rng.range_i64(1, i64::from(Date::days_in_month(year, month))) as u8;
            Value::Date(Date::new(year, month, day).expect("generated date is valid"))
        }
        ColGen::Bool => Value::Bool(rng.chance(0.5)),
        ColGen::Fk(parent) => {
            let parents = pk_values.get(parent).unwrap_or_else(|| {
                panic!("parent `{parent}` of {table}.{column} not generated yet")
            });
            parents[rng.below_usize(parents.len())].clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;

    #[test]
    fn every_domain_instantiates_and_validates() {
        let mut rng = Rng::new(1);
        for spec in all_domains() {
            let db = instantiate(spec, 0, &mut rng);
            assert!(db.total_rows() > 0);
            db.validate().unwrap();
        }
    }

    #[test]
    fn instances_are_distinct_in_name_and_data() {
        let spec = &all_domains()[0];
        let mut rng = Rng::new(7);
        let a = instantiate(spec, 0, &mut rng);
        let b = instantiate(spec, 1, &mut rng);
        assert_ne!(a.name(), b.name());
        assert!(b.name().ends_with("_2"));
        // Data differs with overwhelming probability (different RNG states).
        let ra = a.tables()[0].rows().len();
        let rb = b.tables()[0].rows().len();
        let differs = ra != rb || a.tables()[0].rows() != b.tables()[0].rows();
        assert!(differs);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = &all_domains()[2];
        let a = instantiate(spec, 0, &mut Rng::new(42));
        let b = instantiate(spec, 0, &mut Rng::new(42));
        assert_eq!(a.tables()[0].rows(), b.tables()[0].rows());
    }

    #[test]
    fn label_columns_disambiguate_after_pool_exhaustion() {
        // The student table can exceed the 49-name pool; labels then carry
        // suffixes rather than colliding silently.
        let college = all_domains()
            .iter()
            .find(|d| d.domain == "college")
            .unwrap();
        let mut rng = Rng::new(3);
        let db = instantiate(college, 0, &mut rng);
        let students = db.table("student").unwrap();
        let names = students.distinct_values(1);
        assert_eq!(
            names.len(),
            students.len(),
            "label column should be distinct"
        );
    }

    #[test]
    fn dates_within_declared_range() {
        let spec = all_domains()
            .iter()
            .find(|d| d.domain == "weather")
            .unwrap();
        let db = instantiate(spec, 0, &mut Rng::new(11));
        let obs = db.table("observation").unwrap();
        let col = obs.def.column_index("obs_date").unwrap();
        for v in obs.column_values(col) {
            let d = v.as_date().unwrap();
            assert!((2020..=2023).contains(&d.year));
        }
    }
}
