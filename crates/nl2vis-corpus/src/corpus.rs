//! Corpus assembly: databases + (NL, VQL) example pairs + dataset splits.
//!
//! The corpus plays the role of nvBench in the reproduction. Examples are
//! split 7:2:1 into train/valid/test under two regimes (§4.1 of the paper):
//!
//! - **in-domain**: random split over examples, so test databases also
//!   appear in training (the setting prior work evaluated);
//! - **cross-domain**: split over *databases*, so test databases are unseen
//!   during training/demonstration selection.

use crate::domains::all_domains;
use crate::generate::instantiate;
use crate::realize::realize;
use crate::synth::{synthesize, Hardness};
use nl2vis_data::{Catalog, Rng};
use nl2vis_query::ast::VqlQuery;
use std::collections::BTreeMap;

/// One benchmark example: a natural-language query paired with its gold VQL
/// over a grounded database.
#[derive(Debug, Clone)]
pub struct Example {
    /// Stable id within the corpus.
    pub id: usize,
    /// Database the query is grounded on.
    pub db: String,
    /// Topical domain of that database.
    pub domain: String,
    /// The user's natural-language request.
    pub nl: String,
    /// Gold VQL query.
    pub vql: VqlQuery,
    /// nvBench hardness level.
    pub hardness: Hardness,
    /// Whether the gold query joins two tables (the paper's join scenario).
    pub is_join: bool,
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; the whole corpus is a pure function of this config.
    pub seed: u64,
    /// Database instances per domain template.
    pub instances_per_domain: usize,
    /// Distinct queries to synthesize per database.
    pub queries_per_db: usize,
    /// Natural-language paraphrases emitted per query, `(min, max)`
    /// inclusive. nvBench pairs 25,750 NL descriptions with 7,247
    /// visualizations (~3.5 paraphrases per query); paraphrase siblings are
    /// what the in-domain setting leaks between train and test.
    pub paraphrases: (usize, usize),
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            seed: 20240115,
            instances_per_domain: 3,
            queries_per_db: 24,
            paraphrases: (2, 4),
        }
    }
}

impl CorpusConfig {
    /// A reduced configuration for fast unit tests and examples.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            instances_per_domain: 1,
            queries_per_db: 10,
            paraphrases: (2, 3),
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All databases.
    pub catalog: Catalog,
    /// All examples.
    pub examples: Vec<Example>,
}

/// Train/valid/test example-id lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training example ids.
    pub train: Vec<usize>,
    /// Validation example ids.
    pub valid: Vec<usize>,
    /// Test example ids.
    pub test: Vec<usize>,
}

impl Corpus {
    /// Builds the corpus from a configuration. Deterministic in the config.
    pub fn build(config: &CorpusConfig) -> Corpus {
        let master = Rng::new(config.seed);
        let mut catalog = Catalog::new();
        let mut examples = Vec::new();
        let mut id = 0usize;

        // Hardness mix follows nvBench's skew toward easier queries.
        let hardness_weights = [
            (Hardness::Easy, 0.35),
            (Hardness::Medium, 0.30),
            (Hardness::Hard, 0.20),
            (Hardness::Extra, 0.15),
        ];

        for (di, spec) in all_domains().iter().enumerate() {
            for instance in 0..config.instances_per_domain {
                let mut db_rng = master.fork((di * 97 + instance) as u64);
                let db = instantiate(spec, instance, &mut db_rng);
                let db_name = db.name().to_string();
                let domain = db.schema.domain.clone();

                let mut synth_rng = db_rng.fork(1);
                let mut nl_rng = db_rng.fork(2);
                let mut made = 0usize;
                let mut attempts = 0usize;
                while made < config.queries_per_db && attempts < config.queries_per_db * 8 {
                    attempts += 1;
                    let weights: Vec<f64> = hardness_weights.iter().map(|(_, w)| *w).collect();
                    let hardness = hardness_weights[synth_rng.pick_weighted(&weights)].0;
                    let Some(vql) = synthesize(&db, hardness, &mut synth_rng) else {
                        continue;
                    };
                    let (lo, hi) = config.paraphrases;
                    let n_para = lo + nl_rng.below_usize(hi.saturating_sub(lo) + 1);
                    for _ in 0..n_para.max(1) {
                        let nl = realize(&vql, &db, &mut nl_rng);
                        examples.push(Example {
                            id,
                            db: db_name.clone(),
                            domain: domain.clone(),
                            nl,
                            is_join: vql.is_join(),
                            vql: vql.clone(),
                            hardness,
                        });
                        id += 1;
                    }
                    made += 1;
                }
                catalog.add(db);
            }
        }

        Corpus { catalog, examples }
    }

    /// Examples grouped by database name.
    pub fn by_database(&self) -> BTreeMap<&str, Vec<&Example>> {
        let mut map: BTreeMap<&str, Vec<&Example>> = BTreeMap::new();
        for e in &self.examples {
            map.entry(e.db.as_str()).or_default().push(e);
        }
        map
    }

    /// An example by id.
    pub fn example(&self, id: usize) -> Option<&Example> {
        self.examples.iter().find(|e| e.id == id)
    }

    /// In-domain split: random 7:2:1 over examples, so test databases are
    /// seen in training.
    pub fn split_in_domain(&self, seed: u64) -> Split {
        let mut ids: Vec<usize> = self.examples.iter().map(|e| e.id).collect();
        let mut rng = Rng::new(seed ^ 0x1D);
        rng.shuffle(&mut ids);
        cut(ids)
    }

    /// Cross-domain split: 7:2:1 over *domains*; no database — and no
    /// database sharing a schema with one — in the test set appears in
    /// training. (Instances generated from the same domain template share
    /// table and column names, so splitting by bare database name would
    /// leak schema identity across folds; grouping by domain keeps the
    /// "unseen schema" property the paper's cross-domain setting is about.)
    pub fn split_cross_domain(&self, seed: u64) -> Split {
        let mut by_domain: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut has_join: BTreeMap<&str, bool> = BTreeMap::new();
        for e in &self.examples {
            by_domain.entry(e.domain.as_str()).or_default().push(e.id);
            *has_join.entry(e.domain.as_str()).or_default() |= e.is_join;
        }
        // Stratify by join capability so every fold evaluates both the join
        // and the non-join scenario (single-table domains like weather have
        // no foreign keys).
        let mut rng = Rng::new(seed ^ 0xCD);
        let mut joinable: Vec<&str> = by_domain.keys().copied().filter(|d| has_join[d]).collect();
        let mut plain: Vec<&str> = by_domain.keys().copied().filter(|d| !has_join[d]).collect();
        rng.shuffle(&mut joinable);
        rng.shuffle(&mut plain);
        // Interleave so each decile has a proportional mix.
        let mut domains: Vec<&str> = Vec::with_capacity(joinable.len() + plain.len());
        let (mut ji, mut pi) = (0usize, 0usize);
        while ji < joinable.len() || pi < plain.len() {
            let want_join = (ji as f64 + 1.0) / (joinable.len() as f64 + 1.0)
                <= (pi as f64 + 1.0) / (plain.len() as f64 + 1.0);
            if (want_join && ji < joinable.len()) || pi >= plain.len() {
                domains.push(joinable[ji]);
                ji += 1;
            } else {
                domains.push(plain[pi]);
                pi += 1;
            }
        }
        let n = domains.len();
        let n_train = (n * 7).div_ceil(10);
        let n_valid = (n * 2) / 10;
        let mut split = Split {
            train: vec![],
            valid: vec![],
            test: vec![],
        };
        for (i, domain) in domains.iter().enumerate() {
            let bucket = if i < n_train {
                &mut split.train
            } else if i < n_train + n_valid {
                &mut split.valid
            } else {
                &mut split.test
            };
            bucket.extend(by_domain[domain].iter().copied());
        }
        split
    }
}

fn cut(ids: Vec<usize>) -> Split {
    let n = ids.len();
    let n_train = n * 7 / 10;
    let n_valid = n * 2 / 10;
    Split {
        train: ids[..n_train].to_vec(),
        valid: ids[n_train..n_train + n_valid].to_vec(),
        test: ids[n_train + n_valid..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn corpus() -> Corpus {
        Corpus::build(&CorpusConfig::small(7))
    }

    #[test]
    fn corpus_has_material() {
        let c = corpus();
        assert!(c.catalog.len() >= 14);
        assert!(c.examples.len() >= 100);
        assert!(c.catalog.domains().len() >= 10);
        // All four hardness levels present.
        let levels: HashSet<_> = c.examples.iter().map(|e| e.hardness).collect();
        assert_eq!(levels.len(), 4);
        // Both join and non-join scenarios present.
        assert!(c.examples.iter().any(|e| e.is_join));
        assert!(c.examples.iter().any(|e| !e.is_join));
    }

    #[test]
    fn examples_execute_on_their_database() {
        let c = corpus();
        for e in &c.examples {
            let db = c.catalog.database(&e.db).unwrap();
            let r = nl2vis_query::execute(&e.vql, db).unwrap();
            assert!(!r.rows.is_empty(), "example {} empty", e.id);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.nl, y.nl);
            assert_eq!(x.vql, y.vql);
        }
    }

    #[test]
    fn in_domain_split_ratios() {
        let c = corpus();
        let s = c.split_in_domain(3);
        let n = c.examples.len();
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), n);
        assert!((s.train.len() as f64 / n as f64 - 0.7).abs() < 0.05);
        // No overlap.
        let all: HashSet<_> = s.train.iter().chain(&s.valid).chain(&s.test).collect();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn cross_domain_split_isolates_databases() {
        let c = corpus();
        let s = c.split_cross_domain(3);
        let db_of = |id: &usize| c.example(*id).unwrap().db.clone();
        let train_dbs: HashSet<_> = s.train.iter().map(db_of).collect();
        let test_dbs: HashSet<_> = s.test.iter().map(db_of).collect();
        assert!(
            train_dbs.is_disjoint(&test_dbs),
            "cross-domain split leaks databases"
        );
        assert!(!test_dbs.is_empty());
    }

    #[test]
    fn in_domain_split_shares_databases() {
        // Sanity check that in-domain really is the leaky setting the paper
        // describes for prior work.
        let c = corpus();
        let s = c.split_in_domain(3);
        let db_of = |id: &usize| c.example(*id).unwrap().db.clone();
        let train_dbs: HashSet<_> = s.train.iter().map(db_of).collect();
        let test_dbs: HashSet<_> = s.test.iter().map(db_of).collect();
        assert!(!train_dbs.is_disjoint(&test_dbs));
    }
}
