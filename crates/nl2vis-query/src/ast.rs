//! The VQL abstract syntax tree.
//!
//! The shape follows Table 1 of the paper: a query always selects an X
//! expression and a Y expression, renders them with one of four chart types,
//! and may filter (`WHERE` with `AND`/`OR` and nested subqueries), join one
//! extra table, bin a temporal column, group (for aggregation and for
//! stack/color series), and order the output.

use nl2vis_data::value::Date;
use std::fmt;

/// The four chart types of the paper's VQL (`bar`, `pie`, `line`, `scatter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChartType {
    /// Vertical bar chart.
    Bar,
    /// Pie chart.
    Pie,
    /// Line chart.
    Line,
    /// Scatter plot.
    Scatter,
}

impl ChartType {
    /// Lowercase keyword as it appears in VQL text.
    pub fn keyword(self) -> &'static str {
        match self {
            ChartType::Bar => "bar",
            ChartType::Pie => "pie",
            ChartType::Line => "line",
            ChartType::Scatter => "scatter",
        }
    }

    /// All chart types.
    pub fn all() -> [ChartType; 4] {
        [
            ChartType::Bar,
            ChartType::Pie,
            ChartType::Line,
            ChartType::Scatter,
        ]
    }

    /// Parses a chart-type keyword (case-insensitive).
    pub fn from_keyword(s: &str) -> Option<ChartType> {
        match s.to_ascii_lowercase().as_str() {
            "bar" => Some(ChartType::Bar),
            "pie" => Some(ChartType::Pie),
            "line" => Some(ChartType::Line),
            "scatter" => Some(ChartType::Scatter),
            _ => None,
        }
    }
}

impl fmt::Display for ChartType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Aggregation functions allowed on the Y expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Uppercase keyword (`COUNT`, `SUM`, ...).
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parses an aggregate keyword (case-insensitive).
    pub fn from_keyword(s: &str) -> Option<AggFunc> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" | "MEAN" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A (possibly table-qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table qualifier (`technician.name` vs `name`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn new(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// An item in the `SELECT` clause: a bare column or an aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelectExpr {
    /// A plain column reference.
    Column(ColumnRef),
    /// An aggregate; `arg == None` means `COUNT(*)`.
    Agg {
        /// Aggregation function.
        func: AggFunc,
        /// Aggregated column, `None` for `COUNT(*)`.
        arg: Option<ColumnRef>,
    },
}

impl SelectExpr {
    /// The column this expression reads, if any.
    pub fn column(&self) -> Option<&ColumnRef> {
        match self {
            SelectExpr::Column(c) => Some(c),
            SelectExpr::Agg { arg, .. } => arg.as_ref(),
        }
    }

    /// Is this an aggregate expression?
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectExpr::Agg { .. })
    }

    /// A display label for result columns and axis titles.
    pub fn label(&self) -> String {
        match self {
            SelectExpr::Column(c) => c.column.clone(),
            SelectExpr::Agg { func, arg: Some(c) } => {
                format!("{}({})", func.keyword().to_ascii_lowercase(), c.column)
            }
            SelectExpr::Agg { func, arg: None } => {
                format!("{}(*)", func.keyword().to_ascii_lowercase())
            }
        }
    }
}

impl fmt::Display for SelectExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectExpr::Column(c) => write!(f, "{c}"),
            SelectExpr::Agg { func, arg: Some(c) } => write!(f, "{func}({c})"),
            SelectExpr::Agg { func, arg: None } => write!(f, "{func}(*)"),
        }
    }
}

/// Temporal binning units for the `BIN ... BY ...` transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinUnit {
    /// Calendar year.
    Year,
    /// Calendar month (year-month).
    Month,
    /// Day of week.
    Weekday,
    /// Calendar quarter (year-quarter).
    Quarter,
}

impl BinUnit {
    /// Lowercase keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            BinUnit::Year => "year",
            BinUnit::Month => "month",
            BinUnit::Weekday => "weekday",
            BinUnit::Quarter => "quarter",
        }
    }

    /// Parses a bin-unit keyword.
    pub fn from_keyword(s: &str) -> Option<BinUnit> {
        match s.to_ascii_lowercase().as_str() {
            "year" => Some(BinUnit::Year),
            "month" => Some(BinUnit::Month),
            "weekday" => Some(BinUnit::Weekday),
            "quarter" => Some(BinUnit::Quarter),
            _ => None,
        }
    }

    /// All bin units.
    pub fn all() -> [BinUnit; 4] {
        [
            BinUnit::Year,
            BinUnit::Month,
            BinUnit::Weekday,
            BinUnit::Quarter,
        ]
    }
}

/// The `BIN <col> BY <unit>` transform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bin {
    /// Binned (temporal) column.
    pub column: ColumnRef,
    /// Bin granularity.
    pub unit: BinUnit,
}

/// Comparison operators in `WHERE` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Operator text.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal.
    Text(String),
    /// `true` / `false`.
    Bool(bool),
    /// Date literal (written as a quoted `YYYY-MM-DD` string).
    Date(Date),
}

impl Literal {
    /// Converts to a runtime [`nl2vis_data::Value`].
    pub fn to_value(&self) -> nl2vis_data::Value {
        use nl2vis_data::Value;
        match self {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Text(s) => Value::Text(s.clone()),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Date(d) => Value::Date(*d),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Text(s) => write!(f, "\"{}\"", s.replace('"', "\\\"")),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Date(d) => write!(f, "\"{d}\""),
        }
    }
}

/// A nested data subquery usable on the right-hand side of `IN` / `NOT IN`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubQuery {
    /// Selected column.
    pub select: ColumnRef,
    /// Source table.
    pub from: String,
    /// Optional filter.
    pub filter: Option<Box<Predicate>>,
}

/// A `WHERE` predicate with `AND`/`OR` combinators and nested subqueries.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col OP literal`
    Cmp {
        /// Compared column.
        col: ColumnRef,
        /// Operator.
        op: CmpOp,
        /// Literal value.
        value: Literal,
    },
    /// `col IN (SELECT ...)` or `col NOT IN (SELECT ...)`
    InSubquery {
        /// Tested column.
        col: ColumnRef,
        /// True for `NOT IN`.
        negated: bool,
        /// The subquery.
        subquery: SubQuery,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for a comparison.
    pub fn cmp(col: ColumnRef, op: CmpOp, value: Literal) -> Predicate {
        Predicate::Cmp { col, op, value }
    }

    /// Number of atomic conditions (for hardness scoring).
    pub fn atom_count(&self) -> usize {
        match self {
            Predicate::Cmp { .. } | Predicate::InSubquery { .. } => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.atom_count() + b.atom_count(),
        }
    }

    /// Does this predicate contain a nested subquery?
    pub fn has_subquery(&self) -> bool {
        match self {
            Predicate::Cmp { .. } => false,
            Predicate::InSubquery { .. } => true,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.has_subquery() || b.has_subquery(),
        }
    }
}

/// The `JOIN <table> ON <left> = <right>` clause (VQL joins at most one
/// extra table, matching nvBench's join scenarios).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Join {
    /// Joined table.
    pub table: String,
    /// Left join key (from the `FROM` table).
    pub left: ColumnRef,
    /// Right join key (from the joined table).
    pub right: ColumnRef,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

impl SortDir {
    /// Uppercase keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            SortDir::Asc => "ASC",
            SortDir::Desc => "DESC",
        }
    }
}

/// What the `ORDER BY` clause sorts on. VQL queries order either the X axis
/// or the Y axis; a raw column reference resolves to one of these axes
/// during canonicalization (Fig. 5 of the paper treats aliased axis orders
/// as equivalent).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OrderTarget {
    /// Order by the X expression.
    X,
    /// Order by the Y expression.
    Y,
    /// Order by a named column (resolved to X/Y by `canon`).
    Column(ColumnRef),
}

/// The `ORDER BY` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderBy {
    /// Axis or column to order by.
    pub target: OrderTarget,
    /// Direction.
    pub dir: SortDir,
}

/// A complete VQL query (the root AST node).
#[derive(Debug, Clone, PartialEq)]
pub struct VqlQuery {
    /// Chart type (`VISUALIZE`).
    pub chart: ChartType,
    /// X expression (first `SELECT` item).
    pub x: SelectExpr,
    /// Y expression (second `SELECT` item).
    pub y: SelectExpr,
    /// Source table (`FROM`).
    pub from: String,
    /// Optional join.
    pub join: Option<Join>,
    /// Optional filter (`WHERE`).
    pub filter: Option<Predicate>,
    /// Optional temporal binning (`BIN x BY unit`).
    pub bin: Option<Bin>,
    /// Grouping columns (`GROUP BY a` or `GROUP BY a , b`): the first is the
    /// aggregation key (normally the X column), an optional second is the
    /// series/color key that turns a bar into a stacked bar or a scatter
    /// into a grouping scatter.
    pub group_by: Vec<ColumnRef>,
    /// Optional ordering.
    pub order: Option<OrderBy>,
}

impl VqlQuery {
    /// Creates the minimal query: `VISUALIZE \<chart\> SELECT \<x\>, \<y\> FROM
    /// \<table\>`.
    pub fn new(
        chart: ChartType,
        x: SelectExpr,
        y: SelectExpr,
        from: impl Into<String>,
    ) -> VqlQuery {
        VqlQuery {
            chart,
            x,
            y,
            from: from.into(),
            join: None,
            filter: None,
            bin: None,
            group_by: Vec::new(),
            order: None,
        }
    }

    /// The color/series column if the query has a second grouping key.
    pub fn color(&self) -> Option<&ColumnRef> {
        self.group_by.get(1)
    }

    /// Does this query involve more than one table (the paper's "join"
    /// scenario)?
    pub fn is_join(&self) -> bool {
        self.join.is_some()
    }

    /// Extended chart-type label that distinguishes stacked bars and
    /// grouping scatters (the "SB"/"GS" categories of Fig. 13).
    pub fn extended_chart_label(&self) -> &'static str {
        match (self.chart, self.color().is_some()) {
            (ChartType::Bar, true) => "stacked bar",
            (ChartType::Scatter, true) => "grouping scatter",
            (ChartType::Line, true) => "grouping line",
            (ChartType::Bar, false) => "bar",
            (ChartType::Pie, _) => "pie",
            (ChartType::Line, false) => "line",
            (ChartType::Scatter, false) => "scatter",
        }
    }

    /// A rough hardness score following nvBench's easy/medium/hard/extra
    /// taxonomy: counts of operators beyond the core skeleton.
    pub fn hardness_score(&self) -> usize {
        let mut score = 0;
        if self.y.is_aggregate() {
            score += 1;
        }
        if self.join.is_some() {
            score += 2;
        }
        if let Some(f) = &self.filter {
            score += f.atom_count();
            if f.has_subquery() {
                score += 2;
            }
        }
        if self.bin.is_some() {
            score += 1;
        }
        if self.color().is_some() {
            score += 1;
        }
        if self.order.is_some() {
            score += 1;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> VqlQuery {
        VqlQuery::new(
            ChartType::Bar,
            SelectExpr::Column(ColumnRef::new("name")),
            SelectExpr::Agg {
                func: AggFunc::Count,
                arg: Some(ColumnRef::new("name")),
            },
            "technician",
        )
    }

    #[test]
    fn chart_keywords_roundtrip() {
        for c in ChartType::all() {
            assert_eq!(ChartType::from_keyword(c.keyword()), Some(c));
        }
        assert_eq!(ChartType::from_keyword("BAR"), Some(ChartType::Bar));
        assert_eq!(ChartType::from_keyword("donut"), None);
    }

    #[test]
    fn agg_keywords_roundtrip() {
        for a in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_keyword(a.keyword()), Some(a));
        }
        assert_eq!(AggFunc::from_keyword("mean"), Some(AggFunc::Avg));
    }

    #[test]
    fn select_expr_labels() {
        let e = SelectExpr::Agg {
            func: AggFunc::Count,
            arg: Some(ColumnRef::new("name")),
        };
        assert_eq!(e.label(), "count(name)");
        assert_eq!(
            SelectExpr::Agg {
                func: AggFunc::Count,
                arg: None
            }
            .label(),
            "count(*)"
        );
        assert_eq!(SelectExpr::Column(ColumnRef::new("x")).label(), "x");
    }

    #[test]
    fn predicate_atom_count() {
        let p = Predicate::And(
            Box::new(Predicate::cmp(
                ColumnRef::new("a"),
                CmpOp::Gt,
                Literal::Int(1),
            )),
            Box::new(Predicate::Or(
                Box::new(Predicate::cmp(
                    ColumnRef::new("b"),
                    CmpOp::Eq,
                    Literal::Int(2),
                )),
                Box::new(Predicate::cmp(
                    ColumnRef::new("c"),
                    CmpOp::Lt,
                    Literal::Int(3),
                )),
            )),
        );
        assert_eq!(p.atom_count(), 3);
        assert!(!p.has_subquery());
    }

    #[test]
    fn extended_chart_labels() {
        let mut q = base();
        assert_eq!(q.extended_chart_label(), "bar");
        q.group_by = vec![ColumnRef::new("name"), ColumnRef::new("team")];
        assert_eq!(q.extended_chart_label(), "stacked bar");
        q.chart = ChartType::Scatter;
        assert_eq!(q.extended_chart_label(), "grouping scatter");
    }

    #[test]
    fn hardness_monotone() {
        let simple = base();
        let mut complex = base();
        complex.filter = Some(Predicate::cmp(
            ColumnRef::new("team"),
            CmpOp::Ne,
            Literal::Text("NYY".into()),
        ));
        complex.order = Some(OrderBy {
            target: OrderTarget::X,
            dir: SortDir::Asc,
        });
        complex.join = Some(Join {
            table: "machine".into(),
            left: ColumnRef::qualified("technician", "id"),
            right: ColumnRef::qualified("machine", "tech_id"),
        });
        assert!(complex.hardness_score() > simple.hardness_score());
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Int(5).to_string(), "5");
        assert_eq!(Literal::Float(2.5).to_string(), "2.5");
        assert_eq!(Literal::Float(2.0).to_string(), "2.0");
        assert_eq!(Literal::Text("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(
            Literal::Date(Date::new(2020, 1, 2).unwrap()).to_string(),
            "\"2020-01-02\""
        );
    }
}
