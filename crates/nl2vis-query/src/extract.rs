//! Pulling VQL text out of free-form model completions.
//!
//! Completions are not queries: a model may echo the prompt, prepend
//! chain-of-thought prose, or answer with a bare `VISUALIZE ...` line. The
//! extraction rule lives here — next to the parser it feeds — so every
//! consumer (the pipeline, the eval scorer, the serving-stack validation
//! gate) agrees byte-for-byte on what the model's query *was*.

/// Extracts the VQL text from a model completion: the text after a `VQL:`
/// marker when present, else the first line starting with `VISUALIZE`.
pub fn extract_vql(completion: &str) -> Option<&str> {
    if let Some(pos) = completion.rfind("VQL:") {
        let rest = completion[pos + 4..].trim();
        if !rest.is_empty() {
            return Some(rest.lines().next().unwrap().trim());
        }
    }
    completion
        .lines()
        .map(str::trim)
        .find(|l| l.to_ascii_uppercase().starts_with("VISUALIZE"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_the_last_vql_marker() {
        let c = "VQL: VISUALIZE bar SELECT a , b FROM t\nVQL: VISUALIZE pie SELECT c , d FROM u";
        assert_eq!(extract_vql(c), Some("VISUALIZE pie SELECT c , d FROM u"));
    }

    #[test]
    fn falls_back_to_a_visualize_line() {
        let c = "Sure! Here is the query:\n  visualize bar select a , b from t";
        assert_eq!(extract_vql(c), Some("visualize bar select a , b from t"));
    }

    #[test]
    fn prose_without_a_query_yields_none() {
        assert_eq!(extract_vql("I cannot answer that."), None);
        assert_eq!(extract_vql("VQL:"), None);
    }
}
