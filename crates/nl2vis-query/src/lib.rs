//! The **VQL** (Visualization Query Language) implementation.
//!
//! VQL is the flat, sequence-friendly visualization query language the paper
//! adopts from DeepEye / nvBench (Table 1 of the paper). A query looks like:
//!
//! ```text
//! VISUALIZE bar
//! SELECT name , COUNT(name)
//! FROM technician
//! WHERE team != "NYY"
//! GROUP BY name
//! ORDER BY name ASC
//! ```
//!
//! This crate provides:
//!
//! - [`ast`]: the abstract syntax tree ([`VqlQuery`] and
//!   friends), including the `JOIN`, `BIN`, grouping/color, `AND`/`OR`
//!   predicate and nested-subquery forms of the paper's grammar;
//! - [`lexer`] / [`parser`]: a hand-written tokenizer and recursive-descent
//!   parser with positioned errors;
//! - [`printer`]: the canonical textual rendering (parse ∘ print = id);
//! - [`canon`]: AST canonicalization used by the Exact-Accuracy metric;
//! - [`bind`]: semantic resolution of table/column references against a
//!   [`Database`](nl2vis_data::Database);
//! - [`exec`]: the query executor (filter, join, bin, group, aggregate,
//!   order) producing a [`ResultSet`];
//! - [`component`]: decomposition of a query into the visual-part /
//!   data-part components used by the paper's failure analysis (Fig. 11);
//! - [`extract`]: pulling the VQL text out of a free-form model completion
//!   (shared by the pipeline, the eval scorer, and the serving-stack
//!   validation gate);
//! - [`sql`]: VQL → SQL translation (the nvBench lineage), for running
//!   generated queries on a real engine.

pub mod ast;
pub mod bind;
pub mod canon;
pub mod component;
pub mod error;
pub mod exec;
pub mod extract;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sql;

pub use ast::{
    AggFunc, Bin, BinUnit, ChartType, CmpOp, ColumnRef, Join, Literal, OrderBy, OrderTarget,
    Predicate, SelectExpr, SortDir, SubQuery, VqlQuery,
};
pub use error::{CheckStage, QueryError};
pub use exec::{execute, ResultSet};
pub use extract::extract_vql;
pub use parser::parse;
pub use sql::to_sql;
