//! Semantic binding: resolving a parsed [`VqlQuery`] against a
//! [`Database`], producing typed column addresses the executor can use and
//! rejecting queries that reference unknown or ambiguous names.

use crate::ast::*;
use crate::component::Component;
use crate::error::QueryError;
use nl2vis_data::value::DataType;
use nl2vis_data::{Database, Table};

/// A resolved column address: (source index, column index). Source 0 is the
/// `FROM` table, source 1 the `JOIN` table when present.
pub type ColAddr = (usize, usize);

/// A bound select expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Plain column.
    Column(ColAddr),
    /// Aggregate; `None` address means `COUNT(*)`.
    Agg(AggFunc, Option<ColAddr>),
}

impl BoundExpr {
    /// The column address this expression reads, if any.
    pub fn addr(&self) -> Option<ColAddr> {
        match self {
            BoundExpr::Column(a) => Some(*a),
            BoundExpr::Agg(_, a) => *a,
        }
    }

    /// Is this an aggregate?
    pub fn is_aggregate(&self) -> bool {
        matches!(self, BoundExpr::Agg(..))
    }
}

/// A query bound to a concrete database.
#[derive(Debug)]
pub struct BoundQuery<'a> {
    /// The original AST.
    pub query: &'a VqlQuery,
    /// Source tables: `[from]` or `[from, join]`.
    pub sources: Vec<&'a Table>,
    /// Bound X expression.
    pub x: BoundExpr,
    /// Bound Y expression.
    pub y: BoundExpr,
    /// Join key addresses (left in source 0, right in source 1).
    pub join_keys: Option<(ColAddr, ColAddr)>,
    /// Bound bin column.
    pub bin: Option<(ColAddr, BinUnit)>,
    /// Bound color/series column (second GROUP BY key).
    pub color: Option<ColAddr>,
}

/// Binds a query against a database.
pub fn bind<'a>(query: &'a VqlQuery, db: &'a Database) -> Result<BoundQuery<'a>, QueryError> {
    let from = db
        .table(&query.from)
        .map_err(|_| QueryError::UnknownTable(query.from.clone()))?;
    let mut sources = vec![from];
    let mut join_keys = None;

    if let Some(j) = &query.join {
        let joined = db
            .table(&j.table)
            .map_err(|_| QueryError::UnknownTable(j.table.clone()))?;
        sources.push(joined);
        let left = resolve(&sources, &j.left).map_err(|e| e.in_component(Component::TableJoin))?;
        let right =
            resolve(&sources, &j.right).map_err(|e| e.in_component(Component::TableJoin))?;
        // Normalize so the left key addresses source 0 and the right key
        // source 1, regardless of how the author wrote the ON clause.
        let (l, r) = if left.0 == 0 && right.0 == 1 {
            (left, right)
        } else if left.0 == 1 && right.0 == 0 {
            (right, left)
        } else {
            return Err(QueryError::AmbiguousColumn(format!(
                "join keys must come from both tables: {} = {}",
                j.left, j.right
            ))
            .in_component(Component::TableJoin));
        };
        join_keys = Some((l, r));
    }

    let x = bind_expr(&sources, &query.x).map_err(|e| e.in_component(Component::AxisX))?;
    let y = bind_expr(&sources, &query.y).map_err(|e| e.in_component(Component::AxisY))?;

    let bin = match &query.bin {
        Some(b) => {
            let addr = resolve(&sources, &b.column).map_err(|e| e.in_component(Component::Bin))?;
            let dtype = column_type(&sources, addr);
            if dtype != DataType::Date {
                return Err(QueryError::NotTemporal(b.column.to_string()));
            }
            Some((addr, b.unit))
        }
        None => None,
    };

    // The first GROUP BY key must resolve (it is normally the X column); the
    // optional second key is the color/series column.
    for g in &query.group_by {
        resolve(&sources, g).map_err(|e| e.in_component(Component::Group))?;
    }
    let color = match query.group_by.get(1) {
        Some(c) => Some(resolve(&sources, c).map_err(|e| e.in_component(Component::Group))?),
        None => None,
    };

    // Order target column, when named explicitly, must resolve.
    if let Some(OrderBy {
        target: OrderTarget::Column(c),
        ..
    }) = &query.order
    {
        resolve(&sources, c).map_err(|e| e.in_component(Component::Order))?;
    }

    Ok(BoundQuery {
        query,
        sources,
        x,
        y,
        join_keys,
        bin,
        color,
    })
}

fn bind_expr(sources: &[&Table], expr: &SelectExpr) -> Result<BoundExpr, QueryError> {
    match expr {
        SelectExpr::Column(c) => Ok(BoundExpr::Column(resolve(sources, c)?)),
        SelectExpr::Agg { func, arg } => {
            let addr = match arg {
                Some(c) => {
                    let a = resolve(sources, c)?;
                    if matches!(func, AggFunc::Sum | AggFunc::Avg)
                        && !column_type(sources, a).is_numeric()
                    {
                        return Err(QueryError::NotNumeric {
                            column: c.to_string(),
                            agg: func.keyword(),
                        });
                    }
                    Some(a)
                }
                None => None,
            };
            Ok(BoundExpr::Agg(*func, addr))
        }
    }
}

/// Resolves a column reference against the sources.
pub fn resolve(sources: &[&Table], c: &ColumnRef) -> Result<ColAddr, QueryError> {
    match &c.table {
        Some(t) => {
            let src = sources
                .iter()
                .position(|s| s.def.name.eq_ignore_ascii_case(t))
                .ok_or_else(|| QueryError::UnknownTable(t.clone()))?;
            let col = sources[src]
                .def
                .column_index(&c.column)
                .ok_or_else(|| QueryError::UnknownColumn(c.to_string()))?;
            Ok((src, col))
        }
        None => {
            let mut found = None;
            for (si, s) in sources.iter().enumerate() {
                if let Some(ci) = s.def.column_index(&c.column) {
                    if found.is_some() {
                        return Err(QueryError::AmbiguousColumn(c.column.clone()));
                    }
                    found = Some((si, ci));
                }
            }
            found.ok_or_else(|| QueryError::UnknownColumn(c.column.clone()))
        }
    }
}

/// Declared type at an address.
pub fn column_type(sources: &[&Table], addr: ColAddr) -> DataType {
    sources[addr.0].def.columns[addr.1].dtype
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
    use nl2vis_data::value::DataType::*;

    fn db() -> Database {
        let mut s = DatabaseSchema::new("hr", "business");
        s.tables.push(TableDef::new(
            "employee",
            vec![
                ColumnDef::new("emp_id", Int),
                ColumnDef::new("name", Text),
                ColumnDef::new("salary", Float),
                ColumnDef::new("hired", Date),
                ColumnDef::new("dept_id", Int),
            ],
        ));
        s.tables.push(TableDef::new(
            "department",
            vec![
                ColumnDef::new("dept_id", Int),
                ColumnDef::new("dept_name", Text),
            ],
        ));
        s.foreign_keys.push(ForeignKey::new(
            "employee",
            "dept_id",
            "department",
            "dept_id",
        ));
        Database::new(s)
    }

    #[test]
    fn binds_simple_query() {
        let d = db();
        let q = parse("VISUALIZE bar SELECT name , COUNT(name) FROM employee").unwrap();
        let b = bind(&q, &d).unwrap();
        assert_eq!(b.x, BoundExpr::Column((0, 1)));
        assert_eq!(b.y, BoundExpr::Agg(AggFunc::Count, Some((0, 1))));
    }

    #[test]
    fn binds_join_and_normalizes_key_order() {
        let d = db();
        for src in [
            "VISUALIZE bar SELECT dept_name , COUNT(name) FROM employee JOIN department ON employee.dept_id = department.dept_id",
            "VISUALIZE bar SELECT dept_name , COUNT(name) FROM employee JOIN department ON department.dept_id = employee.dept_id",
        ] {
            let q = parse(src).unwrap();
            let b = bind(&q, &d).unwrap();
            let (l, r) = b.join_keys.unwrap();
            assert_eq!(l.0, 0);
            assert_eq!(r.0, 1);
        }
    }

    #[test]
    fn ambiguous_unqualified_column() {
        let d = db();
        let q = parse(
            "VISUALIZE bar SELECT dept_id , COUNT(name) FROM employee JOIN department ON employee.dept_id = department.dept_id",
        )
        .unwrap();
        let e = bind(&q, &d).unwrap_err();
        assert_eq!(e.component(), Some(Component::AxisX));
        assert!(matches!(
            &e,
            QueryError::In { source, .. } if matches!(&**source, QueryError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_names_rejected() {
        let d = db();
        let q = parse("VISUALIZE bar SELECT nope , COUNT(nope) FROM employee").unwrap();
        let e = bind(&q, &d).unwrap_err();
        assert_eq!(e.component(), Some(Component::AxisX));
        let q = parse("VISUALIZE bar SELECT name , COUNT(name) FROM nope").unwrap();
        let e = bind(&q, &d).unwrap_err();
        assert!(matches!(e, QueryError::UnknownTable(_)));
        assert_eq!(e.component(), Some(Component::TableJoin));
    }

    #[test]
    fn sum_on_text_rejected() {
        let d = db();
        let q = parse("VISUALIZE bar SELECT name , SUM(name) FROM employee").unwrap();
        let e = bind(&q, &d).unwrap_err();
        assert_eq!(e.component(), Some(Component::AxisY));
        assert!(matches!(
            &e,
            QueryError::In { source, .. } if matches!(&**source, QueryError::NotNumeric { .. })
        ));
    }

    #[test]
    fn bin_requires_date() {
        let d = db();
        let ok =
            parse("VISUALIZE line SELECT hired , COUNT(hired) FROM employee BIN hired BY year")
                .unwrap();
        assert!(bind(&ok, &d).is_ok());
        let bad = parse("VISUALIZE line SELECT name , COUNT(name) FROM employee BIN name BY year")
            .unwrap();
        assert!(matches!(bind(&bad, &d), Err(QueryError::NotTemporal(_))));
    }

    #[test]
    fn count_star_binds() {
        let d = db();
        let q = parse("VISUALIZE bar SELECT name , COUNT(*) FROM employee").unwrap();
        let b = bind(&q, &d).unwrap();
        assert_eq!(b.y, BoundExpr::Agg(AggFunc::Count, None));
    }

    #[test]
    fn color_group_binds() {
        let d = db();
        let q = parse(
            "VISUALIZE bar SELECT dept_name , COUNT(name) FROM employee JOIN department ON employee.dept_id = department.dept_id GROUP BY dept_name , employee.name",
        )
        .unwrap();
        let b = bind(&q, &d).unwrap();
        assert_eq!(b.color, Some((0, 1)));
    }
}
