//! Query-layer errors: lexing, parsing, binding and execution.

use crate::component::Component;
use std::fmt;

/// Which check of the query pipeline rejected the query.
///
/// Escalation predicates in the serving stack key off this: a [`Syntax`]
/// failure means the completion was unparseable, while [`Binding`] and
/// [`Execution`] failures mean the model produced a well-formed query that
/// references the schema wrongly or breaks at runtime — different failure
/// taxonomies in the paper's Fig. 11 analysis, and different routing signals.
///
/// [`Syntax`]: CheckStage::Syntax
/// [`Binding`]: CheckStage::Binding
/// [`Execution`]: CheckStage::Execution
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckStage {
    /// The text did not lex or parse as VQL.
    Syntax,
    /// The query parsed but a table/column reference did not resolve
    /// (or resolved to an incompatible type) against the database schema.
    Binding,
    /// The query bound but failed while executing against the data.
    Execution,
}

impl fmt::Display for CheckStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckStage::Syntax => "syntax",
            CheckStage::Binding => "binding",
            CheckStage::Execution => "execution",
        })
    }
}

/// Errors raised while lexing, parsing, binding or executing VQL.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Tokenizer failure.
    Lex {
        /// Byte offset.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Parser failure.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Description (expected/found).
        message: String,
    },
    /// A table reference did not resolve.
    UnknownTable(String),
    /// A column reference did not resolve.
    UnknownColumn(String),
    /// A column reference was ambiguous between joined tables.
    AmbiguousColumn(String),
    /// A non-numeric column was summed/averaged.
    NotNumeric {
        /// Column name.
        column: String,
        /// Aggregate attempted.
        agg: &'static str,
    },
    /// `BIN` applied to a non-date column.
    NotTemporal(String),
    /// Execution-time type error in a comparison.
    Incomparable {
        /// Column name.
        column: String,
        /// Literal rendered.
        literal: String,
    },
    /// Underlying data-layer error.
    Data(nl2vis_data::DataError),
    /// An error attributed to a specific query component (clause), so
    /// callers can tell *where* a well-formed query went wrong.
    In {
        /// The clause/component the failure occurred in.
        component: Component,
        /// The underlying failure.
        source: Box<QueryError>,
    },
}

impl QueryError {
    /// The check stage this error belongs to.
    pub fn stage(&self) -> CheckStage {
        match self {
            QueryError::Lex { .. } | QueryError::Parse { .. } => CheckStage::Syntax,
            QueryError::UnknownTable(_)
            | QueryError::UnknownColumn(_)
            | QueryError::AmbiguousColumn(_)
            | QueryError::NotNumeric { .. }
            | QueryError::NotTemporal(_) => CheckStage::Binding,
            QueryError::Incomparable { .. } | QueryError::Data(_) => CheckStage::Execution,
            QueryError::In { source, .. } => source.stage(),
        }
    }

    /// The query component the failure occurred in, when known.
    ///
    /// Explicit [`QueryError::In`] attribution wins; otherwise a couple of
    /// variants imply their clause by construction.
    pub fn component(&self) -> Option<Component> {
        match self {
            QueryError::In { component, .. } => Some(*component),
            QueryError::UnknownTable(_) => Some(Component::TableJoin),
            QueryError::NotTemporal(_) => Some(Component::Bin),
            _ => None,
        }
    }

    /// Attributes this error to `component`, unless it already carries one
    /// (the innermost attribution — closest to the raise site — wins).
    pub fn in_component(self, component: Component) -> QueryError {
        match self {
            QueryError::In { .. } => self,
            other => QueryError::In {
                component,
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            QueryError::NotNumeric { column, agg } => {
                write!(f, "cannot apply {agg} to non-numeric column `{column}`")
            }
            QueryError::NotTemporal(c) => write!(f, "cannot BIN non-date column `{c}`"),
            QueryError::Incomparable { column, literal } => {
                write!(f, "cannot compare column `{column}` with literal {literal}")
            }
            QueryError::Data(e) => write!(f, "data error: {e}"),
            QueryError::In { component, source } => write!(f, "in {component}: {source}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<nl2vis_data::DataError> for QueryError {
    fn from(e: nl2vis_data::DataError) -> QueryError {
        QueryError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(QueryError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(QueryError::Parse {
            offset: 4,
            message: "x".into()
        }
        .to_string()
        .contains("byte 4"));
        let e: QueryError = nl2vis_data::DataError::UnknownTable("q".into()).into();
        assert!(matches!(e, QueryError::Data(_)));
    }

    #[test]
    fn stages_partition_the_variants() {
        assert_eq!(
            QueryError::Parse {
                offset: 0,
                message: "x".into()
            }
            .stage(),
            CheckStage::Syntax
        );
        assert_eq!(
            QueryError::UnknownColumn("c".into()).stage(),
            CheckStage::Binding
        );
        assert_eq!(
            QueryError::Incomparable {
                column: "c".into(),
                literal: "1".into()
            }
            .stage(),
            CheckStage::Execution
        );
    }

    #[test]
    fn component_attribution_wraps_once_and_wins() {
        let e = QueryError::UnknownColumn("c".into())
            .in_component(Component::AxisX)
            .in_component(Component::Where);
        assert_eq!(e.component(), Some(Component::AxisX));
        assert_eq!(e.stage(), CheckStage::Binding);
        assert_eq!(e.to_string(), "in axis-x: unknown column `c`");
    }

    #[test]
    fn implied_components_without_wrapping() {
        assert_eq!(
            QueryError::UnknownTable("t".into()).component(),
            Some(Component::TableJoin)
        );
        assert_eq!(
            QueryError::NotTemporal("d".into()).component(),
            Some(Component::Bin)
        );
        assert_eq!(QueryError::UnknownColumn("c".into()).component(), None);
    }
}
