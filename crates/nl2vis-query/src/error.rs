//! Query-layer errors: lexing, parsing, binding and execution.

use std::fmt;

/// Errors raised while lexing, parsing, binding or executing VQL.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Tokenizer failure.
    Lex {
        /// Byte offset.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Parser failure.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Description (expected/found).
        message: String,
    },
    /// A table reference did not resolve.
    UnknownTable(String),
    /// A column reference did not resolve.
    UnknownColumn(String),
    /// A column reference was ambiguous between joined tables.
    AmbiguousColumn(String),
    /// A non-numeric column was summed/averaged.
    NotNumeric {
        /// Column name.
        column: String,
        /// Aggregate attempted.
        agg: &'static str,
    },
    /// `BIN` applied to a non-date column.
    NotTemporal(String),
    /// Execution-time type error in a comparison.
    Incomparable {
        /// Column name.
        column: String,
        /// Literal rendered.
        literal: String,
    },
    /// Underlying data-layer error.
    Data(nl2vis_data::DataError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            QueryError::NotNumeric { column, agg } => {
                write!(f, "cannot apply {agg} to non-numeric column `{column}`")
            }
            QueryError::NotTemporal(c) => write!(f, "cannot BIN non-date column `{c}`"),
            QueryError::Incomparable { column, literal } => {
                write!(f, "cannot compare column `{column}` with literal {literal}")
            }
            QueryError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<nl2vis_data::DataError> for QueryError {
    fn from(e: nl2vis_data::DataError) -> QueryError {
        QueryError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(QueryError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(QueryError::Parse {
            offset: 4,
            message: "x".into()
        }
        .to_string()
        .contains("byte 4"));
        let e: QueryError = nl2vis_data::DataError::UnknownTable("q".into()).into();
        assert!(matches!(e, QueryError::Data(_)));
    }
}
