//! Recursive-descent parser for VQL.
//!
//! The clause order after `FROM` is tolerant (`WHERE`, `BIN`, `GROUP BY`,
//! `ORDER BY` may appear in any order, each at most once) because model
//! outputs in the paper's study vary in clause ordering while remaining
//! semantically unambiguous.

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{lex, Token, TokenKind};
use nl2vis_data::value::Date;

/// Parses a VQL query from text.
pub fn parse(input: &str) -> Result<VqlQuery, QueryError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_word(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), QueryError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, QueryError> {
        match self.peek() {
            TokenKind::Word(w) if !is_reserved(w) => {
                let w = w.clone();
                self.bump();
                Ok(w)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    fn query(&mut self) -> Result<VqlQuery, QueryError> {
        self.expect_keyword("VISUALIZE")?;
        let chart_word = self.ident("chart type")?;
        let chart = ChartType::from_keyword(&chart_word)
            .ok_or_else(|| self.err(format!("unknown chart type `{chart_word}`")))?;
        self.expect_keyword("SELECT")?;
        let x = self.select_expr()?;
        self.expect_kind(&TokenKind::Comma, "`,` between SELECT items")?;
        let y = self.select_expr()?;
        self.expect_keyword("FROM")?;
        let from = self.ident("table name")?;

        let mut q = VqlQuery::new(chart, x, y, from);

        // JOIN comes immediately after FROM when present.
        if self.eat_keyword("JOIN") {
            let table = self.ident("joined table name")?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            self.expect_kind(&TokenKind::Eq, "`=` in join condition")?;
            let right = self.column_ref()?;
            q.join = Some(Join { table, left, right });
        }

        // Remaining clauses in any order, each at most once.
        loop {
            if self.peek().is_word("WHERE") {
                if q.filter.is_some() {
                    return Err(self.err("duplicate WHERE clause"));
                }
                self.bump();
                q.filter = Some(self.predicate()?);
            } else if self.peek().is_word("BIN") {
                if q.bin.is_some() {
                    return Err(self.err("duplicate BIN clause"));
                }
                self.bump();
                let column = self.column_ref()?;
                self.expect_keyword("BY")?;
                let unit_word = self.ident("bin unit")?;
                let unit = BinUnit::from_keyword(&unit_word)
                    .ok_or_else(|| self.err(format!("unknown bin unit `{unit_word}`")))?;
                q.bin = Some(Bin { column, unit });
            } else if self.peek().is_word("GROUP") {
                if !q.group_by.is_empty() {
                    return Err(self.err("duplicate GROUP BY clause"));
                }
                self.bump();
                self.expect_keyword("BY")?;
                q.group_by.push(self.column_ref()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                    q.group_by.push(self.column_ref()?);
                }
            } else if self.peek().is_word("ORDER") {
                if q.order.is_some() {
                    return Err(self.err("duplicate ORDER BY clause"));
                }
                self.bump();
                self.expect_keyword("BY")?;
                let target = self.order_target()?;
                let dir = if self.eat_keyword("ASC") {
                    SortDir::Asc
                } else if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    SortDir::Asc
                };
                q.order = Some(OrderBy { target, dir });
            } else {
                break;
            }
        }
        Ok(q)
    }

    fn select_expr(&mut self) -> Result<SelectExpr, QueryError> {
        if let TokenKind::Word(w) = self.peek() {
            if let Some(func) = AggFunc::from_keyword(w) {
                if matches!(self.peek2(), TokenKind::LParen) {
                    self.bump(); // agg keyword
                    self.bump(); // (
                    let arg = if matches!(self.peek(), TokenKind::Star) {
                        self.bump();
                        None
                    } else {
                        Some(self.column_ref()?)
                    };
                    self.expect_kind(&TokenKind::RParen, "`)` after aggregate argument")?;
                    return Ok(SelectExpr::Agg { func, arg });
                }
            }
        }
        Ok(SelectExpr::Column(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, QueryError> {
        let first = self.ident("column name")?;
        if matches!(self.peek(), TokenKind::Dot) {
            self.bump();
            let column = self.ident("column name after `.`")?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::new(first))
        }
    }

    fn order_target(&mut self) -> Result<OrderTarget, QueryError> {
        // Bare X / Y axis keywords, else a column reference.
        if let TokenKind::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case("x") && !matches!(self.peek2(), TokenKind::Dot) {
                self.bump();
                return Ok(OrderTarget::X);
            }
            if w.eq_ignore_ascii_case("y") && !matches!(self.peek2(), TokenKind::Dot) {
                self.bump();
                return Ok(OrderTarget::Y);
            }
        }
        // Aggregate expression in ORDER BY (e.g. `ORDER BY COUNT(name) DESC`)
        // is resolved to the Y axis.
        if let TokenKind::Word(w) = self.peek() {
            if AggFunc::from_keyword(w).is_some() && matches!(self.peek2(), TokenKind::LParen) {
                self.bump();
                self.bump();
                if matches!(self.peek(), TokenKind::Star) {
                    self.bump();
                } else {
                    self.column_ref()?;
                }
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                return Ok(OrderTarget::Y);
            }
        }
        Ok(OrderTarget::Column(self.column_ref()?))
    }

    fn predicate(&mut self) -> Result<Predicate, QueryError> {
        self.or_term()
    }

    fn or_term(&mut self) -> Result<Predicate, QueryError> {
        let mut left = self.and_term()?;
        while self.eat_keyword("OR") {
            let right = self.and_term()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_term(&mut self) -> Result<Predicate, QueryError> {
        let mut left = self.atom()?;
        while self.eat_keyword("AND") {
            let right = self.atom()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Predicate, QueryError> {
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let inner = self.predicate()?;
            self.expect_kind(&TokenKind::RParen, "`)` closing predicate group")?;
            return Ok(inner);
        }
        let col = self.column_ref()?;
        // IN / NOT IN subquery.
        let negated = if self.peek().is_word("NOT") {
            self.bump();
            self.expect_keyword("IN")?;
            true
        } else if self.peek().is_word("IN") {
            self.bump();
            false
        } else {
            let op = match self.bump() {
                TokenKind::Eq => CmpOp::Eq,
                TokenKind::Ne => CmpOp::Ne,
                TokenKind::Lt => CmpOp::Lt,
                TokenKind::Le => CmpOp::Le,
                TokenKind::Gt => CmpOp::Gt,
                TokenKind::Ge => CmpOp::Ge,
                _ => return Err(self.err("expected comparison operator")),
            };
            let value = self.literal()?;
            return Ok(Predicate::Cmp { col, op, value });
        };
        self.expect_kind(&TokenKind::LParen, "`(` opening subquery")?;
        self.expect_keyword("SELECT")?;
        let select = self.column_ref()?;
        self.expect_keyword("FROM")?;
        let from = self.ident("subquery table")?;
        let filter = if self.eat_keyword("WHERE") {
            Some(Box::new(self.predicate()?))
        } else {
            None
        };
        self.expect_kind(&TokenKind::RParen, "`)` closing subquery")?;
        Ok(Predicate::InSubquery {
            col,
            negated,
            subquery: SubQuery {
                select,
                from,
                filter,
            },
        })
    }

    fn literal(&mut self) -> Result<Literal, QueryError> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Literal::Int(i)),
            TokenKind::Float(f) => Ok(Literal::Float(f)),
            TokenKind::Str(s) => {
                // Quoted ISO dates become Date literals so date comparisons
                // work against Date columns.
                if let Some(d) = Date::parse(&s) {
                    Ok(Literal::Date(d))
                } else {
                    Ok(Literal::Text(s))
                }
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("true") => Ok(Literal::Bool(true)),
            TokenKind::Word(w) if w.eq_ignore_ascii_case("false") => Ok(Literal::Bool(false)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected literal value"))
            }
        }
    }
}

/// Words that cannot be used as bare identifiers.
fn is_reserved(w: &str) -> bool {
    const RESERVED: &[&str] = &[
        "VISUALIZE",
        "SELECT",
        "FROM",
        "JOIN",
        "ON",
        "WHERE",
        "BIN",
        "BY",
        "GROUP",
        "ORDER",
        "AND",
        "OR",
        "NOT",
        "IN",
        "ASC",
        "DESC",
    ];
    RESERVED.iter().any(|r| r.eq_ignore_ascii_case(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example_1() {
        // Example 1 from the paper (§2.1).
        let q = parse(
            "VISUALIZE bar SELECT name , COUNT(name) FROM technician \
             WHERE team != \"NYY\" GROUP BY name ORDER BY name ASC",
        )
        .unwrap();
        assert_eq!(q.chart, ChartType::Bar);
        assert_eq!(q.x, SelectExpr::Column(ColumnRef::new("name")));
        assert_eq!(
            q.y,
            SelectExpr::Agg {
                func: AggFunc::Count,
                arg: Some(ColumnRef::new("name"))
            }
        );
        assert_eq!(q.from, "technician");
        assert!(matches!(
            q.filter,
            Some(Predicate::Cmp { op: CmpOp::Ne, .. })
        ));
        assert_eq!(q.group_by, vec![ColumnRef::new("name")]);
        assert_eq!(
            q.order,
            Some(OrderBy {
                target: OrderTarget::Column(ColumnRef::new("name")),
                dir: SortDir::Asc
            })
        );
    }

    #[test]
    fn parses_join() {
        let q = parse(
            "VISUALIZE scatter SELECT age , salary FROM employee \
             JOIN department ON employee.dept_id = department.id",
        )
        .unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.table, "department");
        assert_eq!(j.left, ColumnRef::qualified("employee", "dept_id"));
        assert_eq!(j.right, ColumnRef::qualified("department", "id"));
    }

    #[test]
    fn parses_bin() {
        let q = parse("VISUALIZE line SELECT date , COUNT(date) FROM payments BIN date BY month")
            .unwrap();
        let b = q.bin.unwrap();
        assert_eq!(b.unit, BinUnit::Month);
        assert_eq!(b.column, ColumnRef::new("date"));
    }

    #[test]
    fn parses_count_star() {
        let q = parse("VISUALIZE bar SELECT city , COUNT(*) FROM shops").unwrap();
        assert_eq!(
            q.y,
            SelectExpr::Agg {
                func: AggFunc::Count,
                arg: None
            }
        );
    }

    #[test]
    fn parses_and_or_precedence() {
        let q =
            parse("VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 OR y < 2 AND z = 3").unwrap();
        // AND binds tighter: Or(x>1, And(y<2, z=3))
        match q.filter.unwrap() {
            Predicate::Or(l, r) => {
                assert!(matches!(*l, Predicate::Cmp { .. }));
                assert!(matches!(*r, Predicate::And(_, _)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_parenthesized_predicate() {
        let q = parse("VISUALIZE bar SELECT a , SUM(b) FROM t WHERE ( x > 1 OR y < 2 ) AND z = 3")
            .unwrap();
        assert!(matches!(q.filter.unwrap(), Predicate::And(_, _)));
    }

    #[test]
    fn parses_subquery() {
        let q = parse(
            "VISUALIZE pie SELECT team , COUNT(team) FROM player WHERE team NOT IN \
             ( SELECT team FROM champion WHERE year >= 2010 ) GROUP BY team",
        )
        .unwrap();
        match q.filter.unwrap() {
            Predicate::InSubquery {
                negated, subquery, ..
            } => {
                assert!(negated);
                assert_eq!(subquery.from, "champion");
                assert!(subquery.filter.is_some());
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_group_with_color() {
        let q =
            parse("VISUALIZE bar SELECT year , SUM(sales) FROM s GROUP BY year , region").unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.color(), Some(&ColumnRef::new("region")));
    }

    #[test]
    fn order_variants() {
        let q = parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY x DESC").unwrap();
        assert_eq!(
            q.order.unwrap(),
            OrderBy {
                target: OrderTarget::X,
                dir: SortDir::Desc
            }
        );
        let q = parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY COUNT(a) DESC").unwrap();
        assert_eq!(q.order.unwrap().target, OrderTarget::Y);
        let q = parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY a").unwrap();
        assert_eq!(q.order.unwrap().dir, SortDir::Asc);
    }

    #[test]
    fn clause_order_tolerant() {
        let q =
            parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY a ASC GROUP BY a WHERE b = 1")
                .unwrap();
        assert!(q.filter.is_some());
        assert!(q.order.is_some());
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("visualize BAR select a , count(a) from t group by a").is_ok());
    }

    #[test]
    fn date_literals_detected() {
        let q = parse("VISUALIZE line SELECT d , COUNT(d) FROM t WHERE d >= '2020-01-01'").unwrap();
        match q.filter.unwrap() {
            Predicate::Cmp {
                value: Literal::Date(d),
                ..
            } => assert_eq!(d.year, 2020),
            other => panic!("expected date literal, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "SELECT a , b FROM t",
            "VISUALIZE donut SELECT a , b FROM t",
            "VISUALIZE bar SELECT a FROM t",
            "VISUALIZE bar SELECT a , b",
            "VISUALIZE bar SELECT a , b FROM t WHERE",
            "VISUALIZE bar SELECT a , b FROM t WHERE x >",
            "VISUALIZE bar SELECT a , b FROM t GROUP a",
            "VISUALIZE bar SELECT a , b FROM t trailing junk",
            "VISUALIZE bar SELECT a , b FROM t WHERE x = 1 WHERE y = 2",
            "VISUALIZE bar SELECT a , b FROM t BIN d BY decade",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn duplicate_clause_rejected() {
        assert!(parse("VISUALIZE bar SELECT a , b FROM t GROUP BY a GROUP BY b").is_err());
        assert!(parse("VISUALIZE bar SELECT a , b FROM t ORDER BY a ORDER BY b").is_err());
    }

    #[test]
    fn qualified_columns_in_select() {
        let q = parse("VISUALIZE bar SELECT emp.name , COUNT(emp.name) FROM emp").unwrap();
        assert_eq!(q.x, SelectExpr::Column(ColumnRef::qualified("emp", "name")));
    }
}
