//! Canonical textual rendering of VQL ASTs.
//!
//! `parse(print(q)) == q` for every well-formed query (verified by property
//! tests in `tests/`). Printing is the bridge between model outputs (which
//! are text) and the evaluation pipeline (which works on ASTs).

use crate::ast::*;

/// Prints a query in canonical clause order:
/// `VISUALIZE … SELECT … FROM … [JOIN …] [WHERE …] [BIN …] [GROUP BY …]
/// [ORDER BY …]`.
pub fn print(q: &VqlQuery) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("VISUALIZE ");
    out.push_str(q.chart.keyword());
    out.push_str(" SELECT ");
    out.push_str(&q.x.to_string());
    out.push_str(" , ");
    out.push_str(&q.y.to_string());
    out.push_str(" FROM ");
    out.push_str(&q.from);
    if let Some(j) = &q.join {
        out.push_str(" JOIN ");
        out.push_str(&j.table);
        out.push_str(" ON ");
        out.push_str(&j.left.to_string());
        out.push_str(" = ");
        out.push_str(&j.right.to_string());
    }
    if let Some(f) = &q.filter {
        out.push_str(" WHERE ");
        print_predicate(&mut out, f, false);
    }
    if let Some(b) = &q.bin {
        out.push_str(" BIN ");
        out.push_str(&b.column.to_string());
        out.push_str(" BY ");
        out.push_str(b.unit.keyword());
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(" , ");
            }
            out.push_str(&g.to_string());
        }
    }
    if let Some(o) = &q.order {
        out.push_str(" ORDER BY ");
        match &o.target {
            OrderTarget::X => out.push('x'),
            OrderTarget::Y => out.push('y'),
            OrderTarget::Column(c) => out.push_str(&c.to_string()),
        }
        out.push(' ');
        out.push_str(o.dir.keyword());
    }
    out
}

/// Prints the *sketch* of a query: the clause-keyword skeleton with slots,
/// used as the intermediate representation of the paper's chain-of-thought
/// strategy (§5.3.2) and by the simulated LLM's demonstration learning.
/// Example: `VISUALIZE[bar] SELECT[col,COUNT] FROM WHERE[1] GROUP ORDER`.
pub fn print_sketch(q: &VqlQuery) -> String {
    let mut out = String::new();
    out.push_str("VISUALIZE[");
    out.push_str(q.chart.keyword());
    out.push_str("] SELECT[");
    out.push_str(match &q.x {
        SelectExpr::Column(_) => "col",
        SelectExpr::Agg { .. } => "agg",
    });
    out.push(',');
    out.push_str(match &q.y {
        SelectExpr::Column(_) => "col",
        SelectExpr::Agg { func, .. } => func.keyword(),
    });
    out.push_str("] FROM");
    if q.join.is_some() {
        out.push_str(" JOIN");
    }
    if let Some(f) = &q.filter {
        out.push_str(&format!(
            " WHERE[{}{}]",
            f.atom_count(),
            if f.has_subquery() { ",nested" } else { "" }
        ));
    }
    if let Some(b) = &q.bin {
        out.push_str(&format!(" BIN[{}]", b.unit.keyword()));
    }
    if !q.group_by.is_empty() {
        out.push_str(if q.group_by.len() > 1 {
            " GROUP[color]"
        } else {
            " GROUP"
        });
    }
    if let Some(o) = &q.order {
        out.push_str(&format!(" ORDER[{}]", o.dir.keyword()));
    }
    out
}

fn print_predicate(out: &mut String, p: &Predicate, parenthesize_or: bool) {
    match p {
        Predicate::Cmp { col, op, value } => {
            out.push_str(&col.to_string());
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            out.push_str(&value.to_string());
        }
        Predicate::InSubquery {
            col,
            negated,
            subquery,
        } => {
            out.push_str(&col.to_string());
            out.push_str(if *negated {
                " NOT IN ( SELECT "
            } else {
                " IN ( SELECT "
            });
            out.push_str(&subquery.select.to_string());
            out.push_str(" FROM ");
            out.push_str(&subquery.from);
            if let Some(f) = &subquery.filter {
                out.push_str(" WHERE ");
                print_predicate(out, f, false);
            }
            out.push_str(" )");
        }
        Predicate::And(a, b) => {
            // AND binds tighter than OR, so OR children need parens; a
            // right-nested AND needs parens too or it would reparse
            // left-associated.
            print_predicate(out, a, true);
            out.push_str(" AND ");
            if matches!(**b, Predicate::And(..)) {
                out.push_str("( ");
                print_predicate(out, b, false);
                out.push_str(" )");
            } else {
                print_predicate(out, b, true);
            }
        }
        Predicate::Or(a, b) => {
            if parenthesize_or {
                out.push_str("( ");
            }
            print_predicate(out, a, false);
            out.push_str(" OR ");
            if matches!(**b, Predicate::Or(..)) {
                out.push_str("( ");
                print_predicate(out, b, false);
                out.push_str(" )");
            } else {
                print_predicate(out, b, false);
            }
            if parenthesize_or {
                out.push_str(" )");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let q = parse(src).unwrap();
        let printed = print(&q);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(q, reparsed, "roundtrip failed for `{src}` -> `{printed}`");
    }

    #[test]
    fn roundtrips() {
        for src in [
            "VISUALIZE bar SELECT name , COUNT(name) FROM technician WHERE team != \"NYY\" GROUP BY name ORDER BY name ASC",
            "VISUALIZE line SELECT date , COUNT(date) FROM payments BIN date BY month",
            "VISUALIZE scatter SELECT age , salary FROM emp JOIN dept ON emp.d = dept.id",
            "VISUALIZE pie SELECT t , COUNT(t) FROM p WHERE t NOT IN ( SELECT t FROM c WHERE y >= 2010 ) GROUP BY t",
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE ( x > 1 OR y < 2 ) AND z = 3",
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 OR y < 2 AND z = 3",
            "VISUALIZE bar SELECT year , SUM(sales) FROM s GROUP BY year , region",
            "VISUALIZE bar SELECT a , COUNT(*) FROM t ORDER BY y DESC",
            "VISUALIZE bar SELECT a , COUNT(a) FROM t WHERE n = 2.5",
            "VISUALIZE line SELECT d , COUNT(d) FROM t WHERE d >= \"2020-01-01\"",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn or_inside_and_gets_parens() {
        let q =
            parse("VISUALIZE bar SELECT a , b FROM t WHERE ( x = 1 OR y = 2 ) AND z = 3").unwrap();
        let printed = print(&q);
        assert!(
            printed.contains("( x = 1 OR y = 2 ) AND z = 3"),
            "{printed}"
        );
    }

    #[test]
    fn canonical_clause_order() {
        let q =
            parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY a ASC GROUP BY a WHERE b = 1")
                .unwrap();
        let printed = print(&q);
        let w = printed.find(" WHERE ").unwrap();
        let g = printed.find(" GROUP BY ").unwrap();
        let o = printed.find(" ORDER BY ").unwrap();
        assert!(w < g && g < o, "{printed}");
    }

    #[test]
    fn sketch_shapes() {
        let q = parse(
            "VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE a = 1 AND b = 2 GROUP BY name ORDER BY name DESC",
        )
        .unwrap();
        assert_eq!(
            print_sketch(&q),
            "VISUALIZE[bar] SELECT[col,COUNT] FROM WHERE[2] GROUP ORDER[DESC]"
        );
        let q = parse(
            "VISUALIZE scatter SELECT a , b FROM t JOIN u ON t.k = u.k WHERE k IN ( SELECT k FROM u ) GROUP BY a , c",
        )
        .unwrap();
        assert_eq!(
            print_sketch(&q),
            "VISUALIZE[scatter] SELECT[col,col] FROM JOIN WHERE[1,nested] GROUP[color]"
        );
    }

    #[test]
    fn axis_order_targets_print() {
        let q = parse("VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY x DESC").unwrap();
        assert!(print(&q).ends_with("ORDER BY x DESC"));
    }
}
