//! The VQL tokenizer.
//!
//! Keywords are case-insensitive; identifiers keep their original spelling
//! (binding is case-insensitive). Strings accept single or double quotes —
//! LLM outputs in the paper's logs mix both — with backslash escapes.

use crate::error::QueryError;

/// A lexical token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keyword-ness is decided by the parser).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` (also `<>`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Is this a word equal (case-insensitively) to `kw`?
    pub fn is_word(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes VQL source text.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let c = bytes[pos];
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let offset = pos;
        let kind = match c {
            b'(' => {
                pos += 1;
                TokenKind::LParen
            }
            b')' => {
                pos += 1;
                TokenKind::RParen
            }
            b',' => {
                pos += 1;
                TokenKind::Comma
            }
            b'.' if !bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                pos += 1;
                TokenKind::Dot
            }
            b'*' => {
                pos += 1;
                TokenKind::Star
            }
            b'=' => {
                pos += 1;
                // Tolerate `==` (common LLM slip).
                if bytes.get(pos) == Some(&b'=') {
                    pos += 1;
                }
                TokenKind::Eq
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    TokenKind::Ne
                } else {
                    return Err(QueryError::Lex {
                        offset,
                        message: "expected `!=`".to_string(),
                    });
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    TokenKind::Le
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    TokenKind::Ne
                } else {
                    pos += 1;
                    TokenKind::Lt
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    TokenKind::Ge
                } else {
                    pos += 1;
                    TokenKind::Gt
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(QueryError::Lex {
                                offset,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                        Some(&b) if b == quote => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            pos += 1;
                            match bytes.get(pos) {
                                Some(&e) => {
                                    s.push(match e {
                                        b'n' => '\n',
                                        b't' => '\t',
                                        other => other as char,
                                    });
                                    pos += 1;
                                }
                                None => {
                                    return Err(QueryError::Lex {
                                        offset,
                                        message: "unterminated escape".to_string(),
                                    })
                                }
                            }
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let rest = &input[pos..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            pos += ch.len_utf8();
                        }
                    }
                }
                TokenKind::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let start = pos;
                if c == b'-' {
                    pos += 1;
                    if !bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                        return Err(QueryError::Lex {
                            offset,
                            message: "expected digits after `-`".to_string(),
                        });
                    }
                }
                while bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                    pos += 1;
                }
                let mut is_float = false;
                if bytes.get(pos) == Some(&b'.')
                    && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    pos += 1;
                    while bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                        pos += 1;
                    }
                }
                let text = &input[start..pos];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| QueryError::Lex {
                        offset,
                        message: format!("invalid float `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| QueryError::Lex {
                        offset,
                        message: format!("invalid integer `{text}`"),
                    })?)
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while bytes
                    .get(pos)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    pos += 1;
                }
                TokenKind::Word(input[start..pos].to_string())
            }
            _ => {
                return Err(QueryError::Lex {
                    offset,
                    message: format!(
                        "unexpected character `{}`",
                        input[pos..].chars().next().unwrap()
                    ),
                })
            }
        };
        tokens.push(Token { kind, offset });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_punctuation() {
        let ks = kinds("VISUALIZE bar SELECT name , COUNT(name)");
        assert_eq!(ks[0], TokenKind::Word("VISUALIZE".into()));
        assert_eq!(ks[1], TokenKind::Word("bar".into()));
        assert_eq!(ks[3], TokenKind::Word("name".into()));
        assert_eq!(ks[4], TokenKind::Comma);
        assert_eq!(ks[6], TokenKind::LParen);
        assert_eq!(ks[8], TokenKind::RParen);
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != < <= > >= <> =="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 -7 3.5 -0.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualified_name_dot() {
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Dot,
                TokenKind::Word("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds("\"NYY\""),
            vec![TokenKind::Str("NYY".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("'NYY'"),
            vec![TokenKind::Str("NYY".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds(r#""a\"b""#),
            vec![TokenKind::Str("a\"b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"abc"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(lex("a # b"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("!x"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unicode_in_string() {
        assert_eq!(
            kinds("'héllo😀'"),
            vec![TokenKind::Str("héllo😀".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("ab cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
    }
}
