//! The VQL executor.
//!
//! Executes a bound query over an in-memory [`Database`] through the classic
//! pipeline: scan (+ hash join) → filter → bin → group/aggregate → order →
//! project, producing a [`ResultSet`] with the x/y(/series) data the chart
//! renderers consume and the Execution-Accuracy metric compares.

use crate::ast::*;
use crate::bind::{bind, column_type, BoundExpr, ColAddr};
use crate::component::Component;
use crate::error::QueryError;
use nl2vis_data::{Database, Value};
use std::collections::{HashMap, HashSet};

/// One output point: x value, y value, optional series (color) value.
pub type ResultRow = (Value, Value, Option<Value>);

/// The executed result of a VQL query: the data behind the chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Chart type the query asked for.
    pub chart: ChartType,
    /// Axis label for X.
    pub x_label: String,
    /// Axis label for Y.
    pub y_label: String,
    /// Series label, when the query has a color grouping.
    pub series_label: Option<String>,
    /// Output rows.
    pub rows: Vec<ResultRow>,
    /// Whether the query specified an explicit ordering (affects how results
    /// are compared: ordered results compare as sequences).
    pub ordered: bool,
}

impl ResultSet {
    /// Execution-accuracy comparison, following the paper's definition
    /// (§4.2): two results match when the chart type matches and the
    /// x/y(/series) data coincide. Column *names* are ignored (Fig. 5 treats
    /// `COUNT(date)` and an aliased `date_count` as equivalent). Unordered
    /// results compare as multisets; if both queries ordered their output,
    /// the sequences must agree.
    pub fn same_data(&self, other: &ResultSet) -> bool {
        if self.chart != other.chart {
            return false;
        }
        if self.rows.len() != other.rows.len() {
            return false;
        }
        if self.ordered && other.ordered {
            self.canonical_rows(false) == other.canonical_rows(false)
        } else {
            self.canonical_rows(true) == other.canonical_rows(true)
        }
    }

    /// Rows with floats rounded for robust comparison; optionally sorted to
    /// make the comparison order-insensitive.
    fn canonical_rows(&self, sort: bool) -> Vec<(Value, Value, Option<Value>)> {
        let mut rows: Vec<_> = self
            .rows
            .iter()
            .map(|(x, y, s)| (round_value(x), round_value(y), s.as_ref().map(round_value)))
            .collect();
        if sort {
            rows.sort();
        }
        rows
    }

    /// Renders the result as an aligned text table (used by examples and the
    /// simulated code-interpreter's inspection step).
    pub fn to_text_table(&self) -> String {
        let mut header = vec![self.x_label.clone(), self.y_label.clone()];
        if let Some(s) = &self.series_label {
            header.push(s.clone());
        }
        let mut rows: Vec<Vec<String>> = vec![header];
        for (x, y, s) in &self.rows {
            let mut row = vec![x.render(), y.render()];
            if self.series_label.is_some() {
                row.push(s.as_ref().map(Value::render).unwrap_or_default());
            }
            rows.push(row);
        }
        let ncols = rows[0].len();
        let widths: Vec<usize> = (0..ncols)
            .map(|c| rows.iter().map(|r| r[c].chars().count()).max().unwrap_or(0))
            .collect();
        rows.iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(c, cell)| format!("{cell:<width$}", width = widths[c]))
                    .collect::<Vec<_>>()
                    .join("  ")
                    .trim_end()
                    .to_string()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn round_value(v: &Value) -> Value {
    match v {
        Value::Float(f) => {
            if f.is_nan() {
                // Canonical NaN: `Value`'s float order is bitwise
                // (`total_cmp`), under which -NaN and +NaN are distinct —
                // two NaN results that differ only in sign bit or payload
                // must still compare as the same data.
                return Value::Float(f64::NAN);
            }
            let scaled = (f * 1e9).round() / 1e9;
            if scaled.fract() == 0.0 && scaled.abs() < 1e15 {
                Value::Int(scaled as i64)
            } else {
                Value::Float(scaled)
            }
        }
        Value::Int(i) => Value::Int(*i),
        other => other.clone(),
    }
}

/// Parses nothing; executes an already-parsed query against a database.
pub fn execute(query: &VqlQuery, db: &Database) -> Result<ResultSet, QueryError> {
    let bound = bind(query, db)?;

    // 1. Scan / join into combined rows. Each combined row stores one slice
    //    of values per source.
    let combined: Vec<[usize; 2]> = match bound.join_keys {
        None => (0..bound.sources[0].len())
            .map(|i| [i, usize::MAX])
            .collect(),
        Some((l, r)) => {
            // Hash join: build on the joined (right) table.
            let right = bound.sources[1];
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for (ri, row) in right.rows().iter().enumerate() {
                let key = &row[r.1];
                if !key.is_null() {
                    index.entry(key.clone()).or_default().push(ri);
                }
            }
            let mut out = Vec::new();
            for (li, row) in bound.sources[0].rows().iter().enumerate() {
                let key = &row[l.1];
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = index.get(key) {
                    for &ri in matches {
                        out.push([li, ri]);
                    }
                }
            }
            out
        }
    };

    let fetch = |row: &[usize; 2], addr: ColAddr| -> Value {
        bound.sources[addr.0].rows()[row[addr.0]][addr.1].clone()
    };

    // 2. Filter.
    let filtered: Vec<[usize; 2]> = match &query.filter {
        None => combined,
        Some(pred) => {
            let mut kept = Vec::new();
            for row in combined {
                if eval_predicate(pred, &row, &bound.sources, db)? {
                    kept.push(row);
                }
            }
            kept
        }
    };

    // 3. Compute the X value per row (with binning applied when the binned
    //    column is the X column — the paper's `X' ∈ {X, BIN(X)}`).
    let x_addr = bound.x.addr();
    let x_of = |row: &[usize; 2]| -> Value {
        let raw = x_addr.map(|a| fetch(row, a)).unwrap_or(Value::Null);
        match &bound.bin {
            Some((bin_addr, unit)) if Some(*bin_addr) == x_addr => bin_value(&raw, *unit),
            _ => raw,
        }
    };

    let series_label = query.color().map(|c| c.column.clone());

    // 4. Group / aggregate, or project raw points.
    let mut rows: Vec<ResultRow> = if let BoundExpr::Agg(func, arg) = &bound.y {
        // Group keys: x (binned) plus optional color.
        let mut groups: Vec<(Value, Option<Value>)> = Vec::new();
        let mut group_rows: HashMap<(Value, Option<Value>), Vec<[usize; 2]>> = HashMap::new();
        for row in &filtered {
            let key = (x_of(row), bound.color.map(|c| fetch(row, c)));
            if !group_rows.contains_key(&key) {
                groups.push(key.clone());
            }
            group_rows.entry(key).or_default().push(*row);
        }
        let mut out = Vec::with_capacity(groups.len());
        for key in groups {
            let members = &group_rows[&key];
            let y = aggregate(*func, *arg, members, &bound.sources, fetch)?;
            out.push((key.0, y, key.1));
        }
        out
    } else {
        let y_addr = bound.y.addr().expect("non-aggregate y always has a column");
        filtered
            .iter()
            .map(|row| {
                (
                    x_of(row),
                    fetch(row, y_addr),
                    bound.color.map(|c| fetch(row, c)),
                )
            })
            .collect()
    };

    // 5. Order.
    let ordered = query.order.is_some();
    if let Some(order) = &query.order {
        let sort_on_x = match &order.target {
            OrderTarget::X => true,
            OrderTarget::Y => false,
            OrderTarget::Column(c) => {
                // A named column matching the Y expression's column sorts Y
                // only when Y is *not* an aggregate of the X column; in the
                // usual `SELECT name, COUNT(name) ... ORDER BY name` the
                // intent is the X axis.
                let is_x = query
                    .x
                    .column()
                    .is_some_and(|xc| xc.column.eq_ignore_ascii_case(&c.column));
                let is_plain_y = !query.y.is_aggregate()
                    && query
                        .y
                        .column()
                        .is_some_and(|yc| yc.column.eq_ignore_ascii_case(&c.column));
                !is_plain_y || is_x
            }
        };
        let weekday_x = matches!(bound.bin, Some((_, BinUnit::Weekday)));
        rows.sort_by(|a, b| {
            let (ka, kb) = if sort_on_x {
                (&a.0, &b.0)
            } else {
                (&a.1, &b.1)
            };
            let ord = if sort_on_x && weekday_x {
                weekday_rank(ka).cmp(&weekday_rank(kb))
            } else {
                ka.cmp(kb)
            };
            match order.dir {
                SortDir::Asc => ord,
                SortDir::Desc => ord.reverse(),
            }
        });
    }

    // Labels.
    let x_label = query.x.label();
    let y_label = query.y.label();

    Ok(ResultSet {
        chart: query.chart,
        x_label,
        y_label,
        series_label,
        rows,
        ordered,
    })
}

fn weekday_rank(v: &Value) -> u8 {
    const NAMES: [&str; 7] = [
        "Monday",
        "Tuesday",
        "Wednesday",
        "Thursday",
        "Friday",
        "Saturday",
        "Sunday",
    ];
    match v {
        Value::Text(s) => NAMES
            .iter()
            .position(|n| n == s)
            .map(|i| i as u8)
            .unwrap_or(7),
        _ => 7,
    }
}

/// Applies a temporal bin to a value. Non-date values pass through NULL.
pub fn bin_value(v: &Value, unit: BinUnit) -> Value {
    let Some(d) = v.as_date() else {
        return Value::Null;
    };
    match unit {
        BinUnit::Year => Value::Int(i64::from(d.year)),
        BinUnit::Month => Value::Text(format!("{:04}-{:02}", d.year, d.month)),
        BinUnit::Weekday => Value::Text(d.weekday_name().to_string()),
        BinUnit::Quarter => Value::Text(format!("{:04}-Q{}", d.year, d.quarter())),
    }
}

fn aggregate<F>(
    func: AggFunc,
    arg: Option<ColAddr>,
    members: &[[usize; 2]],
    sources: &[&nl2vis_data::Table],
    fetch: F,
) -> Result<Value, QueryError>
where
    F: Fn(&[usize; 2], ColAddr) -> Value,
{
    match func {
        AggFunc::Count => {
            let n = match arg {
                None => members.len(),
                Some(a) => members.iter().filter(|r| !fetch(r, a).is_null()).count(),
            };
            Ok(Value::Int(n as i64))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let a = arg.expect("binder guarantees SUM/AVG has an argument");
            let mut total = 0.0;
            let mut count = 0usize;
            for r in members {
                let v = fetch(r, a);
                if let Some(x) = v.as_f64() {
                    total += x;
                    count += 1;
                } else if !v.is_null() {
                    return Err(QueryError::NotNumeric {
                        column: sources[a.0].def.columns[a.1].name.clone(),
                        agg: func.keyword(),
                    });
                }
            }
            if count == 0 {
                return Ok(Value::Null);
            }
            let result = if func == AggFunc::Avg {
                total / count as f64
            } else {
                total
            };
            // SUM over an integer column stays integral.
            let int_input = column_type(sources, a) == nl2vis_data::value::DataType::Int;
            if func == AggFunc::Sum && int_input {
                Ok(Value::Int(result as i64))
            } else {
                Ok(Value::Float(result))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let a = arg.expect("binder guarantees MIN/MAX has an argument");
            let mut best: Option<Value> = None;
            for r in members {
                let v = fetch(r, a);
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if (func == AggFunc::Min) == (v < b) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

fn eval_predicate(
    pred: &Predicate,
    row: &[usize; 2],
    sources: &[&nl2vis_data::Table],
    db: &Database,
) -> Result<bool, QueryError> {
    match pred {
        Predicate::And(a, b) => {
            Ok(eval_predicate(a, row, sources, db)? && eval_predicate(b, row, sources, db)?)
        }
        Predicate::Or(a, b) => {
            Ok(eval_predicate(a, row, sources, db)? || eval_predicate(b, row, sources, db)?)
        }
        Predicate::Cmp { col, op, value } => {
            let addr = crate::bind::resolve(sources, col)?;
            let cell = sources[addr.0].rows()[row[addr.0]][addr.1].clone();
            if cell.is_null() {
                return Ok(false); // SQL three-valued logic: NULL never matches.
            }
            let lit = value.to_value();
            // Type-compatibility: text vs non-text comparisons are errors the
            // paper's failure analysis cares about surfacing.
            let comparable = match (&cell, &lit) {
                (Value::Text(_), Value::Text(_)) => true,
                (Value::Date(_), Value::Date(_)) => true,
                (Value::Bool(_), Value::Bool(_)) => true,
                (a, b) if a.as_f64().is_some() && b.as_f64().is_some() => true,
                _ => false,
            };
            if !comparable {
                return Err(QueryError::Incomparable {
                    column: col.to_string(),
                    literal: value.to_string(),
                }
                .in_component(crate::component::Component::Where));
            }
            let ord = cell.cmp(&lit);
            Ok(match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            })
        }
        Predicate::InSubquery {
            col,
            negated,
            subquery,
        } => {
            let addr = crate::bind::resolve(sources, col)?;
            let cell = sources[addr.0].rows()[row[addr.0]][addr.1].clone();
            if cell.is_null() {
                return Ok(false);
            }
            let set = eval_subquery(subquery, db)?;
            let contains = set.contains(&cell);
            Ok(contains != *negated)
        }
    }
}

/// Evaluates a nested data subquery to the set of its selected values.
pub fn eval_subquery(sq: &SubQuery, db: &Database) -> Result<HashSet<Value>, QueryError> {
    let table = db
        .table(&sq.from)
        .map_err(|_| QueryError::UnknownTable(sq.from.clone()).in_component(Component::Subquery))?;
    let sources = vec![table];
    let col = crate::bind::resolve(&sources, &sq.select)
        .map_err(|e| e.in_component(Component::Subquery))?;
    let mut out = HashSet::new();
    for (ri, row) in table.rows().iter().enumerate() {
        let keep = match &sq.filter {
            None => true,
            Some(pred) => eval_predicate(pred, &[ri, usize::MAX], &sources, db)?,
        };
        if keep && !row[col.1].is_null() {
            out.insert(row[col.1].clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nl2vis_data::schema::{ColumnDef, DatabaseSchema, ForeignKey, TableDef};
    use nl2vis_data::value::{DataType::*, Date};

    fn db() -> Database {
        let mut s = DatabaseSchema::new("club", "sports");
        s.tables.push(TableDef::new(
            "technician",
            vec![
                ColumnDef::new("tech_id", Int),
                ColumnDef::new("name", Text),
                ColumnDef::new("team", Text),
                ColumnDef::new("age", Int),
                ColumnDef::new("rating", Float),
                ColumnDef::new("hired", Date),
            ],
        ));
        s.tables.push(TableDef::new(
            "machine",
            vec![
                ColumnDef::new("machine_id", Int),
                ColumnDef::new("tech_id", Int),
                ColumnDef::new("value", Float),
            ],
        ));
        s.foreign_keys.push(ForeignKey::new(
            "machine",
            "tech_id",
            "technician",
            "tech_id",
        ));
        let mut d = Database::new(s);
        let date = |y, m, dd| Value::Date(Date::new(y, m, dd).unwrap());
        let rows: Vec<Vec<Value>> = vec![
            vec![
                1.into(),
                "ann".into(),
                "NYY".into(),
                30.into(),
                4.5.into(),
                date(2020, 1, 6),
            ],
            vec![
                2.into(),
                "bob".into(),
                "BOS".into(),
                35.into(),
                3.0.into(),
                date(2020, 2, 3),
            ],
            vec![
                3.into(),
                "cat".into(),
                "BOS".into(),
                28.into(),
                5.0.into(),
                date(2021, 2, 9),
            ],
            vec![
                4.into(),
                "dan".into(),
                "LAD".into(),
                41.into(),
                2.5.into(),
                date(2021, 7, 5),
            ],
            vec![
                5.into(),
                "eve".into(),
                "BOS".into(),
                35.into(),
                4.0.into(),
                date(2020, 1, 7),
            ],
        ];
        for r in rows {
            d.insert("technician", r).unwrap();
        }
        for (m, t, v) in [(10, 1, 100.0), (11, 2, 50.0), (12, 2, 75.0), (13, 3, 20.0)] {
            d.insert("machine", vec![m.into(), t.into(), v.into()])
                .unwrap();
        }
        d.validate().unwrap();
        d
    }

    fn run(src: &str) -> ResultSet {
        execute(&parse(src).unwrap(), &db()).unwrap()
    }

    #[test]
    fn count_group_by() {
        let r = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY team ASC");
        assert_eq!(
            r.rows,
            vec![
                (Value::from("BOS"), Value::Int(3), None),
                (Value::from("LAD"), Value::Int(1), None),
                (Value::from("NYY"), Value::Int(1), None),
            ]
        );
        assert!(r.ordered);
    }

    #[test]
    fn where_filter() {
        let r = run("VISUALIZE bar SELECT name , age FROM technician WHERE team != \"NYY\" ORDER BY name ASC");
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0].0, Value::from("bob"));
    }

    #[test]
    fn sum_int_stays_int_avg_is_float() {
        let r = run(
            "VISUALIZE bar SELECT team , SUM(age) FROM technician GROUP BY team ORDER BY team ASC",
        );
        assert_eq!(r.rows[0].1, Value::Int(98)); // BOS: 35+28+35
        let r = run(
            "VISUALIZE bar SELECT team , AVG(age) FROM technician GROUP BY team ORDER BY team ASC",
        );
        assert_eq!(r.rows[0].1, Value::Float(98.0 / 3.0));
    }

    #[test]
    fn min_max() {
        let r = run("VISUALIZE bar SELECT team , MAX(rating) FROM technician GROUP BY team ORDER BY team ASC");
        assert_eq!(r.rows[0].1, Value::Float(5.0));
        let r = run(
            "VISUALIZE bar SELECT team , MIN(age) FROM technician GROUP BY team ORDER BY team ASC",
        );
        assert_eq!(r.rows[0].1, Value::Int(28));
    }

    #[test]
    fn implicit_group_by_when_aggregate() {
        // No GROUP BY clause, but COUNT(y) still groups by x.
        let r = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician ORDER BY team ASC");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn join_execution() {
        let r = run(
            "VISUALIZE bar SELECT name , SUM(value) FROM technician JOIN machine ON technician.tech_id = machine.tech_id GROUP BY name ORDER BY name ASC",
        );
        assert_eq!(
            r.rows,
            vec![
                (Value::from("ann"), Value::Float(100.0), None),
                (Value::from("bob"), Value::Float(125.0), None),
                (Value::from("cat"), Value::Float(20.0), None),
            ]
        );
    }

    #[test]
    fn bin_by_year_month_weekday() {
        let r = run("VISUALIZE line SELECT hired , COUNT(hired) FROM technician BIN hired BY year ORDER BY hired ASC");
        assert_eq!(
            r.rows,
            vec![
                (Value::Int(2020), Value::Int(3), None),
                (Value::Int(2021), Value::Int(2), None)
            ]
        );
        let r = run("VISUALIZE line SELECT hired , COUNT(hired) FROM technician BIN hired BY month ORDER BY hired ASC");
        assert_eq!(r.rows[0].0, Value::from("2020-01"));
        let r = run("VISUALIZE bar SELECT hired , COUNT(hired) FROM technician BIN hired BY weekday ORDER BY hired ASC");
        // Mondays: 2020-01-06, 2020-02-03 and 2021-07-05.
        assert_eq!(r.rows[0].0, Value::from("Monday"));
        assert_eq!(r.rows[0].1, Value::Int(3));
    }

    #[test]
    fn weekday_ordering_is_calendar_not_alphabetical() {
        let r = run("VISUALIZE bar SELECT hired , COUNT(hired) FROM technician BIN hired BY weekday ORDER BY hired ASC");
        let labels: Vec<String> = r.rows.iter().map(|(x, _, _)| x.render()).collect();
        // Monday must come before Tuesday even though alphabetically it doesn't.
        let mon = labels.iter().position(|l| l == "Monday").unwrap();
        let tue = labels.iter().position(|l| l == "Tuesday").unwrap();
        assert!(mon < tue);
    }

    #[test]
    fn color_series_grouping() {
        let r = run("VISUALIZE bar SELECT age , COUNT(age) FROM technician GROUP BY age , team ORDER BY age ASC");
        // (35, BOS) has two members (bob, eve).
        assert!(r.rows.iter().any(|(x, y, s)| *x == Value::Int(35)
            && *y == Value::Int(2)
            && *s == Some(Value::from("BOS"))));
        assert_eq!(r.series_label.as_deref(), Some("team"));
    }

    #[test]
    fn subquery_in_and_not_in() {
        let r = run(
            "VISUALIZE bar SELECT name , age FROM technician WHERE tech_id IN ( SELECT tech_id FROM machine WHERE value > 60.0 ) ORDER BY name ASC",
        );
        assert_eq!(r.rows.len(), 2); // ann (100), bob (75)
        let r = run(
            "VISUALIZE bar SELECT name , age FROM technician WHERE tech_id NOT IN ( SELECT tech_id FROM machine ) ORDER BY name ASC",
        );
        let names: Vec<String> = r.rows.iter().map(|(x, _, _)| x.render()).collect();
        assert_eq!(names, vec!["dan", "eve"]);
    }

    #[test]
    fn and_or_semantics() {
        let r = run(
            "VISUALIZE bar SELECT name , age FROM technician WHERE team = \"BOS\" AND age > 30",
        );
        assert_eq!(r.rows.len(), 2);
        let r =
            run("VISUALIZE bar SELECT name , age FROM technician WHERE team = \"LAD\" OR age < 29");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn order_desc_by_y() {
        let r = run(
            "VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY y DESC",
        );
        assert_eq!(r.rows[0].1, Value::Int(3));
    }

    #[test]
    fn order_by_agg_column_name_sorts_y() {
        let r = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY COUNT(team) DESC");
        assert_eq!(r.rows[0].0, Value::from("BOS"));
    }

    #[test]
    fn date_comparison_filter() {
        let r = run("VISUALIZE bar SELECT name , age FROM technician WHERE hired >= \"2021-01-01\" ORDER BY name ASC");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn incomparable_types_error() {
        let e = execute(
            &parse("VISUALIZE bar SELECT name , age FROM technician WHERE name > 5").unwrap(),
            &db(),
        )
        .unwrap_err();
        assert_eq!(e.component(), Some(Component::Where));
        assert_eq!(e.stage(), crate::error::CheckStage::Execution);
        assert!(matches!(
            &e,
            QueryError::In { source, .. } if matches!(&**source, QueryError::Incomparable { .. })
        ));
    }

    #[test]
    fn same_data_ignores_labels_and_order_when_unordered() {
        let a = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team");
        let b = run("VISUALIZE bar SELECT team , COUNT(tech_id) FROM technician GROUP BY team");
        assert!(a.same_data(&b));
        let c = run("VISUALIZE pie SELECT team , COUNT(team) FROM technician GROUP BY team");
        assert!(!a.same_data(&c)); // chart type differs
    }

    #[test]
    fn same_data_respects_explicit_order() {
        let asc = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY team ASC");
        let desc = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY team DESC");
        assert!(!asc.same_data(&desc));
        // But an ordered result still matches an unordered one on data.
        let un = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team");
        assert!(asc.same_data(&un));
    }

    #[test]
    fn float_rounding_in_comparison() {
        let mut a = run("VISUALIZE bar SELECT team , AVG(rating) FROM technician GROUP BY team");
        let b = a.clone();
        // Perturb beyond representation noise but below the rounding grid.
        if let Value::Float(f) = &mut a.rows[0].1 {
            *f += 1e-12;
        }
        assert!(a.same_data(&b));
    }

    /// NaN results must compare as the same data regardless of which NaN
    /// bit pattern each side computed. `Value`'s float order is bitwise
    /// (`total_cmp`), so without canonicalization -NaN and +NaN — or two
    /// payload-differing NaNs — would spuriously fail execution accuracy.
    #[test]
    fn nan_results_are_canonicalized_for_comparison() {
        let base = run("VISUALIZE bar SELECT team , AVG(rating) FROM technician GROUP BY team");
        let mut pos = base.clone();
        let mut neg = base.clone();
        pos.rows[0].1 = Value::Float(f64::NAN);
        neg.rows[0].1 = Value::Float(-f64::NAN);
        assert!(
            pos.same_data(&neg),
            "-NaN and +NaN must canonicalize to the same value"
        );
        assert!(pos.same_data(&pos.clone()));
        // A NaN is still distinct from an actual number.
        assert!(!pos.same_data(&base));
    }

    /// Sorting canonical rows containing NaN must not panic or scramble:
    /// the multiset comparison path sorts with `Value`'s total order.
    #[test]
    fn unordered_comparison_survives_nan_rows() {
        let base = run("VISUALIZE bar SELECT team , AVG(rating) FROM technician GROUP BY team");
        let mut a = base.clone();
        a.rows[0].1 = Value::Float(f64::NAN);
        // A row-order permutation of the same data (NaN included) is still
        // the same unordered result.
        let mut b = a.clone();
        b.rows.rotate_left(1);
        if let Value::Float(f) = &mut b.rows.last_mut().unwrap().1 {
            if f.is_nan() {
                // Flip the rotated NaN's sign: same data, different bits.
                *f = -*f;
            }
        }
        assert!(a.same_data(&b), "rotation must not change unordered data");
    }

    #[test]
    fn text_table_rendering() {
        let r = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team ORDER BY team ASC");
        let t = r.to_text_table();
        assert!(t.starts_with("team"));
        assert!(t.contains("BOS"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn null_never_matches_filter() {
        let mut d = db();
        d.insert(
            "technician",
            vec![
                6.into(),
                "fay".into(),
                Value::Null,
                50.into(),
                Value::Null,
                Value::Null,
            ],
        )
        .unwrap();
        let q =
            parse("VISUALIZE bar SELECT name , age FROM technician WHERE team != \"NYY\"").unwrap();
        let r = execute(&q, &d).unwrap();
        assert!(!r.rows.iter().any(|(x, _, _)| x.render() == "fay"));
    }

    #[test]
    fn scatter_raw_points_no_grouping() {
        let r = run("VISUALIZE scatter SELECT age , rating FROM technician");
        assert_eq!(r.rows.len(), 5);
        assert!(!r.ordered);
    }

    #[test]
    fn empty_table_yields_empty_result() {
        let s = {
            let mut s = DatabaseSchema::new("d", "x");
            s.tables.push(TableDef::new(
                "t",
                vec![ColumnDef::new("a", Text), ColumnDef::new("b", Int)],
            ));
            s
        };
        let d = Database::new(s);
        let r = execute(
            &parse("VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a").unwrap(),
            &d,
        )
        .unwrap();
        assert!(r.rows.is_empty());
        // Non-aggregate over empty table is empty too.
        let r = execute(&parse("VISUALIZE scatter SELECT b , b FROM t").unwrap(), &d).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn all_null_measure_aggregates_to_null_not_panic() {
        let mut s = DatabaseSchema::new("d", "x");
        s.tables.push(TableDef::new(
            "t",
            vec![ColumnDef::new("k", Text), ColumnDef::new("v", Float)],
        ));
        let mut d = Database::new(s);
        d.insert("t", vec!["a".into(), Value::Null]).unwrap();
        d.insert("t", vec!["a".into(), Value::Null]).unwrap();
        let r = execute(
            &parse("VISUALIZE bar SELECT k , SUM(v) FROM t GROUP BY k").unwrap(),
            &d,
        )
        .unwrap();
        assert_eq!(r.rows, vec![(Value::from("a"), Value::Null, None)]);
        let r = execute(
            &parse("VISUALIZE bar SELECT k , MIN(v) FROM t GROUP BY k").unwrap(),
            &d,
        )
        .unwrap();
        assert_eq!(r.rows[0].1, Value::Null);
        // COUNT of an all-null column is 0, not NULL.
        let r = execute(
            &parse("VISUALIZE bar SELECT k , COUNT(v) FROM t GROUP BY k").unwrap(),
            &d,
        )
        .unwrap();
        assert_eq!(r.rows[0].1, Value::Int(0));
    }

    #[test]
    fn join_fan_out_multiplies_rows() {
        // Each technician row joins every matching machine row.
        let r = run(
            "VISUALIZE bar SELECT name , COUNT(machine_id) FROM technician JOIN machine ON technician.tech_id = machine.tech_id GROUP BY name ORDER BY name ASC",
        );
        // bob owns machines 11 and 12.
        let bob = r.rows.iter().find(|(x, _, _)| x.render() == "bob").unwrap();
        assert_eq!(bob.1, Value::Int(2));
        // Technicians without machines are absent (inner join).
        assert!(!r.rows.iter().any(|(x, _, _)| x.render() == "dan"));
    }

    #[test]
    fn quarter_bins_cross_years() {
        let r = run("VISUALIZE bar SELECT hired , COUNT(hired) FROM technician BIN hired BY quarter ORDER BY hired ASC");
        let labels: Vec<String> = r.rows.iter().map(|(x, _, _)| x.render()).collect();
        assert!(labels.contains(&"2020-Q1".to_string()));
        assert!(labels.contains(&"2021-Q1".to_string()));
        // Lexicographic order on yyyy-Qq is chronological.
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn weekday_descending_order() {
        let r = run("VISUALIZE bar SELECT hired , COUNT(hired) FROM technician BIN hired BY weekday ORDER BY hired DESC");
        let ranks: Vec<u8> = r.rows.iter().map(|(x, _, _)| weekday_rank(x)).collect();
        let mut sorted = ranks.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(ranks, sorted, "weekday DESC must be reverse calendar order");
    }

    #[test]
    fn subquery_unknown_table_is_error() {
        let q = parse(
            "VISUALIZE bar SELECT name , age FROM technician WHERE tech_id IN ( SELECT x FROM nonexistent )",
        )
        .unwrap();
        let e = execute(&q, &db()).unwrap_err();
        assert_eq!(e.component(), Some(Component::Subquery));
        assert!(matches!(
            &e,
            QueryError::In { source, .. } if matches!(&**source, QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn count_star_counts_all_rows_per_group() {
        let r = run(
            "VISUALIZE bar SELECT team , COUNT(*) FROM technician GROUP BY team ORDER BY team ASC",
        );
        let total: i64 = r.rows.iter().filter_map(|(_, y, _)| y.as_int()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn group_with_x_and_color_covers_all_rows() {
        let r = run("VISUALIZE bar SELECT team , COUNT(team) FROM technician GROUP BY team , age");
        let total: i64 = r.rows.iter().filter_map(|(_, y, _)| y.as_int()).sum();
        assert_eq!(total, 5, "every row lands in exactly one (team, age) cell");
    }
}
