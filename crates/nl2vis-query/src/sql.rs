//! VQL → SQL translation.
//!
//! VQL descends from NL2SQL (nvBench was synthesized from Spider), and every
//! VQL query has a natural SQL reading: the `VISUALIZE` clause drops (it only
//! affects rendering), `SELECT x, y` keeps its meaning, and `BIN` becomes a
//! date-part expression. This module emits portable SQL:92-style text with
//! `EXTRACT` for date parts, so generated queries can run on a real engine
//! for cross-validation of the built-in executor.

use crate::ast::*;

/// Translates a VQL query into a SQL `SELECT` statement.
///
/// Dialect notes: `BIN ... BY weekday` has no portable SQL:92 form and is
/// emitted using the common `EXTRACT(DOW FROM col)` (PostgreSQL); month and
/// quarter bins concatenate the year so bins do not merge across years,
/// matching the executor's semantics.
pub fn to_sql(q: &VqlQuery) -> String {
    let mut out = String::from("SELECT ");
    out.push_str(&select_item(q, &q.x));
    out.push_str(" AS x, ");
    out.push_str(&select_item(q, &q.y));
    out.push_str(" AS y");
    if let Some(color) = q.color() {
        out.push_str(&format!(", {color} AS series"));
    }
    out.push_str(" FROM ");
    out.push_str(&q.from);
    if let Some(j) = &q.join {
        out.push_str(&format!(" JOIN {} ON {} = {}", j.table, j.left, j.right));
    }
    if let Some(f) = &q.filter {
        out.push_str(" WHERE ");
        out.push_str(&predicate_sql(f));
    }
    if !q.group_by.is_empty() || (q.y.is_aggregate() && q.x.column().is_some()) {
        out.push_str(" GROUP BY ");
        if q.group_by.is_empty() {
            out.push_str(&x_expr(q));
        } else {
            let keys: Vec<String> = q
                .group_by
                .iter()
                .enumerate()
                .map(|(i, g)| {
                    // The first grouping key is the (possibly binned) x.
                    if i == 0 && q.x.column().is_some_and(|xc| xc.column == g.column) {
                        x_expr(q)
                    } else {
                        g.to_string()
                    }
                })
                .collect();
            out.push_str(&keys.join(", "));
        }
    }
    if let Some(o) = &q.order {
        out.push_str(" ORDER BY ");
        out.push_str(&match &o.target {
            OrderTarget::X => "x".to_string(),
            OrderTarget::Y => "y".to_string(),
            OrderTarget::Column(c) => {
                if q.x
                    .column()
                    .is_some_and(|xc| xc.column.eq_ignore_ascii_case(&c.column))
                {
                    "x".to_string()
                } else {
                    c.to_string()
                }
            }
        });
        out.push(' ');
        out.push_str(o.dir.keyword());
    }
    out.push(';');
    out
}

/// The x select item with binning applied.
fn x_expr(q: &VqlQuery) -> String {
    let raw =
        q.x.column()
            .map(ToString::to_string)
            .unwrap_or_else(|| "*".to_string());
    match &q.bin {
        Some(bin) if q.x.column() == Some(&bin.column) => bin_expr(&raw, bin.unit),
        _ => raw,
    }
}

fn bin_expr(col: &str, unit: BinUnit) -> String {
    match unit {
        BinUnit::Year => format!("EXTRACT(YEAR FROM {col})"),
        BinUnit::Month => {
            format!("EXTRACT(YEAR FROM {col}) || '-' || EXTRACT(MONTH FROM {col})")
        }
        BinUnit::Weekday => format!("EXTRACT(DOW FROM {col})"),
        BinUnit::Quarter => {
            format!("EXTRACT(YEAR FROM {col}) || '-Q' || EXTRACT(QUARTER FROM {col})")
        }
    }
}

fn select_item(q: &VqlQuery, e: &SelectExpr) -> String {
    match e {
        SelectExpr::Column(c) => {
            // The x column may be binned.
            if q.x.column() == Some(c) {
                x_expr(q)
            } else {
                c.to_string()
            }
        }
        SelectExpr::Agg { func, arg } => {
            let inner = arg
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "*".to_string());
            format!("{}({inner})", func.keyword())
        }
    }
}

fn predicate_sql(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { col, op, value } => {
            let op_text = match op {
                CmpOp::Ne => "<>".to_string(),
                other => other.symbol().to_string(),
            };
            format!("{col} {op_text} {}", literal_sql(value))
        }
        Predicate::And(a, b) => {
            format!("{} AND {}", group_or(a), group_or(b))
        }
        Predicate::Or(a, b) => {
            format!("{} OR {}", predicate_sql(a), predicate_sql(b))
        }
        Predicate::InSubquery {
            col,
            negated,
            subquery,
        } => {
            let keyword = if *negated { "NOT IN" } else { "IN" };
            let mut inner = format!("SELECT {} FROM {}", subquery.select, subquery.from);
            if let Some(f) = &subquery.filter {
                inner.push_str(&format!(" WHERE {}", predicate_sql(f)));
            }
            format!("{col} {keyword} ({inner})")
        }
    }
}

fn group_or(p: &Predicate) -> String {
    match p {
        Predicate::Or(..) => format!("({})", predicate_sql(p)),
        other => predicate_sql(other),
    }
}

fn literal_sql(l: &Literal) -> String {
    match l {
        Literal::Int(i) => i.to_string(),
        Literal::Float(f) => format!("{f}"),
        Literal::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Literal::Date(d) => format!("DATE '{d}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sql(src: &str) -> String {
        to_sql(&parse(src).unwrap())
    }

    #[test]
    fn paper_example_1() {
        assert_eq!(
            sql("VISUALIZE bar SELECT name , COUNT(name) FROM technician WHERE team != \"NYY\" GROUP BY name ORDER BY name ASC"),
            "SELECT name AS x, COUNT(name) AS y FROM technician WHERE team <> 'NYY' GROUP BY name ORDER BY x ASC;"
        );
    }

    #[test]
    fn join_and_qualifiers() {
        assert_eq!(
            sql("VISUALIZE bar SELECT t.a , SUM(u.v) FROM t JOIN u ON t.k = u.k GROUP BY t.a"),
            "SELECT t.a AS x, SUM(u.v) AS y FROM t JOIN u ON t.k = u.k GROUP BY t.a;"
        );
    }

    #[test]
    fn bin_becomes_extract() {
        assert_eq!(
            sql("VISUALIZE line SELECT d , COUNT(d) FROM t BIN d BY year GROUP BY d"),
            "SELECT EXTRACT(YEAR FROM d) AS x, COUNT(d) AS y FROM t GROUP BY EXTRACT(YEAR FROM d);"
        );
        assert!(
            sql("VISUALIZE line SELECT d , COUNT(d) FROM t BIN d BY month GROUP BY d")
                .contains("EXTRACT(MONTH FROM d)")
        );
        assert!(
            sql("VISUALIZE bar SELECT d , COUNT(d) FROM t BIN d BY weekday GROUP BY d")
                .contains("EXTRACT(DOW FROM d)")
        );
    }

    #[test]
    fn color_adds_series_column_and_group_key() {
        assert_eq!(
            sql("VISUALIZE bar SELECT year , SUM(sales) FROM s GROUP BY year , region"),
            "SELECT year AS x, SUM(sales) AS y, region AS series FROM s GROUP BY year, region;"
        );
    }

    #[test]
    fn predicates_and_literals() {
        let s = sql(
            "VISUALIZE bar SELECT a , COUNT(*) FROM t WHERE ( x > 1 OR y = \"it's\" ) AND z <= 2.5 GROUP BY a",
        );
        assert!(s.contains("(x > 1 OR y = 'it''s') AND z <= 2.5"), "{s}");
        assert!(s.contains("COUNT(*)"));
    }

    #[test]
    fn subquery_and_dates() {
        let s = sql(
            "VISUALIZE pie SELECT t , COUNT(t) FROM p WHERE k NOT IN ( SELECT k FROM c WHERE d >= \"2020-01-01\" ) GROUP BY t",
        );
        assert!(
            s.contains("k NOT IN (SELECT k FROM c WHERE d >= DATE '2020-01-01')"),
            "{s}"
        );
    }

    #[test]
    fn implicit_group_by_for_aggregates() {
        assert_eq!(
            sql("VISUALIZE bar SELECT team , COUNT(team) FROM technician"),
            "SELECT team AS x, COUNT(team) AS y FROM technician GROUP BY team;"
        );
    }

    #[test]
    fn order_by_y_and_desc() {
        assert!(
            sql("VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a ORDER BY y DESC")
                .ends_with("ORDER BY y DESC;")
        );
    }
}
