//! Decomposition of a VQL query into the components used by the paper's
//! component-accuracy metric and failure taxonomy (Fig. 11).
//!
//! A visualization query has a *visual part* (chart type and the two axes)
//! and a *data part* (table/join, conditions, binning, grouping, ordering,
//! nesting). The failure analysis classifies an incorrect prediction by the
//! first components on which it disagrees with the gold query.

use crate::ast::{OrderTarget, VqlQuery};
use crate::canon::canonicalize;
use std::fmt;

/// A comparable component of a visualization query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Chart type (`VISUALIZE`). Visual part.
    VisType,
    /// X axis expression. Visual part.
    AxisX,
    /// Y axis expression. Visual part.
    AxisY,
    /// Source table(s): `FROM` and `JOIN`. Data part.
    TableJoin,
    /// `WHERE` conditions (including `AND`/`OR`). Data part; the paper's
    /// "cond" bucket together with [`Component::Order`].
    Where,
    /// `ORDER BY`. Data part ("cond" bucket).
    Order,
    /// Temporal `BIN`. Data part.
    Bin,
    /// Grouping (aggregation key and color/series). Data part.
    Group,
    /// Nested subquery presence/content. Data part.
    Subquery,
}

impl Component {
    /// Is this component part of the *visual* part of the query?
    pub fn is_visual(self) -> bool {
        matches!(
            self,
            Component::VisType | Component::AxisX | Component::AxisY
        )
    }

    /// The paper's Fig. 11 bucket name for this component.
    pub fn bucket(self) -> &'static str {
        match self {
            Component::VisType => "type",
            Component::AxisX => "x-axis",
            Component::AxisY => "y-axis",
            Component::TableJoin => "join",
            Component::Where | Component::Order => "cond",
            Component::Bin => "bin",
            Component::Group => "group",
            Component::Subquery => "nested",
        }
    }

    /// All components in a fixed order.
    pub fn all() -> [Component; 9] {
        [
            Component::VisType,
            Component::AxisX,
            Component::AxisY,
            Component::TableJoin,
            Component::Where,
            Component::Order,
            Component::Bin,
            Component::Group,
            Component::Subquery,
        ]
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Component::VisType => "vis-type",
            Component::AxisX => "axis-x",
            Component::AxisY => "axis-y",
            Component::TableJoin => "table/join",
            Component::Where => "where",
            Component::Order => "order",
            Component::Bin => "bin",
            Component::Group => "group",
            Component::Subquery => "subquery",
        })
    }
}

/// A canonical textual fingerprint of one component of a query, such that
/// two queries agree on the component iff the fingerprints are equal.
pub fn fingerprint(q: &VqlQuery, c: Component) -> String {
    let q = canonicalize(q);
    match c {
        Component::VisType => q.chart.keyword().to_string(),
        Component::AxisX => q.x.to_string(),
        Component::AxisY => q.y.to_string(),
        Component::TableJoin => match &q.join {
            None => q.from.clone(),
            Some(j) => format!("{} JOIN {} ON {} = {}", q.from, j.table, j.left, j.right),
        },
        Component::Where => match &q.filter {
            None => String::new(),
            Some(f) => {
                // Reuse the printer by embedding the predicate in a dummy query.
                let printed = crate::printer::print(&VqlQuery {
                    filter: Some(f.clone()),
                    ..q.clone()
                });
                printed
                    .split(" WHERE ")
                    .nth(1)
                    .unwrap_or("")
                    .split(" BIN ")
                    .next()
                    .unwrap_or("")
                    .split(" GROUP BY ")
                    .next()
                    .unwrap_or("")
                    .split(" ORDER BY ")
                    .next()
                    .unwrap_or("")
                    .to_string()
            }
        },
        Component::Order => match &q.order {
            None => String::new(),
            Some(o) => {
                let target = match &o.target {
                    OrderTarget::X => "x".to_string(),
                    OrderTarget::Y => "y".to_string(),
                    OrderTarget::Column(col) => col.to_string(),
                };
                format!("{target} {}", o.dir.keyword())
            }
        },
        Component::Bin => match &q.bin {
            None => String::new(),
            Some(b) => format!("{} BY {}", b.column, b.unit.keyword()),
        },
        Component::Group => q
            .group_by
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        Component::Subquery => match &q.filter {
            Some(f) if f.has_subquery() => {
                // The nested component fingerprint is the subquery text within
                // the WHERE fingerprint.
                fingerprint(&q, Component::Where)
            }
            _ => String::new(),
        },
    }
}

/// Components on which `predicted` disagrees with `gold`.
pub fn diff(gold: &VqlQuery, predicted: &VqlQuery) -> Vec<Component> {
    Component::all()
        .into_iter()
        .filter(|&c| fingerprint(gold, c) != fingerprint(predicted, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn q(src: &str) -> VqlQuery {
        parse(src).unwrap()
    }

    #[test]
    fn identical_queries_have_no_diff() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE x > 1 GROUP BY name");
        assert!(diff(&a, &a).is_empty());
    }

    #[test]
    fn chart_type_diff() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t");
        let b = q("VISUALIZE pie SELECT name , COUNT(name) FROM t");
        assert_eq!(diff(&a, &b), vec![Component::VisType]);
    }

    #[test]
    fn axis_diffs() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t");
        let b = q("VISUALIZE bar SELECT team , SUM(age) FROM t");
        let d = diff(&a, &b);
        assert!(d.contains(&Component::AxisX));
        assert!(d.contains(&Component::AxisY));
        assert!(!d.contains(&Component::VisType));
    }

    #[test]
    fn where_and_order_are_cond_bucket() {
        assert_eq!(Component::Where.bucket(), "cond");
        assert_eq!(Component::Order.bucket(), "cond");
        assert!(Component::VisType.is_visual());
        assert!(!Component::Where.is_visual());
    }

    #[test]
    fn where_diff_detected() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE x > 1");
        let b = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE x > 2");
        assert_eq!(diff(&a, &b), vec![Component::Where]);
        let c = q("VISUALIZE bar SELECT name , COUNT(name) FROM t");
        assert_eq!(diff(&a, &c), vec![Component::Where]);
    }

    #[test]
    fn where_commutativity_no_diff() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE x > 1 AND y = 2");
        let b = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE y = 2 AND x > 1");
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn join_diff_detected() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t JOIN u ON t.k = u.k");
        let b = q("VISUALIZE bar SELECT name , COUNT(name) FROM t");
        assert!(diff(&a, &b).contains(&Component::TableJoin));
    }

    #[test]
    fn bin_group_order_diffs() {
        let a = q(
            "VISUALIZE line SELECT d , COUNT(d) FROM t BIN d BY month GROUP BY d ORDER BY d ASC",
        );
        let b = q(
            "VISUALIZE line SELECT d , COUNT(d) FROM t BIN d BY year GROUP BY d ORDER BY d DESC",
        );
        let ds = diff(&a, &b);
        assert!(ds.contains(&Component::Bin));
        assert!(ds.contains(&Component::Order));
        assert!(!ds.contains(&Component::Group));
    }

    #[test]
    fn subquery_diff_detected() {
        let a = q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE k IN ( SELECT k FROM u )");
        let b =
            q("VISUALIZE bar SELECT name , COUNT(name) FROM t WHERE k NOT IN ( SELECT k FROM u )");
        let d = diff(&a, &b);
        assert!(d.contains(&Component::Subquery));
    }
}
