//! AST canonicalization for the Exact-Accuracy metric.
//!
//! Two queries are "exactly equal" when their canonical forms agree. The
//! canonical form:
//!
//! - lowercases table and column identifiers;
//! - drops table qualifiers that are redundant (single-table query, or a
//!   qualifier naming the only table that has the column);
//! - resolves a named `ORDER BY` column to the X or Y axis (Fig. 5 of the
//!   paper treats axis-aliased orderings as equivalent);
//! - flattens and sorts the operand lists of commutative `AND` / `OR`
//!   chains, so `a AND b` equals `b AND a`.

use crate::ast::*;

/// Returns the canonical form of a query.
pub fn canonicalize(q: &VqlQuery) -> VqlQuery {
    let mut out = q.clone();
    out.from = out.from.to_ascii_lowercase();
    out.x = canon_expr(&q.x, q);
    out.y = canon_expr(&q.y, q);
    out.join = q.join.as_ref().map(|j| {
        let mut left = canon_col(&j.left, q);
        let mut right = canon_col(&j.right, q);
        // Join keys are kept qualified (both tables are in scope), and the
        // ON condition is symmetric: order the sides lexicographically.
        if left.table.is_none() {
            left.table = Some(q.from.to_ascii_lowercase());
        }
        if right.table.is_none() {
            right.table = Some(j.table.to_ascii_lowercase());
        }
        let (left, right) = if format!("{left}") <= format!("{right}") {
            (left, right)
        } else {
            (right, left)
        };
        Join {
            table: j.table.to_ascii_lowercase(),
            left,
            right,
        }
    });
    out.filter = q.filter.as_ref().map(|f| canon_pred(f, q));
    out.bin = q.bin.as_ref().map(|b| Bin {
        column: canon_col(&b.column, q),
        unit: b.unit,
    });
    out.group_by = q.group_by.iter().map(|g| canon_col(g, q)).collect();
    out.order = q.order.as_ref().map(|o| OrderBy {
        target: canon_order(&o.target, q),
        dir: o.dir,
    });
    out
}

/// Exact-accuracy comparison: canonical forms must be structurally equal.
pub fn exact_match(a: &VqlQuery, b: &VqlQuery) -> bool {
    canonicalize(a) == canonicalize(b)
}

fn canon_expr(e: &SelectExpr, q: &VqlQuery) -> SelectExpr {
    match e {
        SelectExpr::Column(c) => SelectExpr::Column(canon_col(c, q)),
        SelectExpr::Agg { func, arg } => SelectExpr::Agg {
            func: *func,
            arg: arg.as_ref().map(|c| canon_col(c, q)),
        },
    }
}

fn canon_col(c: &ColumnRef, q: &VqlQuery) -> ColumnRef {
    let column = c.column.to_ascii_lowercase();
    let table = c.table.as_ref().map(|t| t.to_ascii_lowercase());
    // Drop the qualifier on single-table queries — it carries no information.
    if q.join.is_none() {
        return ColumnRef {
            table: None,
            column,
        };
    }
    ColumnRef { table, column }
}

fn canon_pred(p: &Predicate, q: &VqlQuery) -> Predicate {
    match p {
        Predicate::Cmp { col, op, value } => Predicate::Cmp {
            col: canon_col(col, q),
            op: *op,
            value: canon_literal(value),
        },
        Predicate::InSubquery {
            col,
            negated,
            subquery,
        } => Predicate::InSubquery {
            col: canon_col(col, q),
            negated: *negated,
            subquery: SubQuery {
                select: ColumnRef {
                    table: None,
                    column: subquery.select.column.to_ascii_lowercase(),
                },
                from: subquery.from.to_ascii_lowercase(),
                filter: subquery.filter.as_ref().map(|f| Box::new(canon_pred(f, q))),
            },
        },
        Predicate::And(..) => rebuild_chain(p, q, true),
        Predicate::Or(..) => rebuild_chain(p, q, false),
    }
}

/// Flattens a chain of the same commutative connective, canonicalizes and
/// sorts the operands, and rebuilds a right-leaning tree.
fn rebuild_chain(p: &Predicate, q: &VqlQuery, is_and: bool) -> Predicate {
    let mut operands = Vec::new();
    collect_operands(p, is_and, q, &mut operands);
    operands.sort_by_key(predicate_key);
    let mut iter = operands.into_iter().rev();
    let mut acc = iter.next().expect("chain has at least two operands");
    for next in iter {
        acc = if is_and {
            Predicate::And(Box::new(next), Box::new(acc))
        } else {
            Predicate::Or(Box::new(next), Box::new(acc))
        };
    }
    acc
}

fn collect_operands(p: &Predicate, is_and: bool, q: &VqlQuery, out: &mut Vec<Predicate>) {
    match (p, is_and) {
        (Predicate::And(a, b), true) => {
            collect_operands(a, true, q, out);
            collect_operands(b, true, q, out);
        }
        (Predicate::Or(a, b), false) => {
            collect_operands(a, false, q, out);
            collect_operands(b, false, q, out);
        }
        _ => out.push(canon_pred(p, q)),
    }
}

/// A stable sort key for predicate operands.
fn predicate_key(p: &Predicate) -> String {
    let mut s = String::new();
    if let Some(t) = crate::printer::print(&VqlQuery {
        chart: ChartType::Bar,
        x: SelectExpr::Column(ColumnRef::new("_")),
        y: SelectExpr::Column(ColumnRef::new("_")),
        from: "_".into(),
        join: None,
        filter: Some(p.clone()),
        bin: None,
        group_by: vec![],
        order: None,
    })
    .split(" WHERE ")
    .nth(1)
    {
        s.push_str(t)
    }
    s
}

fn canon_literal(l: &Literal) -> Literal {
    match l {
        // Integral floats normalize to ints so `> 10` equals `> 10.0`.
        Literal::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => Literal::Int(*f as i64),
        other => other.clone(),
    }
}

fn canon_order(t: &OrderTarget, q: &VqlQuery) -> OrderTarget {
    match t {
        OrderTarget::X => OrderTarget::X,
        OrderTarget::Y => OrderTarget::Y,
        OrderTarget::Column(c) => {
            let is_x =
                q.x.column()
                    .is_some_and(|xc| xc.column.eq_ignore_ascii_case(&c.column));
            let is_plain_y = !q.y.is_aggregate()
                && q.y
                    .column()
                    .is_some_and(|yc| yc.column.eq_ignore_ascii_case(&c.column));
            if is_plain_y && !is_x {
                OrderTarget::Y
            } else if is_x {
                OrderTarget::X
            } else {
                // A column that is neither axis: keep it (it will simply not
                // match a gold query that orders an axis).
                OrderTarget::Column(canon_col(c, q))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eq(a: &str, b: &str) -> bool {
        exact_match(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn case_insensitive_identifiers() {
        assert!(eq(
            "VISUALIZE bar SELECT Name , COUNT(Name) FROM Technician GROUP BY Name",
            "VISUALIZE bar SELECT name , COUNT(name) FROM technician GROUP BY name",
        ));
    }

    #[test]
    fn redundant_qualifier_dropped() {
        assert!(eq(
            "VISUALIZE bar SELECT technician.name , COUNT(technician.name) FROM technician",
            "VISUALIZE bar SELECT name , COUNT(name) FROM technician",
        ));
    }

    #[test]
    fn and_is_commutative() {
        assert!(eq(
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 AND y = 2",
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE y = 2 AND x > 1",
        ));
    }

    #[test]
    fn or_is_commutative_but_distinct_from_and() {
        assert!(eq(
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 OR y = 2",
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE y = 2 OR x > 1",
        ));
        assert!(!eq(
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 OR y = 2",
            "VISUALIZE bar SELECT a , SUM(b) FROM t WHERE x > 1 AND y = 2",
        ));
    }

    #[test]
    fn order_axis_aliases_equivalent() {
        assert!(eq(
            "VISUALIZE bar SELECT name , COUNT(name) FROM t ORDER BY name ASC",
            "VISUALIZE bar SELECT name , COUNT(name) FROM t ORDER BY x ASC",
        ));
        assert!(eq(
            "VISUALIZE bar SELECT name , COUNT(name) FROM t ORDER BY COUNT(name) DESC",
            "VISUALIZE bar SELECT name , COUNT(name) FROM t ORDER BY y DESC",
        ));
    }

    #[test]
    fn integral_float_literals_normalize() {
        assert!(eq(
            "VISUALIZE bar SELECT a , b FROM t WHERE x > 10",
            "VISUALIZE bar SELECT a , b FROM t WHERE x > 10.0",
        ));
        assert!(!eq(
            "VISUALIZE bar SELECT a , b FROM t WHERE x > 10",
            "VISUALIZE bar SELECT a , b FROM t WHERE x > 10.5",
        ));
    }

    #[test]
    fn join_on_sides_symmetric() {
        assert!(eq(
            "VISUALIZE bar SELECT name , COUNT(name) FROM a JOIN b ON a.k = b.k",
            "VISUALIZE bar SELECT name , COUNT(name) FROM a JOIN b ON b.k = a.k",
        ));
    }

    #[test]
    fn differences_still_detected() {
        assert!(!eq(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t",
            "VISUALIZE pie SELECT a , COUNT(a) FROM t",
        ));
        assert!(!eq(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t",
            "VISUALIZE bar SELECT a , SUM(a) FROM t",
        ));
        assert!(!eq(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t GROUP BY a",
            "VISUALIZE bar SELECT a , COUNT(a) FROM t",
        ));
        assert!(!eq(
            "VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY a ASC",
            "VISUALIZE bar SELECT a , COUNT(a) FROM t ORDER BY a DESC",
        ));
    }

    #[test]
    fn canonical_is_idempotent() {
        let q = parse(
            "VISUALIZE bar SELECT T.a , SUM(T.b) FROM T WHERE z = 1 AND y = 2 OR x = 3 ORDER BY a DESC",
        )
        .unwrap();
        let c1 = canonicalize(&q);
        let c2 = canonicalize(&c1);
        assert_eq!(c1, c2);
    }
}
