//! Event-core behavior the sequential tests cannot see: server-side
//! batching of identical queued completions, connection-count/thread-count
//! decoupling, and the header-parsing fixes (case-insensitive names,
//! duplicate `Content-Length`, `Connection:` token lists) exercised over
//! real sockets.

use nl2vis_llm::fault::{Fault, FaultInjector};
use nl2vis_llm::http::{
    connection_keeps_alive, header_value, CompletionServer, HttpError, HttpLlmClient, ServerConfig,
    ServerTuning,
};
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs as obs;
use nl2vis_obs::MetricsRegistry;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The flight recorder is process-global; tests that install one must not
/// overlap. Poisoning is irrelevant — the lock only serializes.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

const PROMPT: &str = "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: shared question\nVQL:";

/// Reads exactly one `Content-Length`-framed response from a kept-alive
/// socket (a plain `read_to_string` would block until the peer closes).
fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, bool, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line `{status_line}`"))
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    let mut keep_alive = false;
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "truncated headers"
        );
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = header_value(line, "content-length") {
            content_length = v.parse().unwrap();
        }
        if let Some(v) = header_value(line, "connection") {
            keep_alive = connection_keeps_alive(v);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, keep_alive, String::from_utf8(body).unwrap())
}

/// A burst of identical completions against a single stalled worker must
/// coalesce: provably fewer `SimLlm` invocations than requests, byte-
/// identical responses, and every batched request's `server.handle` span
/// linked (via the `batch` annotation) to one shared `server.batch` span.
#[test]
fn identical_queued_completions_coalesce_into_one_invocation() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Generous capacity: the recorder is process-global, so tests running
    // in parallel also record into it; the shard rings must not evict the
    // traces this test asserts on.
    let recorder = Arc::new(obs::FlightRecorder::new(512));
    obs::recorder::install(Arc::clone(&recorder));

    let registry = Arc::new(MetricsRegistry::new());
    // One worker, stalled 300ms on its first completion: the remaining
    // seven requests queue behind it and dequeue as one batch.
    let server = CompletionServer::start_with_config(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Stall(Duration::from_millis(300))]),
        ServerConfig {
            max_inflight: 1,
            queue_depth: 64,
            retry_after: Duration::from_millis(50),
        },
    )
    .unwrap();
    let addr = server.address();

    let results: Vec<(u64, String)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let root = obs::Span::enter("batchtest.request");
                    let client = HttpLlmClient::new(addr, "gpt-4");
                    let text = client.complete_http(PROMPT).expect("completion");
                    (root.trace(), text)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Byte-identical responses for identical (model, prompt, options).
    for (_, text) in &results {
        assert_eq!(text, &results[0].1, "batched members must match singles");
    }

    assert_eq!(registry.counter("llm.requests_total").get(), 8);
    assert!(registry.counter("server.batch.requests_total").get() > 1);
    assert!(registry.counter("server.batch.batches_total").get() >= 1);
    let invocations = registry.counter("server.batch.invocations_total").get();
    assert!(
        invocations < 8,
        "8 identical queued requests must share invocations, got {invocations}"
    );

    // Every batched request's server span names the batch trace it shared.
    let mut members_by_batch: HashMap<String, usize> = HashMap::new();
    for (trace_id, _) in &results {
        let record = recorder.get(*trace_id).expect("client trace recorded");
        assert!(record.has_span("server.handle"), "{:?}", record.spans);
        for span in record.spans_named("server.handle") {
            for (key, value) in &span.annotations {
                if key == "batch" {
                    *members_by_batch.entry(value.clone()).or_default() += 1;
                }
            }
        }
    }
    let (batch_trace, members) = members_by_batch
        .iter()
        .max_by_key(|(_, n)| **n)
        .expect("at least one request was served from a batch");
    assert!(
        *members >= 2,
        "a shared batch span must link at least two requests"
    );
    // The last member's response is written *before* the batch span
    // closes, so a fast client can get here first — poll briefly.
    let batch_id: u64 = batch_trace.parse().expect("decimal batch trace id");
    let deadline = Instant::now() + Duration::from_secs(2);
    let batch_record = loop {
        if let Some(record) = recorder.get(batch_id) {
            break record;
        }
        assert!(
            Instant::now() < deadline,
            "the shared batch trace must be finalized and retained"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        batch_record.has_span("server.batch"),
        "{:?}",
        batch_record.spans
    );

    drop(server);
    obs::recorder::disable();
}

/// Open connections are poller state, not threads: hundreds of idle
/// sockets coexist with a single-digit serving-thread count, and the
/// server still answers traffic while holding them.
#[test]
fn idle_connections_decouple_from_serving_threads() {
    let registry = Arc::new(MetricsRegistry::new());
    let config = ServerConfig {
        max_inflight: 4,
        queue_depth: 16,
        retry_after: Duration::from_millis(50),
    };
    let tuning = ServerTuning::default();
    let server = CompletionServer::start_with_tuning(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        FaultInjector::none(),
        config,
        tuning,
    )
    .unwrap();
    let addr = server.address();

    let threads = registry.gauge("server.serving_threads").get();
    assert_eq!(
        threads,
        (tuning.pollers + config.max_inflight) as i64,
        "serving threads are pollers + workers, nothing per-connection"
    );

    // 64 idle connections: accepted, registered, never sending a byte.
    let idle: Vec<TcpStream> = (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let open = registry.gauge("server.poller.open_connections").get();
        if open >= 64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pollers must adopt all 64 idle connections, saw {open}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        registry.gauge("server.poller.open_connections").get() > threads,
        "open connections must exceed the thread count"
    );

    // The held connections cost no worker: live traffic still flows.
    let client = HttpLlmClient::new(addr, "gpt-4");
    let text = client
        .complete_http(PROMPT)
        .expect("completion while idle connections are held");
    assert!(!text.is_empty());

    drop(idle);
    drop(server);
}

/// Header names match case-insensitively while values keep their original
/// bytes — pinned at the unit level for both shared helpers.
#[test]
fn header_helpers_fold_names_and_preserve_values() {
    assert_eq!(
        header_value("CONTENT-LENGTH: 42", "content-length"),
        Some("42")
    );
    assert_eq!(
        header_value("Content-Length:42", "content-length"),
        Some("42")
    );
    assert_eq!(
        header_value("X-Thing:   MiXeD CaSe VaLuE  ", "x-thing"),
        Some("MiXeD CaSe VaLuE"),
        "values are trimmed but never case-folded"
    );
    assert_eq!(header_value("X-Other: 1", "x-thing"), None);
    assert_eq!(header_value("no colon here", "x-thing"), None);

    assert!(connection_keeps_alive("keep-alive"));
    assert!(connection_keeps_alive("Keep-Alive"));
    assert!(connection_keeps_alive("keep-alive, TE"));
    assert!(connection_keeps_alive(" TE , Keep-Alive "));
    assert!(!connection_keeps_alive("close"));
    assert!(!connection_keeps_alive("keep-alive, close"), "close wins");
    assert!(
        !connection_keeps_alive("TE"),
        "unknown tokens alone don't keep"
    );
    assert!(!connection_keeps_alive(""));
}

/// A mixed-case trace header still stitches the server span into the
/// propagated trace, fetchable back through `/trace/<id>`.
#[test]
fn mixed_case_trace_headers_round_trip_through_trace_endpoint() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Same capacity note as above: parallel tests share the recorder.
    let recorder = Arc::new(obs::FlightRecorder::new(512));
    obs::recorder::install(Arc::clone(&recorder));

    let server = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
    )
    .unwrap();

    let body = format!("{{\"model\":\"gpt-4\",\"prompt\":{}}}", quote_json(PROMPT));
    let mut stream = TcpStream::connect(server.address()).unwrap();
    write!(
        stream,
        "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nX-NL2VIS-TRACE-ID: 424242\r\nx-nl2vis-PARENT-span: 777\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    // The server span joined trace 424242 under parent span 777 even
    // though the header names arrived in the wrong case.
    let record = recorder.get(424242).expect("trace recorded");
    assert!(record.has_span("server.handle"), "{:?}", record.spans);
    assert_eq!(record.spans_named("server.handle")[0].parent, Some(777));

    let mut stream = TcpStream::connect(server.address()).unwrap();
    write!(
        stream,
        "GET /trace/424242 HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    let mut fetched = String::new();
    BufReader::new(stream).read_to_string(&mut fetched).unwrap();
    assert!(fetched.starts_with("HTTP/1.1 200"), "{fetched}");
    assert!(fetched.contains("\"trace_id\":424242"), "{fetched}");
    assert!(fetched.contains("server.handle"), "{fetched}");

    drop(server);
    obs::recorder::disable();
}

/// Duplicate `Content-Length` headers: identical repeats are harmless,
/// conflicting ones are a request-smuggling vector and must be rejected.
#[test]
fn duplicate_content_length_is_rejected_only_when_conflicting() {
    let server = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::new(MetricsRegistry::new()),
    )
    .unwrap();

    // Conflicting duplicates: 400, connection closed.
    let mut stream = TcpStream::connect(server.address()).unwrap();
    write!(
        stream,
        "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello"
    )
    .unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("conflicting"), "{response}");

    // Identical duplicates: last-wins degenerates to the same value, so
    // the request is served normally.
    let body = format!("{{\"model\":\"gpt-4\",\"prompt\":{}}}", quote_json(PROMPT));
    let mut stream = TcpStream::connect(server.address()).unwrap();
    write!(
        stream,
        "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: {0}\r\nContent-Length: {0}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
}

/// The client applies the same rule to responses: a server answering with
/// conflicting `Content-Length` headers is a protocol error, not a guess.
#[test]
fn client_rejects_conflicting_response_content_length() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Consume the full request so closing later is a clean FIN, not an
        // RST racing the response bytes.
        let mut data = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "client closed before the response");
            data.extend_from_slice(&buf[..n]);
            if let Some(pos) = data.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&data[..pos]).to_ascii_lowercase();
                let declared: usize = head
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length:"))
                    .map(|v| v.trim().parse().unwrap())
                    .unwrap_or(0);
                if data.len() >= pos + 4 + declared {
                    break;
                }
            }
        }
        stream
            .write_all(
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok!",
            )
            .unwrap();
    });

    let client = HttpLlmClient::new(addr, "gpt-4");
    match client.complete_http(PROMPT) {
        Err(HttpError::Protocol(message)) => {
            assert!(message.contains("conflicting"), "{message}")
        }
        other => panic!("conflicting response lengths must be Protocol, got {other:?}"),
    }
    fake.join().unwrap();
}

/// `Connection:` is a token list: `keep-alive, TE` keeps the connection,
/// mixed case matches, and `close` anywhere wins.
#[test]
fn connection_token_lists_govern_keep_alive() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
    )
    .unwrap();

    // `keep-alive, TE`: the token list keeps the socket; a second request
    // rides it and counts as reuse.
    let stream = TcpStream::connect(server.address()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write!(
        writer,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: keep-alive, TE\r\n\r\n"
    )
    .unwrap();
    let (status, keep, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(keep, "the server must echo keep-alive for a token list");

    // Mixed case on the reused socket, then an explicit close.
    write!(
        writer,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: Keep-Alive\r\n\r\n"
    )
    .unwrap();
    let (status, keep, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(keep, "mixed-case `Keep-Alive` must match");

    write!(
        writer,
        "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: keep-alive, close\r\n\r\n"
    )
    .unwrap();
    let (status, keep, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(!keep, "`close` anywhere in the list wins");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert!(rest.is_empty(), "the server must close after `close`");

    assert!(
        registry.counter("server.requests_on_reused_conn").get() >= 2,
        "both follow-up requests rode the kept-alive socket"
    );
    drop(server);
}

/// Minimal JSON string quoting for raw-socket request bodies.
fn quote_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
