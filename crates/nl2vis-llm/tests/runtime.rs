//! Bounded server runtime: admission control, load shedding, and graceful
//! drain.
//!
//! The server serves connections from a fixed worker pool fed by a
//! fixed-depth accept queue. These tests pin the three promises that
//! sizing makes: in-flight work never exceeds the pool, overload is
//! rejected *quickly* with `429` + `Retry-After` instead of queueing
//! without bound, and shutdown serves everything already accepted. All
//! counts are asserted through the server's own metrics registry.

use nl2vis_llm::fault::{Fault, FaultInjector};
use nl2vis_llm::http::{CompletionServer, HttpError, HttpLlmClient, ServerConfig};
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_llm::{GenOptions, LlmClient, ResilientLlmClient, RetryPolicy, TransportErrorKind};
use nl2vis_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

fn prompt(i: usize) -> String {
    format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
}

fn stall_all(n: usize, pause: Duration) -> FaultInjector {
    FaultInjector::script(vec![Fault::Stall(pause); n])
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let registry = Arc::new(MetricsRegistry::new());
    let config = ServerConfig {
        max_inflight: 1,
        queue_depth: 1,
        retry_after: Duration::from_millis(30),
    };
    // Every served request stalls 80ms, so the single worker stays busy
    // while the burst arrives: one request in service, one queued, the
    // rest must be shed at the accept thread.
    let server = CompletionServer::start_with_config(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        stall_all(8, Duration::from_millis(80)),
        config,
    )
    .unwrap();
    let addr = server.address();

    let mut served = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                s.spawn(move || {
                    // One fresh client (own connection) per thread.
                    let client = HttpLlmClient::new(addr, "gpt-4");
                    client.complete_http(&prompt(i))
                })
            })
            .collect();
        for h in handles {
            match h.join().unwrap() {
                Ok(text) => {
                    assert!(!text.is_empty());
                    served += 1;
                }
                Err(HttpError::Overloaded { retry_after, body }) => {
                    let advertised = retry_after.expect("a shed carries Retry-After");
                    let diff = advertised.abs_diff(config.retry_after);
                    assert!(
                        diff < Duration::from_millis(5),
                        "Retry-After must echo the configured backoff: {advertised:?}"
                    );
                    assert!(body.contains("overloaded"), "{body}");
                    shed += 1;
                }
                Err(other) => panic!("overload must surface as Overloaded, got {other:?}"),
            }
        }
    });

    assert_eq!(served + shed, 6, "every request gets a definite answer");
    assert!(
        served >= 1,
        "the worker and the queue slot are still served"
    );
    assert!(
        shed >= 1,
        "a 6-deep burst against pool 1 + queue 1 must shed"
    );
    assert_eq!(registry.counter("server.shed_total").get(), shed as u64);
    assert_eq!(registry.counter("llm.status_429").get(), shed as u64);
    // Sheds are connection rejections — they never count as served traffic.
    assert_eq!(registry.counter("llm.requests_total").get(), served as u64);
}

#[test]
fn inflight_work_is_bounded_by_the_pool() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_config(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        stall_all(8, Duration::from_millis(20)),
        ServerConfig {
            max_inflight: 2,
            queue_depth: 16,
            retry_after: Duration::from_millis(50),
        },
    )
    .unwrap();
    let addr = server.address();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                s.spawn(move || {
                    let client = HttpLlmClient::new(addr, "gpt-4");
                    client.complete_http(&prompt(i))
                })
            })
            .collect();
        for h in handles {
            h.join()
                .unwrap()
                .expect("a 16-deep queue absorbs 8 requests");
        }
    });

    let peak = registry.gauge("server.concurrent_peak").get();
    assert!(
        (1..=2).contains(&peak),
        "8 concurrent stalled requests must never exceed the pool of 2, got {peak}"
    );
    assert_eq!(registry.counter("server.shed_total").get(), 0);
    assert_eq!(registry.counter("llm.requests_total").get(), 8);
}

#[test]
fn retry_layer_recovers_from_shedding() {
    let registry = Arc::new(MetricsRegistry::new());
    let config = ServerConfig {
        max_inflight: 1,
        queue_depth: 1,
        retry_after: Duration::from_millis(5),
    };
    // Short service times: the overload is transient by construction, so a
    // client that honors the advertised 5ms backoff converges quickly.
    let server = CompletionServer::start_with_config(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        stall_all(64, Duration::from_millis(2)),
        config,
    )
    .unwrap();
    let addr = server.address();

    // 429 is a retryable status for the policy.
    assert!(RetryPolicy::default().retryable(&TransportErrorKind::Status(429)));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                s.spawn(move || {
                    let client = ResilientLlmClient::new(
                        HttpLlmClient::new(addr, "gpt-4"),
                        RetryPolicy {
                            max_attempts: 16,
                            base_backoff: Duration::from_millis(1),
                            max_backoff: Duration::from_millis(4),
                            jitter_seed: i as u64,
                        },
                    );
                    client.try_complete_with(&prompt(i), &GenOptions::default())
                })
            })
            .collect();
        for h in handles {
            let completion = h
                .join()
                .unwrap()
                .expect("every shed request must recover within its retry budget");
            assert!(!completion.is_empty());
        }
    });

    assert!(
        registry.counter("server.shed_total").get() > 0,
        "an 8-deep burst against pool 1 + queue 1 must shed at least once"
    );
    assert_eq!(
        registry.counter("llm.requests_total").get(),
        8,
        "each logical request is served exactly once despite the retries"
    );
}

/// Reads one length-delimited HTTP response off a raw socket reader;
/// returns `(status, body)`, or `None` on EOF before a status line.
fn read_raw_response(
    reader: &mut std::io::BufReader<std::net::TcpStream>,
) -> Option<(u16, String)> {
    use std::io::{BufRead, Read};
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = nl2vis_llm::http::header_value(line.trim_end(), "content-length") {
            content_length = v.parse().ok()?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8_lossy(&body).to_string()))
}

fn raw_completion_request(prompt: &str) -> Vec<u8> {
    let body = format!(r#"{{"model":"gpt-4","prompt":"{prompt}"}}"#);
    format!(
        "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// The drain grace window exists so a request already in flight on the
/// wire can finish. A client that has *started* writing a request when
/// shutdown begins — buffered-but-incomplete bytes on the poller — must be
/// allowed to trickle the rest in during the grace and get its response,
/// not have the connection swept out from under it.
#[test]
fn slow_writer_trickling_across_the_drain_boundary_is_served() {
    use std::io::Write;
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
    )
    .unwrap();
    let addr = server.address();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let request = raw_completion_request("hello across the drain");
    // First half of the request lands before shutdown begins...
    let split = request.len() - 12;
    stream.write_all(&request[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(40));

    // ... then the server starts draining with the request incomplete.
    let shutdown = std::thread::spawn(move || drop(server));
    std::thread::sleep(Duration::from_millis(60));

    // The trailing bytes arrive inside the 250ms grace window.
    stream.write_all(&request[split..]).unwrap();
    stream.flush().unwrap();

    let response = read_raw_response(&mut reader);
    shutdown.join().unwrap();
    match response {
        Some((200, body)) => assert!(!body.is_empty()),
        other => {
            panic!("a request trickled across the drain boundary must be served, got {other:?}")
        }
    }
    assert_eq!(registry.counter("llm.requests_total").get(), 1);
}

/// A kept-alive connection that has *started* its next request is
/// mid-request, not idle: the keep-alive idle sweep (5s) must not close it
/// silently while the client is still (slowly) writing. It gets the full
/// IO timeout, like a blocking read would have.
#[test]
fn slow_writer_on_kept_alive_conn_outlives_the_keepalive_idle_sweep() {
    use std::io::Write;
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_registry(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(server.address()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    // Request 1 completes normally, marking the connection kept-alive.
    stream
        .write_all(&raw_completion_request("first request"))
        .unwrap();
    let first = read_raw_response(&mut reader).expect("first response");
    assert_eq!(first.0, 200);

    // Request 2 starts, then stalls past SERVER_KEEPALIVE_IDLE (5s) with
    // bytes buffered on the poller. The old sweep treated this connection
    // as idle and closed it silently.
    let request = raw_completion_request("second request, slowly");
    let split = request.len() - 10;
    stream.write_all(&request[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(5600));
    stream.write_all(&request[split..]).unwrap();
    stream.flush().unwrap();

    match read_raw_response(&mut reader) {
        Some((200, _)) => {}
        other => {
            panic!("a mid-request connection must survive the keep-alive idle sweep, got {other:?}")
        }
    }
    assert_eq!(registry.counter("llm.requests_total").get(), 2);
}

#[test]
fn graceful_drain_serves_every_accepted_request() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = CompletionServer::start_with_config(
        SimLlm::new(ModelProfile::gpt_4(), 9),
        Arc::clone(&registry),
        stall_all(8, Duration::from_millis(10)),
        ServerConfig {
            max_inflight: 1,
            queue_depth: 16,
            retry_after: Duration::from_millis(50),
        },
    )
    .unwrap();
    let addr = server.address();

    // 5 requests pile up behind a single 10ms-per-request worker...
    let handles: Vec<_> = (0..5)
        .map(|i| {
            std::thread::spawn(move || {
                let client = HttpLlmClient::new(addr, "gpt-4");
                client.complete_http(&prompt(i))
            })
        })
        .collect();
    // ... and once they are all accepted (connects are local and fast; the
    // backlog itself is ~50ms deep), the server shuts down mid-flight.
    std::thread::sleep(Duration::from_millis(20));
    drop(server);

    for h in handles {
        h.join()
            .unwrap()
            .expect("shutdown must drain the accept queue, not abandon it");
    }
    assert_eq!(
        registry.counter("llm.requests_total").get(),
        5,
        "every accepted request was served before the workers exited"
    );
    assert_eq!(registry.counter("server.shed_total").get(), 0);
    assert_eq!(registry.gauge("server.active_connections").get(), 0);
}
