//! Fault-injection integration tests for the HTTP transport: a
//! deterministic misbehaving server ([`FaultInjector`]) against the
//! deadline-bearing client and the retry policy. Everything runs offline
//! over loopback.

use nl2vis_llm::http::{CompletionServer, HttpError, HttpLlmClient, Timeouts};
use nl2vis_llm::{
    Fault, FaultInjector, ModelProfile, ResilientLlmClient, RetryPolicy, SimLlm, TransportErrorKind,
};
use nl2vis_obs::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

const PROMPT: &str = "-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question\nVQL:";

fn tight_timeouts() -> Timeouts {
    Timeouts {
        connect: Duration::from_secs(2),
        read: Duration::from_millis(150),
        write: Duration::from_secs(2),
    }
}

fn fast_policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        jitter_seed: 11,
    }
}

fn server_with(faults: FaultInjector) -> (CompletionServer, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::davinci_003(), 1);
    let server = CompletionServer::start_with_faults(llm, Arc::clone(&registry), faults)
        .expect("server starts");
    (server, registry)
}

#[test]
fn stalled_server_trips_the_client_read_deadline() {
    let (server, _registry) = server_with(FaultInjector::script(vec![Fault::Stall(
        Duration::from_millis(800),
    )]));
    let client =
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", tight_timeouts());
    match client.complete_http(PROMPT) {
        Err(HttpError::Timeout(_)) => {}
        other => panic!("expected a read timeout, got {other:?}"),
    }
    // The stall was consumed by request 0; the transport itself is healthy.
    let ok = client.complete_http(PROMPT).expect("second request clean");
    assert!(!ok.is_empty());
}

#[test]
fn injected_drop_then_success_is_recovered_by_retry() {
    let (server, registry) = server_with(FaultInjector::script(vec![Fault::Drop]));
    let direct = SimLlm::new(ModelProfile::davinci_003(), 1);
    let client = ResilientLlmClient::new(
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", tight_timeouts()),
        fast_policy(3),
    );
    let retries_before = nl2vis_obs::global().counter("llm.retries_total").get();
    let out = client.try_complete(PROMPT).expect("retry recovers");
    assert_eq!(out, direct.complete(PROMPT), "recovered output is lossless");
    assert!(
        nl2vis_obs::global().counter("llm.retries_total").get() >= retries_before + 1,
        "the recovery must be visible on llm.retries_total"
    );
    assert_eq!(registry.counter("server.fault.drop").get(), 1);
    assert_eq!(server.faults().injected(), 1);
}

#[test]
fn stall_timeout_then_success_is_recovered_by_retry() {
    let (server, _registry) = server_with(FaultInjector::script(vec![Fault::Stall(
        Duration::from_millis(800),
    )]));
    let client = ResilientLlmClient::new(
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", tight_timeouts()),
        fast_policy(3),
    );
    let out = client.try_complete(PROMPT).expect("retry after timeout");
    assert!(!out.is_empty());
}

#[test]
fn persistent_500_exhausts_bounded_attempts_with_typed_error() {
    // Every request answers 500: the client must stop after its budget and
    // return the typed error — never a scoreable string.
    let (server, registry) = server_with(FaultInjector::random(3, 0.0, 1.0, 0.0, Duration::ZERO));
    let client = ResilientLlmClient::new(
        HttpLlmClient::with_timeouts(server.address(), "text-davinci-003", tight_timeouts()),
        fast_policy(3),
    );
    let err = client.try_complete(PROMPT).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Status(500));
    assert_eq!(err.attempts, 3, "bounded attempts: {err}");
    assert_eq!(
        server.faults().requests(),
        3,
        "each attempt reached the server"
    );
    assert_eq!(registry.counter("server.fault.http500").get(), 3);
}

#[test]
fn semantic_400_is_not_retried() {
    // Wrong model name: a deterministic rejection. Retrying would return
    // the same 400 forever, so the policy must give up after one attempt.
    let (server, _registry) = server_with(FaultInjector::none());
    let client = ResilientLlmClient::new(
        HttpLlmClient::with_timeouts(server.address(), "gpt-4", tight_timeouts()),
        fast_policy(5),
    );
    let err = client.try_complete(PROMPT).unwrap_err();
    assert_eq!(err.kind, TransportErrorKind::Status(400));
    assert_eq!(err.attempts, 1, "semantic failures burn one attempt: {err}");
    assert_eq!(server.faults().requests(), 1);
}

#[test]
fn fault_free_injector_is_transparent() {
    let (server, registry) = server_with(FaultInjector::none());
    let direct = SimLlm::new(ModelProfile::davinci_003(), 1);
    let client = HttpLlmClient::new(server.address(), "text-davinci-003");
    for _ in 0..3 {
        assert_eq!(
            client.complete_http(PROMPT).unwrap(),
            direct.complete(PROMPT)
        );
    }
    assert_eq!(registry.counter("server.faults_injected_total").get(), 0);
    assert_eq!(registry.counter("llm.requests_total").get(), 3);
}
