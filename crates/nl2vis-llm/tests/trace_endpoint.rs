//! Pins the `/trace/<id>` error contract the fleet stitcher depends on:
//! unknown ids are a JSON 404 *body* (never an empty 200), malformed ids
//! are a JSON 400, and an uninstalled recorder is its own JSON 404.
//!
//! Runs in its own test binary because the flight recorder is process
//! global and these cases exercise both its installed and uninstalled
//! states.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use nl2vis_data::Json;
use nl2vis_llm::http::CompletionServer;
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs::recorder::{self, FlightRecorder};

/// One GET over a throwaway connection; returns the full response text.
fn raw_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .unwrap();
    response
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap()
}

#[test]
fn trace_endpoint_error_contract_is_json_all_the_way_down() {
    let server = CompletionServer::start(SimLlm::new(ModelProfile::gpt_4(), 9)).unwrap();

    // No recorder installed yet: still a JSON 404, not an empty body.
    let response = raw_get(server.address(), "/trace/987654321");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(response.contains("application/json"), "{response}");
    let json = Json::parse(body_of(&response)).expect("404 body must be JSON");
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("flight recorder not installed")
    );

    // Recorder installed, id unknown: a JSON 404 naming the id, so the
    // router's fleet stitcher can tell "not retained here" apart from a
    // dead replica or a malformed reply.
    recorder::install(Arc::new(FlightRecorder::new(16)));
    let response = raw_get(server.address(), "/trace/987654321");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(response.contains("application/json"), "{response}");
    let json = Json::parse(body_of(&response)).expect("404 body must be JSON");
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("trace 987654321 not retained")
    );

    // Malformed id: a JSON 400.
    let response = raw_get(server.address(), "/trace/banana");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(
        Json::parse(body_of(&response)).is_ok(),
        "400 body must be JSON: {response}"
    );
}
