//! HTTP keep-alive integration: connection reuse, pooling opt-out, and
//! transparent recovery when a pooled socket goes stale.
//!
//! Connection counts are asserted through the server's metrics registry
//! (`server.connections_total` increments once per accepted TCP
//! connection), so these tests pin the *actual* number of sockets opened,
//! not a client-side guess.

use nl2vis_llm::fault::{Fault, FaultInjector};
use nl2vis_llm::http::{CompletionServer, HttpLlmClient};
use nl2vis_llm::profile::ModelProfile;
use nl2vis_llm::sim::SimLlm;
use nl2vis_obs::MetricsRegistry;
use std::sync::Arc;

fn prompt(i: usize) -> String {
    format!("-- Test:\n-- Database:\nDatabase: d\nt = [ a , b ]\nQ: question {i}\nVQL:")
}

#[test]
fn sequential_requests_share_one_connection() {
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
    let client = HttpLlmClient::new(server.address(), "gpt-4");

    for i in 0..5 {
        client.complete_http(&prompt(i)).unwrap();
    }

    assert_eq!(
        registry.counter("server.connections_total").get(),
        1,
        "five sequential completions must ride one kept-alive connection"
    );
    assert_eq!(registry.counter("llm.requests_total").get(), 5);
    assert_eq!(
        registry.counter("server.requests_on_reused_conn").get(),
        4,
        "every request after the first reuses the connection"
    );
}

#[test]
fn keep_alive_opt_out_opens_a_connection_per_request() {
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
    let client = HttpLlmClient::new(server.address(), "gpt-4").without_keep_alive();

    for i in 0..3 {
        client.complete_http(&prompt(i)).unwrap();
    }

    assert_eq!(
        registry.counter("server.connections_total").get(),
        3,
        "an opted-out client pays one TCP connection per request"
    );
    assert_eq!(registry.counter("server.requests_on_reused_conn").get(), 0);
}

#[test]
fn stale_pooled_connection_is_retried_on_a_fresh_one() {
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    // Request 1 succeeds and parks its connection; request 2 rides the
    // pooled socket and the server drops it without a response — exactly
    // what a pooled client sees when the server restarted or idled out the
    // socket between requests.
    let server = CompletionServer::start_with_faults(
        llm,
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::None, Fault::Drop]),
    )
    .unwrap();
    let client = HttpLlmClient::new(server.address(), "gpt-4");

    let first = client.complete_http(&prompt(0)).unwrap();
    let second = client
        .complete_http(&prompt(1))
        .expect("a stale pooled socket must be retried transparently");
    assert!(!first.is_empty() && !second.is_empty());

    assert_eq!(
        registry.counter("server.connections_total").get(),
        2,
        "the dropped pooled socket forces exactly one replacement connection"
    );
    // Both completions ultimately succeeded despite the injected drop.
    assert_eq!(registry.counter("llm.requests_total").get(), 2);
    assert_eq!(registry.counter("server.fault.drop").get(), 1);
}

#[test]
fn first_request_drop_is_not_silently_retried() {
    // The stale-socket retry must only fire for *reused* connections: a
    // drop on a fresh connection is a real transport failure that belongs
    // to the retry/attribution layer above, not to the pool.
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let server = CompletionServer::start_with_faults(
        llm,
        Arc::clone(&registry),
        FaultInjector::script(vec![Fault::Drop]),
    )
    .unwrap();
    let client = HttpLlmClient::new(server.address(), "gpt-4");

    let result = client.complete_http(&prompt(0));
    assert!(
        matches!(result, Err(nl2vis_llm::http::HttpError::Closed)),
        "a first-attempt drop surfaces as Closed: {result:?}"
    );
    assert_eq!(registry.counter("server.connections_total").get(), 1);
}

#[test]
fn truncated_429_on_reused_conn_is_overloaded_not_a_stale_retry() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // A scripted raw server: request 1 gets a keep-alive 200 (so the
    // client parks the socket), request 2 gets a 429 whose advertised body
    // is cut short by the peer closing. The old classification saw the
    // truncation (`UnexpectedEof`) as a stale pooled socket and silently
    // replayed the shed request on a fresh connection, incrementing
    // `http.conn_stale_retries` for a 429 the server fully decided on.
    fn read_request(reader: &mut BufReader<std::net::TcpStream>) -> bool {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return false;
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = nl2vis_llm::http::header_value(line, "content-length") {
                content_length = v.parse().unwrap_or(0);
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        true
    }

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let requests_seen = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&requests_seen);
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        assert!(read_request(&mut reader));
        seen.fetch_add(1, Ordering::SeqCst);
        let body = r#"{"choices":[{"text":"ok"}]}"#;
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        assert!(read_request(&mut reader));
        seen.fetch_add(1, Ordering::SeqCst);
        stream
            .write_all(
                b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 64\r\nRetry-After: 0.05\r\n\r\ntruncat",
            )
            .unwrap();
        drop(stream);
        // A buggy client reconnects and replays here; poll the backlog
        // briefly to catch it without hanging the test.
        std::thread::sleep(std::time::Duration::from_millis(200));
        listener.set_nonblocking(true).unwrap();
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream);
            if read_request(&mut reader) {
                seen.fetch_add(100, Ordering::SeqCst);
            }
        }
    });

    let client = HttpLlmClient::new(addr, "gpt-4");
    client.complete_http(&prompt(0)).expect("first request");
    let second = client.complete_http(&prompt(1));
    match second {
        Err(nl2vis_llm::http::HttpError::Overloaded { retry_after, .. }) => {
            assert_eq!(
                retry_after,
                Some(std::time::Duration::from_millis(50)),
                "the Retry-After parsed before the truncation must survive"
            );
        }
        other => panic!("truncated 429 must surface as Overloaded, got {other:?}"),
    }
    server.join().unwrap();
    assert_eq!(
        requests_seen.load(Ordering::SeqCst),
        2,
        "the shed request must not be replayed down the stale-socket path"
    );
}

/// Writes one `GET` with `Connection: keep-alive` on an existing socket
/// and reads back exactly one length-delimited response.
fn keep_alive_get(stream: &mut std::net::TcpStream, path: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read, Write};
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8_lossy(&body).to_string())
}

#[test]
fn metrics_and_healthz_are_served_over_one_reused_connection() {
    // PR 3 added server-side keep-alive, but the endpoint tests all used
    // close-per-request clients. A scraper polling /metrics and /healthz
    // should be able to hold one connection for its whole polling loop.
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
    // Seed the registry with one completion so /metrics has content.
    let client = HttpLlmClient::new(server.address(), "gpt-4");
    client.complete_http(&prompt(0)).unwrap();

    let mut stream = std::net::TcpStream::connect(server.address()).unwrap();
    let (status, health) = keep_alive_get(&mut stream, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains(r#""status":"ok""#), "{health}");
    let (status, metrics) = keep_alive_get(&mut stream, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("llm.requests_total 1"), "{metrics}");
    // Alternate the two endpoints a few more times on the same socket.
    for _ in 0..3 {
        assert_eq!(keep_alive_get(&mut stream, "/healthz").0, 200);
        assert_eq!(keep_alive_get(&mut stream, "/metrics").0, 200);
    }

    // One connection for the completion client, one for the scraper.
    assert_eq!(
        registry.counter("server.connections_total").get(),
        2,
        "eight endpoint requests must share the scraper's single connection"
    );
    assert!(
        registry.counter("server.requests_on_reused_conn").get() >= 7,
        "every scraper request after the first rides the reused connection"
    );
}

#[test]
fn concurrent_pooled_clients_stay_correct() {
    // Many threads sharing one pooled client: responses must never cross
    // wires (each thread gets the completion for its own prompt).
    let registry = Arc::new(MetricsRegistry::new());
    let llm = SimLlm::new(ModelProfile::gpt_4(), 9);
    let direct = llm.clone();
    let server = CompletionServer::start_with_registry(llm, Arc::clone(&registry)).unwrap();
    let client = Arc::new(HttpLlmClient::new(server.address(), "gpt-4"));

    std::thread::scope(|s| {
        for t in 0..4 {
            let client = Arc::clone(&client);
            let direct = &direct;
            s.spawn(move || {
                for i in 0..8 {
                    let p = prompt(t * 100 + i);
                    let via_http = client.complete_http(&p).unwrap();
                    assert_eq!(via_http, direct.complete(&p), "responses must not cross");
                }
            });
        }
    });

    let conns = registry.counter("server.connections_total").get();
    assert!(
        conns <= 4,
        "32 requests from 4 threads need at most 4 connections, got {conns}"
    );
    assert_eq!(registry.counter("llm.requests_total").get(), 32);
}
