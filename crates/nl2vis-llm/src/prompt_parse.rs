//! Parsing the *whole* ICL prompt back into its parts — the simulated LLM's
//! view of what it was given: instruction flags, demonstration examples, and
//! the test item.

use crate::recover::{recover, RecoveredSchema};
use nl2vis_prompt::icl::{DATABASE_MARKER, EXAMPLE_MARKER, TEST_MARKER};

/// One parsed demonstration.
#[derive(Debug, Clone)]
pub struct DemoView {
    /// Schema recovered from the demo's database block.
    pub schema: RecoveredSchema,
    /// The demo question.
    pub question: String,
    /// The demo's chain-of-thought sketch, when present.
    pub sketch: Option<String>,
    /// The demo's gold VQL text.
    pub vql: String,
}

/// The parsed prompt.
#[derive(Debug, Clone)]
pub struct PromptView {
    /// The prompt asks for direct Vega-Lite JSON instead of VQL.
    pub vega_output: bool,
    /// Chain-of-thought requested.
    pub chain_of_thought: bool,
    /// Role-play persona present.
    pub role_play: bool,
    /// Parsed demonstrations, in prompt order.
    pub demos: Vec<DemoView>,
    /// Schema of the test database.
    pub test_schema: RecoveredSchema,
    /// The test question.
    pub question: String,
}

/// Parses an assembled prompt. Returns `None` when the prompt lacks the test
/// section (a malformed request).
pub fn parse_prompt(text: &str) -> Option<PromptView> {
    let role_play = text.starts_with("You are a data visualization assistant.");
    let chain_of_thought = text.contains("step by step");

    let (before_test, test_part) = text.split_once(TEST_MARKER)?;

    let mut demos = Vec::new();
    for chunk in before_test.split(EXAMPLE_MARKER).skip(1) {
        if let Some(demo) = parse_demo(chunk) {
            demos.push(demo);
        }
    }

    let (schema_text, q_part) = split_db_and_question(test_part)?;
    let test_schema = recover(&schema_text);
    let question = q_part;
    let vega_output = test_part.trim_end().ends_with("VL:");

    Some(PromptView {
        vega_output,
        chain_of_thought,
        role_play,
        demos,
        test_schema,
        question,
    })
}

fn parse_demo(chunk: &str) -> Option<DemoView> {
    let (schema_text, rest) = split_db_block(chunk)?;
    let schema = recover(&schema_text);
    let mut question = String::new();
    let mut sketch = None;
    let mut vql = String::new();
    for line in rest.lines() {
        if let Some(q) = line.strip_prefix("Q: ") {
            question = q.to_string();
        } else if let Some(s) = line.strip_prefix("Sketch: ") {
            sketch = Some(s.to_string());
        } else if let Some(v) = line.strip_prefix("VQL: ") {
            vql = v.to_string();
        } else if let Some(v) = line.strip_prefix("VL: ") {
            vql = v.to_string();
        }
    }
    if question.is_empty() || vql.is_empty() {
        return None;
    }
    Some(DemoView {
        schema,
        question,
        sketch,
        vql,
    })
}

/// Splits a section into (database text, remainder after it), using the
/// `Q:` line as the boundary.
fn split_db_block(section: &str) -> Option<(String, String)> {
    let after_marker = section
        .split_once(DATABASE_MARKER)
        .map(|(_, r)| r)
        .unwrap_or(section);
    let q_pos = after_marker.find("\nQ: ")?;
    let db_text = after_marker[..q_pos].trim().to_string();
    let rest = after_marker[q_pos..].trim_start().to_string();
    Some((db_text, rest))
}

/// Splits the test section into (database text, question).
fn split_db_and_question(section: &str) -> Option<(String, String)> {
    let (db_text, rest) = split_db_block(section)?;
    let q_line = rest.lines().find_map(|l| l.strip_prefix("Q: "))?;
    Some((db_text, q_line.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::{Corpus, CorpusConfig, Example};
    use nl2vis_prompt::{build_prompt, PromptFormat, PromptOptions};

    fn fixture() -> Corpus {
        Corpus::build(&CorpusConfig::small(19))
    }

    #[test]
    fn parses_full_prompt() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(3).collect();
        let p = build_prompt(&PromptOptions::default(), db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        let view = parse_prompt(&p.text).unwrap();
        assert_eq!(view.demos.len(), 3);
        assert_eq!(view.question, e.nl);
        assert!(!view.test_schema.tables.is_empty());
        assert!(!view.chain_of_thought);
        assert!(!view.role_play);
        // Demo VQLs reparse as valid queries.
        for d in &view.demos {
            nl2vis_query::parse(&d.vql).unwrap();
        }
    }

    #[test]
    fn parses_every_format() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(1).collect();
        for format in PromptFormat::all() {
            let o = PromptOptions {
                format,
                token_budget: 50_000,
                ..Default::default()
            };
            let p = build_prompt(&o, db, &e.nl, &demos, |d| {
                c.catalog.database(&d.db).unwrap()
            });
            let view =
                parse_prompt(&p.text).unwrap_or_else(|| panic!("{format}: prompt did not parse"));
            assert_eq!(view.question, e.nl, "{format}");
            assert!(
                !view.test_schema.tables.is_empty()
                    || !view.test_schema.unattributed_columns.is_empty(),
                "{format}: nothing recovered"
            );
            assert_eq!(view.demos.len(), 1, "{format}");
        }
    }

    #[test]
    fn cot_and_roleplay_flags() {
        let c = fixture();
        let e = &c.examples[0];
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(1).collect();
        let o = PromptOptions {
            chain_of_thought: true,
            role_play: true,
            ..Default::default()
        };
        let p = build_prompt(&o, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        let view = parse_prompt(&p.text).unwrap();
        assert!(view.chain_of_thought);
        assert!(view.role_play);
        assert!(view.demos[0]
            .sketch
            .as_deref()
            .unwrap()
            .starts_with("VISUALIZE["));
    }

    #[test]
    fn malformed_prompt_rejected() {
        assert!(parse_prompt("no structure here").is_none());
    }
}
