//! Schema linking: resolving a natural-language phrase to a column of the
//! recovered schema.
//!
//! Linking tries the identifier's own words first ("hire date" →
//! `hire_date`), then synonym knowledge ("joined" → `hire_date` via the
//! world-knowledge dictionary). Synonym lookups are gated by a
//! caller-supplied predicate so that model profiles with weaker pretraining
//! knowledge miss more alias phrasings — one of the capability axes that
//! separates the simulated models.

use crate::recover::RecoveredSchema;
use nl2vis_corpus::pools::SYNONYMS;
use nl2vis_data::text::{singularize, split_identifier, words};
use std::collections::HashSet;

/// Stopwords ignored during phrase↔identifier matching.
const STOPWORDS: &[&str] = &[
    "the", "a", "an", "of", "each", "every", "all", "per", "for", "by", "in", "on", "their", "its",
    "his", "her", "records", "rows", "entries", "table", "is",
];

/// A successful link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// The linked column name (as spelled in the schema).
    pub column: String,
    /// The owning table, when attribution was available.
    pub table: Option<String>,
    /// Match confidence in `[0, 1]`.
    pub score: f64,
    /// Whether the link needed synonym knowledge.
    pub via_synonym: bool,
}

/// Normalizes a phrase into content tokens: lowercase, stopwords removed,
/// singularized.
pub fn content_tokens(phrase: &str) -> Vec<String> {
    words(phrase)
        .into_iter()
        .filter(|w| !STOPWORDS.contains(&w.as_str()))
        .map(|w| singularize(&w))
        .collect()
}

/// Does `token` match the schema word `col_token` through the synonym
/// dictionary? An alias may map to several canonicals ("grade" → score,
/// gpa); the schema context disambiguates, exactly as an LLM would.
fn synonym_match(token: &str, col_token: &str, knows: &dyn Fn(&str) -> bool) -> bool {
    SYNONYMS.iter().any(|(alias, canonical)| {
        singularize(alias) == token && singularize(canonical) == col_token && knows(alias)
    })
}

/// Links a phrase to the best-matching column of the schema.
///
/// `knows(alias)` gates each synonym-dictionary lookup — a profile with
/// `world_knowledge = 0.9` returns `true` for ~90% of aliases
/// (deterministically per alias).
pub fn link_column(
    phrase: &str,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
) -> Option<Link> {
    link_column_in(phrase, schema, knows, None)
}

/// [`link_column`] restricted to a set of in-scope tables (the tables the
/// query already reads). Filters and order targets reference in-scope
/// columns; restricting the search mirrors how a model attends to the
/// active tables.
pub fn link_column_in(
    phrase: &str,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
    scope: Option<&[String]>,
) -> Option<Link> {
    let raw_tokens = content_tokens(phrase);
    if raw_tokens.is_empty() {
        return None;
    }

    let in_scope =
        |name: &str| scope.is_none_or(|tables| tables.iter().any(|t| t.eq_ignore_ascii_case(name)));
    let candidates: Vec<(String, Option<String>)> = if schema.attributed {
        schema
            .tables
            .iter()
            .filter(|t| in_scope(&t.name))
            .flat_map(|t| {
                t.columns
                    .iter()
                    .map(move |(c, _)| (c.clone(), Some(t.name.clone())))
            })
            .collect()
    } else {
        schema
            .unattributed_columns
            .iter()
            .map(|c| (c.clone(), None))
            .collect()
    };

    let mut best: Option<Link> = None;
    for (column, table) in candidates {
        let col_tokens: HashSet<String> = split_identifier(&column)
            .iter()
            .map(|w| singularize(w))
            .collect();
        // A phrase token covers a column token directly or via a known
        // synonym entry.
        let mut used_syn = false;
        let mut covered_phrase = 0usize;
        let mut covered_cols: HashSet<&String> = HashSet::new();
        for t in &raw_tokens {
            if col_tokens.contains(t) {
                covered_phrase += 1;
                covered_cols.insert(col_tokens.get(t).unwrap());
            } else if let Some(ct) = col_tokens.iter().find(|ct| synonym_match(t, ct, knows)) {
                covered_phrase += 1;
                covered_cols.insert(ct);
                used_syn = true;
            }
        }
        if covered_phrase == 0 {
            continue;
        }
        let inter = covered_cols.len();
        let union = raw_tokens.len() + col_tokens.len() - inter;
        let jac = inter as f64 / union as f64;
        // Full coverage of the identifier's tokens is a strong match.
        let score = if col_tokens.iter().all(|ct| covered_cols.contains(ct)) {
            0.8 + 0.2 * jac
        } else {
            jac
        };
        let via_synonym = used_syn;
        if score > 0.32 {
            let better = match &best {
                None => true,
                Some(b) => {
                    // Ties prefer a direct (non-synonym) match, then the
                    // alphabetically first column for determinism.
                    score > b.score + 1e-12
                        || ((score - b.score).abs() <= 1e-12
                            && ((!via_synonym && b.via_synonym)
                                || (via_synonym == b.via_synonym && column < b.column)))
                }
            };
            if better {
                best = Some(Link {
                    column,
                    table,
                    score,
                    via_synonym,
                });
            }
        }
    }
    best
}

/// Links a phrase to a table of the schema by name-token overlap (also
/// accepting known synonyms of the table-name words, e.g. "clients" →
/// `customer`).
pub fn link_table(phrase: &str, schema: &RecoveredSchema) -> Option<String> {
    link_table_with(phrase, schema, &|_| true)
}

/// [`link_table`] with an explicit synonym-knowledge gate.
pub fn link_table_with(
    phrase: &str,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
) -> Option<String> {
    let tokens: HashSet<String> = content_tokens(phrase).into_iter().collect();
    let mut best: Option<(f64, String)> = None;
    for t in &schema.tables {
        let name_tokens: Vec<String> = split_identifier(&t.name)
            .iter()
            .map(|w| singularize(w))
            .collect();
        let inter = name_tokens
            .iter()
            .filter(|w| tokens.contains(*w) || tokens.iter().any(|p| synonym_match(p, w, knows)))
            .count();
        if inter == 0 {
            continue;
        }
        let score = inter as f64 / name_tokens.len() as f64;
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, t.name.clone()));
        }
    }
    best.map(|(_, name)| name)
}

/// The "label" column of a table: the column a user means when they count
/// the table's entities ("the number of technicians"). Prefers a column
/// named `name`/`title`, else the first text column that is not a key.
pub fn label_column(schema: &RecoveredSchema, table: &str) -> Option<String> {
    let t = schema
        .tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(table))?;
    for (c, _) in &t.columns {
        if c == "name" || c == "title" || c.ends_with("_name") || c.ends_with("_title") {
            return Some(c.clone());
        }
    }
    t.columns
        .iter()
        .find(|(c, ty)| {
            !c.ends_with("_id")
                && c != "id"
                && ty
                    .map(|t| t == nl2vis_data::value::DataType::Text)
                    .unwrap_or(true)
        })
        .map(|(c, _)| c.clone())
}

/// Finds a join path between two tables in the recovered schema: first via
/// recovered foreign keys, then (when the format carried none) by guessing a
/// same-named column pair — the heuristic an LLM falls back on, and a source
/// of join errors for FK-less formats.
pub fn find_join(schema: &RecoveredSchema, a: &str, b: &str) -> Option<(String, String, bool)> {
    for (ft, fc, tt, tc) in &schema.fks {
        if ft.eq_ignore_ascii_case(a) && tt.eq_ignore_ascii_case(b) {
            return Some((fc.clone(), tc.clone(), true));
        }
        if ft.eq_ignore_ascii_case(b) && tt.eq_ignore_ascii_case(a) {
            return Some((tc.clone(), fc.clone(), true));
        }
    }
    // Heuristic: a column name shared by both tables.
    let ta = schema
        .tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(a))?;
    let tb = schema
        .tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(b))?;
    for (ca, _) in &ta.columns {
        if tb.columns.iter().any(|(cb, _)| cb.eq_ignore_ascii_case(ca)) {
            // Prefer id-ish columns.
            if ca.ends_with("_id") || ca == "id" {
                return Some((ca.clone(), ca.clone(), false));
            }
        }
    }
    for (ca, _) in &ta.columns {
        if tb.columns.iter().any(|(cb, _)| cb.eq_ignore_ascii_case(ca)) {
            return Some((ca.clone(), ca.clone(), false));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;
    use nl2vis_corpus::domains::all_domains;
    use nl2vis_corpus::generate::instantiate;
    use nl2vis_data::Rng;
    use nl2vis_prompt::PromptFormat;

    fn schema(format: PromptFormat) -> RecoveredSchema {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        recover(&format.serialize(&db, "question"))
    }

    const KNOW_ALL: fn(&str) -> bool = |_| true;
    const KNOW_NONE: fn(&str) -> bool = |_| false;

    #[test]
    fn direct_identifier_words_link() {
        let s = schema(PromptFormat::Table2Sql);
        let l = link_column("hire date", &s, &KNOW_ALL).unwrap();
        assert_eq!(l.column, "hire_date");
        assert_eq!(l.table.as_deref(), Some("technician"));
        assert!(!l.via_synonym);
        assert!(l.score > 0.8);
    }

    #[test]
    fn plural_and_case_tolerated() {
        let s = schema(PromptFormat::Table2Sql);
        let l = link_column("Teams", &s, &KNOW_NONE).unwrap();
        assert_eq!(l.column, "team");
    }

    #[test]
    fn synonym_linking_requires_knowledge() {
        let s = schema(PromptFormat::Table2Sql);
        let with = link_column("pay", &s, &KNOW_ALL).unwrap();
        assert_eq!(with.column, "salary");
        assert!(with.via_synonym);
        assert!(link_column("pay", &s, &KNOW_NONE).is_none());
    }

    #[test]
    fn unattributed_schema_links_without_table() {
        let s = schema(PromptFormat::Schema);
        let l = link_column("team", &s, &KNOW_NONE).unwrap();
        assert_eq!(l.column, "team");
        assert_eq!(l.table, None);
    }

    #[test]
    fn table_linking() {
        let s = schema(PromptFormat::Table2Sql);
        assert_eq!(
            link_table("the technician table", &s).as_deref(),
            Some("technician")
        );
        assert_eq!(link_table("machines", &s).as_deref(), Some("machine"));
        assert_eq!(link_table("the aardvark registry", &s), None);
    }

    #[test]
    fn join_via_fk_vs_heuristic() {
        let with_fk = schema(PromptFormat::Table2Sql);
        let (l, r, confident) = find_join(&with_fk, "machine", "technician").unwrap();
        assert_eq!((l.as_str(), r.as_str()), ("tech_id", "tech_id"));
        assert!(confident);
        // Chat2Vis carries no FKs: fall back to the same-name heuristic.
        let without = schema(PromptFormat::Chat2Vis);
        let (l2, _, confident2) = find_join(&without, "machine", "technician").unwrap();
        assert_eq!(l2, "tech_id");
        assert!(!confident2);
    }

    #[test]
    fn unrelated_phrase_does_not_link() {
        let s = schema(PromptFormat::Table2Sql);
        assert!(link_column("quarterly revenue forecast", &s, &KNOW_NONE).is_none());
    }

    /// Vocabulary closure audit: every alias the corpus realizer may emit
    /// must be resolvable by the linker — directly from identifier tokens,
    /// through the synonym dictionary, or as a table-name reference. An
    /// unlinkable alias would silently depress every model's accuracy.
    #[test]
    fn every_domain_alias_is_linkable() {
        use nl2vis_corpus::domains::all_domains;
        let know_all = |_: &str| true;
        let mut rng = Rng::new(3);
        for spec in all_domains() {
            let db = instantiate(spec, 0, &mut rng);
            let s = recover(&PromptFormat::Table2Sql.serialize(&db, "audit"));
            for t in db.tables() {
                for c in &t.def.columns {
                    for alias in &c.aliases {
                        let column_hit =
                            link_column(alias, &s, &know_all).is_some_and(|l| l.column == c.name);
                        let table_hit = link_table_with(alias, &s, &know_all)
                            .is_some_and(|tn| tn.eq_ignore_ascii_case(&t.def.name));
                        assert!(
                            column_hit || table_hit,
                            "alias `{alias}` for {}.{}.{} does not link",
                            spec.domain,
                            t.def.name,
                            c.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn content_tokens_strip_stopwords() {
        assert_eq!(
            content_tokens("the number of the teams"),
            vec!["number", "team"]
        );
    }
}
