//! Schema recovery: how the simulated LLM "reads" a serialized table out of
//! the prompt text.
//!
//! Each serialization format of Figure 4 is parsed by a dedicated recognizer
//! (auto-detected from surface features, as an LLM would recognize the
//! format). What a format failed to encode — column↔table attribution for
//! the flat `Schema` form, types for `Column=[]`, foreign keys for
//! `Chat2Vis` — is simply absent from the recovered schema, and the
//! downstream generator must guess, which is where format-dependent accuracy
//! differences are born.

use nl2vis_data::value::DataType;
use nl2vis_data::Json;

/// A table as recovered from prompt text.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTable {
    /// Table name.
    pub name: String,
    /// Columns with their types when the format carried them.
    pub columns: Vec<(String, Option<DataType>)>,
    /// A sample row rendered as strings, when present.
    pub sample_row: Option<Vec<String>>,
    /// The primary-key column, when marked.
    pub primary_key: Option<String>,
}

/// A schema as recovered from prompt text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredSchema {
    /// Database name when stated.
    pub database: Option<String>,
    /// Recovered tables.
    pub tables: Vec<RecoveredTable>,
    /// Foreign keys (from_table, from_col, to_table, to_col).
    pub fks: Vec<(String, String, String, String)>,
    /// False when columns could not be attributed to tables (the flat
    /// `Schema` format): `unattributed_columns` then holds the global list.
    pub attributed: bool,
    /// Columns without table attribution (flat `Schema` only).
    pub unattributed_columns: Vec<String>,
}

impl RecoveredSchema {
    /// A full-fidelity view of a database's schema, for models that access
    /// the database directly (fine-tuned and retrieval baselines) rather
    /// than through a serialized prompt.
    pub fn from_database(db: &nl2vis_data::Database) -> RecoveredSchema {
        RecoveredSchema {
            database: Some(db.name().to_string()),
            tables: db
                .tables()
                .iter()
                .map(|t| RecoveredTable {
                    name: t.def.name.clone(),
                    columns: t
                        .def
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), Some(c.dtype)))
                        .collect(),
                    sample_row: t.row(0).map(|r| r.iter().map(|v| v.render()).collect()),
                    primary_key: t.def.primary_key.map(|i| t.def.columns[i].name.clone()),
                })
                .collect(),
            fks: db
                .schema
                .foreign_keys
                .iter()
                .map(|fk| {
                    (
                        fk.from_table.clone(),
                        fk.from_column.clone(),
                        fk.to_table.clone(),
                        fk.to_column.clone(),
                    )
                })
                .collect(),
            attributed: true,
            unattributed_columns: Vec::new(),
        }
    }

    /// All known column names (attributed or not).
    pub fn all_columns(&self) -> Vec<&str> {
        if self.attributed {
            self.tables
                .iter()
                .flat_map(|t| t.columns.iter().map(|(c, _)| c.as_str()))
                .collect()
        } else {
            self.unattributed_columns
                .iter()
                .map(String::as_str)
                .collect()
        }
    }

    /// The table that owns a column, when attribution is available. Returns
    /// `None` for unknown columns, ambiguous unqualified names resolve to the
    /// first declaring table.
    pub fn table_of(&self, column: &str) -> Option<&str> {
        self.tables
            .iter()
            .find(|t| {
                t.columns
                    .iter()
                    .any(|(c, _)| c.eq_ignore_ascii_case(column))
            })
            .map(|t| t.name.as_str())
    }

    /// The declared type of a column, if recovered.
    pub fn type_of(&self, column: &str) -> Option<DataType> {
        self.tables.iter().find_map(|t| {
            t.columns
                .iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(column))
                .and_then(|(_, ty)| *ty)
        })
    }

    /// Whether any foreign-key information was recovered.
    pub fn has_fks(&self) -> bool {
        !self.fks.is_empty()
    }
}

/// Recovers a schema from a serialized database block, auto-detecting the
/// format from surface features.
pub fn recover(text: &str) -> RecoveredSchema {
    let trimmed = text.trim_start();
    if trimmed.starts_with("CREATE TABLE") {
        recover_sql(text)
    } else if trimmed.starts_with('{') {
        recover_json(text)
    } else if trimmed.starts_with("<database") {
        recover_xml(text)
    } else if trimmed.starts_with("import datetime") || trimmed.contains("@dataclass") {
        recover_code(text)
    } else if trimmed.contains("\n| ---") || trimmed.starts_with("### ") {
        recover_markdown(text)
    } else if trimmed.contains("# table:") {
        recover_csv(text)
    } else if trimmed.starts_with("Use a dataframe called") {
        recover_chat2vis(text)
    } else if trimmed.starts_with("The database") {
        recover_prose(text)
    } else if trimmed.contains(" = [ ") {
        recover_column_list(text)
    } else if trimmed
        .lines()
        .any(|l| l.contains(" ( ") && l.trim_end().ends_with(')'))
    {
        recover_table_column(text)
    } else if trimmed.contains("\nColumns: ") || trimmed.contains("Columns: ") {
        recover_flat(text)
    } else {
        RecoveredSchema::default()
    }
}

fn dtype_from_name(name: &str) -> Option<DataType> {
    match name.to_ascii_lowercase().as_str() {
        "int" | "integer" => Some(DataType::Int),
        "float" | "real" => Some(DataType::Float),
        "text" | "str" | "string" | "varchar" => Some(DataType::Text),
        "bool" | "boolean" => Some(DataType::Bool),
        "date" | "datetime.date" => Some(DataType::Date),
        _ => None,
    }
}

fn recover_flat(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: false,
        ..Default::default()
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Database: ") {
            s.database = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("Tables: ") {
            for t in rest.split(',') {
                s.tables.push(RecoveredTable {
                    name: t.trim().to_string(),
                    columns: vec![],
                    sample_row: None,
                    primary_key: None,
                });
            }
        } else if let Some(rest) = line.strip_prefix("Columns: ") {
            s.unattributed_columns = rest
                .split(',')
                .map(|c| c.trim().to_string())
                .filter(|c| !c.is_empty())
                .collect();
        }
    }
    s
}

fn recover_table_column(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Database: ") {
            s.database = Some(rest.trim().to_string());
        } else if let Some(open) = line.find(" ( ") {
            let name = line[..open].trim().to_string();
            let inner = line[open + 3..].trim_end().trim_end_matches(')').trim();
            let columns = inner
                .split(',')
                .map(|c| (c.trim().to_string(), None))
                .filter(|(c, _)| !c.is_empty())
                .collect();
            s.tables.push(RecoveredTable {
                name,
                columns,
                sample_row: None,
                primary_key: None,
            });
        }
    }
    s
}

fn recover_column_list(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    let mut current_rows_table: Option<usize> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("Database: ") {
            s.database = Some(rest.trim().to_string());
        } else if let Some(eq) = line.find(" = [ ") {
            let name = line[..eq].trim().to_string();
            let inner = line[eq + 5..].trim_end().trim_end_matches(']').trim();
            let columns = inner
                .split(',')
                .map(|c| (c.trim().to_string(), None))
                .filter(|(c, _)| !c.is_empty())
                .collect();
            s.tables.push(RecoveredTable {
                name,
                columns,
                sample_row: None,
                primary_key: None,
            });
            current_rows_table = None;
        } else if let Some(rest) = line.strip_prefix("Foreign key: ") {
            if let Some(fk) = parse_fk_eq(rest) {
                s.fks.push(fk);
            }
        } else if let Some(rest) = line.strip_prefix("Rows of ") {
            let tname = rest.trim_end_matches(':').trim();
            current_rows_table = s.tables.iter().position(|t| t.name == tname);
        } else if line.starts_with("( ") {
            if let Some(ti) = current_rows_table {
                if s.tables[ti].sample_row.is_none() {
                    let inner = line.trim_start_matches("( ").trim_end_matches(" )");
                    s.tables[ti].sample_row =
                        Some(inner.split(" , ").map(str::to_string).collect());
                }
            }
        }
    }
    s
}

/// Parses `a.b = c.d`.
fn parse_fk_eq(text: &str) -> Option<(String, String, String, String)> {
    let (lhs, rhs) = text.split_once('=')?;
    let (ft, fc) = lhs.trim().split_once('.')?;
    let (tt, tc) = rhs.trim().split_once('.')?;
    Some((
        ft.to_string(),
        fc.to_string(),
        tt.to_string(),
        tc.to_string(),
    ))
}

fn recover_prose(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    if let Some(start) = text.find('"') {
        if let Some(end) = text[start + 1..].find('"') {
            s.database = Some(text[start + 1..start + 1 + end].to_string());
        }
    }
    // Sentences like: The table X records N entries and includes the fields a, b, c.
    for sentence in text.split(". ") {
        if let Some(rest) = sentence.trim().strip_prefix("The table ") {
            let Some((name, tail)) = rest.split_once(' ') else {
                continue;
            };
            if let Some(fields) = tail.split("includes the fields ").nth(1) {
                let columns = fields
                    .trim_end_matches('.')
                    .split(',')
                    .map(|c| (c.trim().to_string(), None))
                    .filter(|(c, _)| !c.is_empty())
                    .collect();
                s.tables.push(RecoveredTable {
                    name: name.to_string(),
                    columns,
                    sample_row: None,
                    primary_key: None,
                });
            }
        } else if let Some(rest) = sentence.trim().strip_prefix("Each ") {
            // Each X row refers to a Y row through Z.
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.len() >= 8 && words[1] == "row" && words[2] == "refers" {
                let from_table = words[0].to_string();
                let to_table = words[5].to_string();
                let through = words.last().unwrap().trim_end_matches('.').to_string();
                s.fks.push((from_table, through.clone(), to_table, through));
            }
        }
    }
    s
}

fn recover_chat2vis(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    for line in text.lines() {
        let mut table = RecoveredTable {
            name: String::new(),
            columns: vec![],
            sample_row: None,
            primary_key: None,
        };
        if let Some(rest) = line.strip_prefix("Use a dataframe called ") {
            if let Some((name, _)) = rest.split_once(" with columns ") {
                table.name = name.to_string();
            }
        }
        // The column 'x' has data type t.
        for part in line.split("The column '").skip(1) {
            if let Some((col, tail)) = part.split_once('\'') {
                let ty = tail
                    .split("has data type ")
                    .nth(1)
                    .map(|t| t.trim_end_matches(['.', ' ']))
                    .and_then(|t| dtype_from_name(t.split_whitespace().next().unwrap_or("")));
                table.columns.push((col.to_string(), ty));
            }
        }
        if !table.name.is_empty() {
            s.tables.push(table);
        }
    }
    s
}

fn recover_json(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    let Ok(j) = Json::parse(text) else { return s };
    s.database = j.get("database").and_then(Json::as_str).map(str::to_string);
    if let Some(tables) = j.get("tables").and_then(Json::as_array) {
        for t in tables {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let columns = t
                .get("columns")
                .and_then(Json::as_array)
                .map(|cols| {
                    cols.iter()
                        .filter_map(|c| {
                            let cname = c.get("name").and_then(Json::as_str)?;
                            let ty = c
                                .get("type")
                                .and_then(Json::as_str)
                                .and_then(dtype_from_name);
                            Some((cname.to_string(), ty))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let sample_row = t.get("sample_row").and_then(Json::as_array).map(|row| {
                row.iter()
                    .map(|v| match v {
                        Json::String(x) => x.clone(),
                        other => other.to_compact(),
                    })
                    .collect()
            });
            let primary_key = t
                .get("primary_key")
                .and_then(Json::as_str)
                .map(str::to_string);
            s.tables.push(RecoveredTable {
                name,
                columns,
                sample_row,
                primary_key,
            });
        }
    }
    if let Some(fks) = j.get("foreign_keys").and_then(Json::as_array) {
        for fk in fks {
            let from = fk.get("from").and_then(Json::as_str).unwrap_or_default();
            let to = fk.get("to").and_then(Json::as_str).unwrap_or_default();
            if let (Some((ft, fc)), Some((tt, tc))) = (from.split_once('.'), to.split_once('.')) {
                s.fks.push((
                    ft.to_string(),
                    fc.to_string(),
                    tt.to_string(),
                    tc.to_string(),
                ));
            }
        }
    }
    s
}

fn recover_csv(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if let Some(name) = line.strip_prefix("# table: ") {
            let header = lines.next().unwrap_or_default();
            let columns = header
                .split(',')
                .map(|c| (c.trim().to_string(), None))
                .filter(|(c, _)| !c.is_empty())
                .collect();
            let sample_row = lines
                .peek()
                .filter(|l| !l.starts_with("# table:"))
                .map(|l| l.split(',').map(|c| c.trim().to_string()).collect());
            if sample_row.is_some() {
                lines.next();
            }
            s.tables.push(RecoveredTable {
                name: name.trim().to_string(),
                columns,
                sample_row,
                primary_key: None,
            });
        }
    }
    s
}

fn recover_markdown(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        if let Some(name) = line.strip_prefix("### ") {
            let header = lines.next().unwrap_or_default();
            let columns: Vec<(String, Option<DataType>)> = header
                .trim_matches('|')
                .split('|')
                .map(|c| (c.trim().to_string(), None))
                .filter(|(c, _)| !c.is_empty())
                .collect();
            lines.next(); // separator row
            let sample_row = lines.peek().filter(|l| l.starts_with('|')).map(|l| {
                l.trim_matches('|')
                    .split('|')
                    .map(|c| c.trim().to_string())
                    .collect()
            });
            if sample_row.is_some() {
                lines.next();
            }
            s.tables.push(RecoveredTable {
                name: name.trim().to_string(),
                columns,
                sample_row,
                primary_key: None,
            });
        }
    }
    s
}

fn recover_xml(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    s.database = attr(text, "database", "name");
    for chunk in text.split("<table ").skip(1) {
        let name = attr_inline(chunk, "name").unwrap_or_default();
        let mut table = RecoveredTable {
            name,
            columns: vec![],
            sample_row: None,
            primary_key: None,
        };
        let body = chunk.split("</table>").next().unwrap_or("");
        for col_chunk in body.split("<column ").skip(1) {
            let cname = attr_inline(col_chunk, "name").unwrap_or_default();
            let ty = attr_inline(col_chunk, "type").and_then(|t| dtype_from_name(&t));
            if col_chunk[..col_chunk.find("/>").unwrap_or(col_chunk.len())]
                .contains("key=\"primary\"")
            {
                table.primary_key = Some(cname.clone());
            }
            table.columns.push((cname, ty));
        }
        if let Some(row) = body
            .split("<row>")
            .nth(1)
            .and_then(|r| r.split("</row>").next())
        {
            let mut cells = Vec::new();
            for (cname, _) in &table.columns {
                let open = format!("<{cname}>");
                let close = format!("</{cname}>");
                if let Some(v) = row
                    .split(open.as_str())
                    .nth(1)
                    .and_then(|r| r.split(close.as_str()).next())
                {
                    cells.push(
                        v.replace("&amp;", "&")
                            .replace("&lt;", "<")
                            .replace("&gt;", ">"),
                    );
                }
            }
            if !cells.is_empty() {
                table.sample_row = Some(cells);
            }
        }
        s.tables.push(table);
    }
    for chunk in text.split("<foreign_key ").skip(1) {
        let from = attr_inline(chunk, "from").unwrap_or_default();
        let to = attr_inline(chunk, "to").unwrap_or_default();
        if let (Some((ft, fc)), Some((tt, tc))) = (from.split_once('.'), to.split_once('.')) {
            s.fks.push((
                ft.to_string(),
                fc.to_string(),
                tt.to_string(),
                tc.to_string(),
            ));
        }
    }
    s
}

fn attr(text: &str, tag: &str, name: &str) -> Option<String> {
    let open = format!("<{tag} ");
    text.split(open.as_str())
        .nth(1)
        .and_then(|chunk| attr_inline(chunk, name))
}

fn attr_inline(chunk: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let rest = chunk.split(pat.as_str()).nth(1)?;
    rest.split('"').next().map(str::to_string)
}

fn recover_sql(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    for stmt in text.split("CREATE TABLE ").skip(1) {
        let Some(open) = stmt.find('(') else { continue };
        let name = stmt[..open].trim().to_string();
        let body = match stmt.find(");") {
            Some(end) => &stmt[open + 1..end],
            None => &stmt[open + 1..],
        };
        let mut table = RecoveredTable {
            name: name.clone(),
            columns: vec![],
            sample_row: None,
            primary_key: None,
        };
        for line in body.split(",\n") {
            let line = line.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix("FOREIGN KEY (") {
                // FOREIGN KEY (col) REFERENCES parent(pcol)
                let Some((fc, tail)) = rest.split_once(')') else {
                    continue;
                };
                let Some(refpart) = tail.split("REFERENCES ").nth(1) else {
                    continue;
                };
                let Some((tt, tcpart)) = refpart.split_once('(') else {
                    continue;
                };
                let tc = tcpart.trim_end_matches([')', ';', ' ']);
                s.fks.push((
                    name.clone(),
                    fc.trim().to_string(),
                    tt.trim().to_string(),
                    tc.to_string(),
                ));
            } else if !line.is_empty() {
                let mut parts = line.split_whitespace();
                let cname = parts.next().unwrap_or_default().to_string();
                let ty = parts.next().and_then(dtype_from_name);
                if line.contains("PRIMARY KEY") {
                    table.primary_key = Some(cname.clone());
                }
                table.columns.push((cname, ty));
            }
        }
        s.tables.push(table);
    }
    // `+Select` sample rows: lines like `-- 1 | ann | NYY ...` after a
    // `-- SELECT * FROM t LIMIT n;` marker.
    let mut current: Option<usize> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("-- SELECT * FROM ") {
            let tname = rest.split_whitespace().next().unwrap_or_default();
            current = s.tables.iter().position(|t| t.name == tname);
        } else if let Some(rest) = line.strip_prefix("-- ") {
            if let Some(ti) = current {
                if s.tables[ti].sample_row.is_none() && rest.contains(" | ") {
                    s.tables[ti].sample_row = Some(rest.split(" | ").map(str::to_string).collect());
                }
            }
        }
    }
    s
}

fn recover_code(text: &str) -> RecoveredSchema {
    let mut s = RecoveredSchema {
        attributed: true,
        ..Default::default()
    };
    let mut current: Option<RecoveredTable> = None;
    // Class names are PascalCase of table names; remember the mapping for FKs.
    let mut class_to_table: Vec<(String, String)> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("class ") {
            if let Some(t) = current.take() {
                s.tables.push(t);
            }
            let class_name = rest.trim_end_matches(':').to_string();
            let table_name = de_pascal(&class_name);
            class_to_table.push((class_name, table_name.clone()));
            current = Some(RecoveredTable {
                name: table_name,
                columns: vec![],
                sample_row: None,
                primary_key: None,
            });
        } else if let Some(t) = current.as_mut() {
            let trimmed = line.trim();
            if trimmed.starts_with("\"\"\"") || trimmed.starts_with('@') || trimmed.is_empty() {
                if trimmed.is_empty() && !t.columns.is_empty() {
                    s.tables.push(current.take().unwrap());
                }
                continue;
            }
            if let Some((cname, tail)) = trimmed.split_once(": ") {
                let ty_word = tail.split_whitespace().next().unwrap_or_default();
                let ty = dtype_from_name(ty_word);
                if tail.contains("# primary key") {
                    t.primary_key = Some(cname.to_string());
                }
                t.columns.push((cname.to_string(), ty));
            }
        }
    }
    if let Some(t) = current.take() {
        s.tables.push(t);
    }
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("ForeignKey(source=") {
            let Some((src, tail)) = rest.split_once(", target=") else {
                continue;
            };
            let tgt = tail.trim_end_matches(')');
            let (Some((fclass, fc)), Some((tclass, tc))) =
                (src.split_once('.'), tgt.split_once('.'))
            else {
                continue;
            };
            let resolve = |class: &str| {
                class_to_table
                    .iter()
                    .find(|(c, _)| c == class)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_else(|| de_pascal(class))
            };
            s.fks.push((
                resolve(fclass),
                fc.to_string(),
                resolve(tclass),
                tc.to_string(),
            ));
        }
    }
    s
}

fn de_pascal(class: &str) -> String {
    nl2vis_data::text::split_identifier(class).join("_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::domains::all_domains;
    use nl2vis_corpus::generate::instantiate;
    use nl2vis_data::{Database, Rng};
    use nl2vis_prompt::PromptFormat;

    fn db() -> Database {
        instantiate(&all_domains()[0], 0, &mut Rng::new(2))
    }

    #[test]
    fn every_format_recovers_tables() {
        let d = db();
        for f in PromptFormat::all() {
            let text = f.serialize(&d, "count technicians per team");
            let r = recover(&text);
            assert!(
                !r.tables.is_empty(),
                "{f}: no tables recovered from:\n{text}"
            );
            if f.attributes_columns() {
                assert!(r.attributed, "{f} should attribute columns");
                let tech = r
                    .tables
                    .iter()
                    .find(|t| t.name == "technician")
                    .unwrap_or_else(|| panic!("{f}: technician missing"));
                let cols: Vec<&str> = tech.columns.iter().map(|(c, _)| c.as_str()).collect();
                assert!(cols.contains(&"team"), "{f}: team missing from {cols:?}");
                assert!(cols.contains(&"salary"), "{f}: salary missing");
            } else {
                assert!(!r.attributed);
                assert!(r.unattributed_columns.contains(&"team".to_string()), "{f}");
            }
        }
    }

    #[test]
    fn typed_formats_recover_types() {
        let d = db();
        for f in PromptFormat::all() {
            let r = recover(&f.serialize(&d, ""));
            let salary_ty = r.type_of("salary");
            if f.carries_types() {
                assert_eq!(salary_ty, Some(DataType::Float), "{f}");
                assert_eq!(r.type_of("hire_date"), Some(DataType::Date), "{f}");
            } else {
                assert_eq!(salary_ty, None, "{f} should not recover types");
            }
        }
    }

    #[test]
    fn fk_formats_recover_fks() {
        let d = db();
        for f in PromptFormat::all() {
            let r = recover(&f.serialize(&d, ""));
            assert_eq!(r.has_fks(), f.carries_fks(), "{f}");
            if f.carries_fks() {
                let fk = &r.fks[0];
                assert_eq!(fk.0, "machine");
                assert_eq!(fk.1, "tech_id");
                assert_eq!(fk.2, "technician");
            }
        }
    }

    #[test]
    fn row_embedding_formats_recover_a_sample_row() {
        let d = db();
        for f in [
            PromptFormat::Table2Json,
            PromptFormat::Table2Csv,
            PromptFormat::Table2Md,
            PromptFormat::Table2Xml,
            PromptFormat::Table2SqlSelect,
            PromptFormat::ColumnListFkValue,
        ] {
            let r = recover(&f.serialize(&d, "the NYY team"));
            let tech = r.tables.iter().find(|t| t.name == "technician").unwrap();
            let row = tech
                .sample_row
                .as_ref()
                .unwrap_or_else(|| panic!("{f}: no row"));
            assert_eq!(row.len(), 6, "{f}: row {row:?}");
        }
    }

    #[test]
    fn primary_keys_recovered_where_marked() {
        let d = db();
        for f in [
            PromptFormat::Table2Sql,
            PromptFormat::Table2Json,
            PromptFormat::Table2Xml,
            PromptFormat::Table2Code,
        ] {
            let r = recover(&f.serialize(&d, ""));
            let tech = r.tables.iter().find(|t| t.name == "technician").unwrap();
            assert_eq!(tech.primary_key.as_deref(), Some("tech_id"), "{f}");
        }
    }

    #[test]
    fn table_of_lookup() {
        let d = db();
        let r = recover(&PromptFormat::Table2Sql.serialize(&d, ""));
        assert_eq!(r.table_of("salary"), Some("technician"));
        assert_eq!(r.table_of("value"), Some("machine"));
        assert_eq!(r.table_of("nonexistent"), None);
    }

    #[test]
    fn garbage_recovers_empty() {
        let r = recover("complete nonsense with no structure at all");
        assert!(r.tables.is_empty());
    }

    #[test]
    fn truncated_serializations_do_not_panic() {
        let d = db();
        for f in PromptFormat::all() {
            let text = f.serialize(&d, "q");
            // Chop the serialization at several points; recovery must stay
            // total (possibly returning partial schemas).
            for frac in [1, 2, 3, 5] {
                let cut = text.len() * frac / 6;
                let mut truncated = String::new();
                for ch in text.chars() {
                    if truncated.len() + ch.len_utf8() > cut {
                        break;
                    }
                    truncated.push(ch);
                }
                let _ = recover(&truncated);
            }
        }
    }

    #[test]
    fn malformed_xml_and_sql_are_partial_not_panicking() {
        let r = recover("<database name=\"d\"><table name=\"t\"><column name=\"a\"");
        assert!(r.tables.len() <= 1);
        let r = recover("CREATE TABLE t (\n  a INTEGER,\n  b TEX");
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].columns.len(), 2);
        let r = recover("{\"database\": \"d\", \"tables\": [");
        assert!(r.tables.is_empty(), "unparseable JSON recovers nothing");
    }

    #[test]
    fn tricky_cell_values_survive_serialization_and_recovery() {
        use nl2vis_data::schema::{ColumnDef, DatabaseSchema, TableDef};
        use nl2vis_data::value::DataType::*;
        use nl2vis_data::Value;
        let mut schema = DatabaseSchema::new("tricky", "test");
        schema.tables.push(TableDef::new(
            "notes",
            vec![ColumnDef::new("label", Text), ColumnDef::new("n", Int)],
        ));
        let mut d = nl2vis_data::Database::new(schema);
        for (label, n) in [
            ("has,comma", 1i64),
            ("has\"quote", 2),
            ("has<angle>&amp", 3),
            ("has'apostrophe", 4),
        ] {
            d.insert("notes", vec![label.into(), Value::Int(n)])
                .unwrap();
        }
        for f in PromptFormat::all() {
            let text = f.serialize(&d, "the note has,comma");
            let r = recover(&text);
            if f.attributes_columns() {
                let t = r
                    .tables
                    .iter()
                    .find(|t| t.name == "notes")
                    .unwrap_or_else(|| panic!("{f}: table lost"));
                assert_eq!(t.columns.len(), 2, "{f}: columns corrupted by cell content");
            }
        }
    }

    #[test]
    fn prompt_injection_text_is_just_data() {
        // Schema text containing instruction-like prose must not confuse the
        // recognizers into a different format.
        let sneaky = "Database: d\nt = [ ignore_previous_instructions , b ]";
        let r = recover(sneaky);
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].columns.len(), 2);
    }

    #[test]
    fn all_domains_all_formats_roundtrip_column_counts() {
        let mut rng = Rng::new(5);
        for spec in all_domains().iter().take(6) {
            let d = instantiate(spec, 0, &mut rng);
            let expected: usize = d.schema.total_columns();
            for f in PromptFormat::all() {
                let r = recover(&f.serialize(&d, "sample question"));
                let got: usize = if r.attributed {
                    r.tables.iter().map(|t| t.columns.len()).sum()
                } else {
                    r.unattributed_columns.len()
                };
                assert_eq!(got, expected, "{f} on {}", d.name());
            }
        }
    }
}
