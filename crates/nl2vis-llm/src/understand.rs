//! Question understanding: parsing a natural-language request into an
//! *intent* (chart, aggregate, axis phrases, filters, ordering, …) and
//! grounding that intent against a recovered schema to assemble a VQL query.
//!
//! This module is the simulated LLM's language competence. It is
//! deterministic; what varies between model profiles is (a) the synonym
//! knowledge gate used during grounding and (b) the error injection applied
//! afterwards (in [`crate::sim`]). The *grounding risk* diagnostics returned
//! here — unlinked phrases, guessed joins, missing attribution — feed the
//! error model, so prompt formats that recover less structure mechanically
//! produce more errors.

use crate::link::{find_join, label_column, link_column, link_table, link_table_with, Link};
use crate::recover::RecoveredSchema;
use nl2vis_data::value::Date;
use nl2vis_query::ast::*;

/// A token of the question, preserving literals.
#[derive(Debug, Clone, PartialEq)]
pub enum QTok {
    /// A lowercase word.
    Word(String),
    /// A quoted string literal.
    Quoted(String),
    /// A number (integer or float).
    Num(f64),
    /// An ISO date.
    DateTok(Date),
}

impl QTok {
    fn word(&self) -> Option<&str> {
        match self {
            QTok::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenizes a question, keeping quoted strings, numbers and dates intact.
pub fn question_tokens(text: &str) -> Vec<QTok> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '"' || c == '\'' {
            let quote = c;
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != quote {
                s.push(chars[i]);
                i += 1;
            }
            i += 1;
            out.push(QTok::Quoted(s));
        } else if c.is_ascii_digit()
            || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            if c == '-' {
                i += 1;
            }
            while i < chars.len()
                && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '-')
            {
                i += 1;
            }
            let raw: String = chars[start..i].iter().collect();
            // A sentence-final period sticks to the numeric run; strip it.
            let raw = raw.trim_end_matches('.');
            if let Some(d) = Date::parse(raw) {
                out.push(QTok::DateTok(d));
            } else if let Ok(n) = raw.parse::<f64>() {
                out.push(QTok::Num(n));
            }
        } else if c.is_alphanumeric() {
            let mut w = String::new();
            while i < chars.len() && chars[i].is_alphanumeric() {
                w.push(chars[i].to_ascii_lowercase());
                i += 1;
            }
            out.push(QTok::Word(w));
        } else {
            i += 1;
        }
    }
    out
}

/// The kind of a clause segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegKind {
    Filter,
    /// A filter introduced by a negative word ("excluding ..."), where the
    /// relation may be implicit.
    FilterNeg,
    /// A command verb ("show", "draw") — routes following tokens to the
    /// head, so "For each team, show a bar chart ..." parses.
    HeadCmd,
    Join,
    Source,
    Bin,
    Color,
    OrderCol,
    OrderX,
    GroupX,
    Against,
}

/// Clause markers as word sequences, longest-first so the scanner is
/// leftmost-longest.
const MARKERS: &[(&[&str], SegKind)] = &[
    (&["keeping", "only", "rows", "where"], SegKind::Filter),
    (&["for", "records", "whose"], SegKind::Filter),
    (&["broken", "down", "by"], SegKind::Color),
    (&["rank", "the", "x", "axis"], SegKind::OrderX),
    (&["grouped", "by"], SegKind::GroupX),
    (&["for", "each"], SegKind::GroupX),
    (&["binned", "by"], SegKind::Bin),
    (&["bucketed", "by"], SegKind::Bin),
    (&["colored", "by"], SegKind::Color),
    (&["stacked", "by"], SegKind::Color),
    (&["split", "by"], SegKind::Color),
    (&["sorted", "by"], SegKind::OrderCol),
    (&["ordered", "by"], SegKind::OrderCol),
    (&["ranked", "by"], SegKind::OrderCol),
    (&["from", "the"], SegKind::Source),
    (&["in", "the"], SegKind::Source),
    (&["using", "the"], SegKind::Source),
    (&["combining"], SegKind::Join),
    (&["excluding"], SegKind::FilterNeg),
    (&["show"], SegKind::HeadCmd),
    (&["draw"], SegKind::HeadCmd),
    (&["plot"], SegKind::HeadCmd),
    (&["display"], SegKind::HeadCmd),
    (&["visualize"], SegKind::HeadCmd),
    (&["where"], SegKind::Filter),
    (&["against"], SegKind::Against),
    (&["across"], SegKind::GroupX),
    (&["per"], SegKind::GroupX),
    (&["by"], SegKind::GroupX),
];

/// One parsed filter atom.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterAtom {
    /// The column phrase as said by the user.
    pub col_phrase: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal value.
    pub value: Literal,
    /// Connective linking this atom to the previous one (`true` = AND).
    pub and_with_previous: Option<bool>,
}

/// A parsed nested-subquery filter.
#[derive(Debug, Clone, PartialEq)]
pub struct SubqueryIntent {
    /// The tested column phrase.
    pub col_phrase: String,
    /// `NOT IN` when true.
    pub negated: bool,
    /// The child-table phrase.
    pub child_phrase: String,
    /// Optional inner condition.
    pub inner: Option<FilterAtom>,
}

/// Ordering intent.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderIntent {
    /// Order the x axis.
    X,
    /// Order the y axis / measure.
    Y,
    /// Order by a named column phrase.
    Col(String),
}

/// The parsed intent of a question.
#[derive(Debug, Clone, Default)]
pub struct Intent {
    /// Requested chart type, if signaled.
    pub chart: Option<ChartType>,
    /// Requested aggregate, if any.
    pub agg: Option<AggFunc>,
    /// The measure / count-target phrase.
    pub y_phrase: String,
    /// The grouping (x axis) phrase.
    pub x_phrase: Option<String>,
    /// The source-table phrase.
    pub source_phrase: Option<String>,
    /// Join phrases: (from table, joined table).
    pub join_phrases: Option<(String, String)>,
    /// Filter atoms in order.
    pub filters: Vec<FilterAtom>,
    /// Nested subquery filter.
    pub subquery: Option<SubqueryIntent>,
    /// Temporal bin unit.
    pub bin: Option<BinUnit>,
    /// Color/series phrase.
    pub color_phrase: Option<String>,
    /// Ordering intent and direction.
    pub order: Option<(OrderIntent, SortDir)>,
}

/// Parses a question into an [`Intent`].
pub fn parse_question(text: &str) -> Intent {
    let tokens = question_tokens(text);
    let segments = segment(&tokens);
    let mut intent = Intent::default();

    // Head: command + chart phrase + measure phrase.
    let head = &segments[0].1;
    intent.chart = detect_chart(head);
    let (agg, y_phrase) = detect_aggregate(head);
    intent.agg = agg;
    intent.y_phrase = y_phrase;

    for (kind, toks) in &segments[1..] {
        match kind {
            SegKind::GroupX => {
                let phrase = words_of(toks);
                if let Some(unit) = BinUnit::from_keyword(phrase.trim()) {
                    intent.bin = Some(unit);
                } else if intent.x_phrase.is_none() {
                    intent.x_phrase = Some(phrase);
                }
            }
            SegKind::Against => {
                intent.x_phrase = Some(words_of(toks));
            }
            SegKind::Source => {
                intent.source_phrase = Some(words_of(toks));
            }
            SegKind::Join => {
                let phrase = words_of(toks);
                if let Some((a, b)) = phrase.split_once(" with ") {
                    intent.join_phrases = Some((a.to_string(), b.to_string()));
                }
            }
            SegKind::Bin => {
                let phrase = words_of(toks);
                if let Some(unit) = BinUnit::from_keyword(phrase.trim()) {
                    intent.bin = Some(unit);
                }
            }
            SegKind::Color => {
                intent.color_phrase = Some(words_of(toks));
            }
            SegKind::Filter => {
                parse_filter_segment(toks, &mut intent);
            }
            SegKind::FilterNeg => {
                let before = intent.filters.len();
                parse_filter_segment(toks, &mut intent);
                if intent.filters.len() == before {
                    // No explicit relation ("excluding the team NYY"): the
                    // tokens before the literal name the column, the
                    // relation is implicit inequality.
                    if let Some(pos) = toks.iter().position(|t| !matches!(t, QTok::Word(_))) {
                        if let Some(value) = literal_of(&toks[pos..]) {
                            intent.filters.push(FilterAtom {
                                col_phrase: words_of(&toks[..pos]),
                                op: CmpOp::Ne,
                                value,
                                and_with_previous: None,
                            });
                        }
                    }
                }
            }
            SegKind::OrderCol => {
                intent.order = parse_order(toks, false);
            }
            SegKind::OrderX => {
                intent.order = parse_order(toks, true);
            }
            // Command segments are routed into the head during segmentation
            // and never appear here.
            SegKind::HeadCmd => {}
        }
    }
    intent
}

fn words_of(toks: &[QTok]) -> String {
    toks.iter()
        .map(|t| match t {
            QTok::Word(w) => w.clone(),
            QTok::Quoted(q) => format!("\"{q}\""),
            QTok::Num(n) => n.to_string(),
            QTok::DateTok(d) => d.to_string(),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn segment(tokens: &[QTok]) -> Vec<(SegKind, Vec<QTok>)> {
    // Segment 0 is the head (command + chart + measure phrase); later
    // segments are clauses. A command verb routes tokens back into the
    // head, which handles the "For each <x>, show <chart> ..." family.
    let mut segments: Vec<(SegKind, Vec<QTok>)> = vec![(SegKind::GroupX, Vec::new())];
    let mut target = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        let mut matched = None;
        for (marker, kind) in MARKERS {
            if marker.len() <= tokens.len() - i {
                let is_match = marker
                    .iter()
                    .enumerate()
                    .all(|(j, mw)| tokens[i + j].word() == Some(mw));
                if is_match {
                    matched = Some((marker.len(), *kind));
                    break;
                }
            }
        }
        match matched {
            Some((len, SegKind::HeadCmd)) => {
                target = 0;
                i += len;
            }
            // A non-head marker starts a clause segment, except at the very
            // start of the sentence where only a group phrase ("For each
            // team, show ...") is meaningful.
            Some((len, kind))
                if !segments[0].1.is_empty() || segments.len() > 1 || kind == SegKind::GroupX =>
            {
                segments.push((kind, Vec::new()));
                target = segments.len() - 1;
                i += len;
            }
            _ => {
                segments[target].push_token(tokens[i].clone());
                i += 1;
            }
        }
    }
    segments
}

trait PushToken {
    fn push_token(&mut self, t: QTok);
}

impl PushToken for (SegKind, Vec<QTok>) {
    fn push_token(&mut self, t: QTok) {
        self.1.push(t);
    }
}

fn detect_chart(head: &[QTok]) -> Option<ChartType> {
    for t in head {
        if let QTok::Word(w) = t {
            match w.as_str() {
                "bar" | "bars" | "histogram" => return Some(ChartType::Bar),
                "pie" | "donut" => return Some(ChartType::Pie),
                "line" | "trend" | "series" => return Some(ChartType::Line),
                "scatter" | "point" | "cloud" => return Some(ChartType::Scatter),
                _ => {}
            }
        }
    }
    None
}

/// Aggregate phrases: (marker words, function). Longest first.
const AGG_MARKERS: &[(&[&str], AggFunc)] = &[
    (&["number", "of"], AggFunc::Count),
    (&["how", "many"], AggFunc::Count),
    (&["count", "of"], AggFunc::Count),
    (&["sum", "of"], AggFunc::Sum),
    (&["total"], AggFunc::Sum),
    (&["combined"], AggFunc::Sum),
    (&["average"], AggFunc::Avg),
    (&["mean"], AggFunc::Avg),
    (&["typical"], AggFunc::Avg),
    (&["minimum"], AggFunc::Min),
    (&["lowest"], AggFunc::Min),
    (&["maximum"], AggFunc::Max),
    (&["highest"], AggFunc::Max),
];

fn detect_aggregate(head: &[QTok]) -> (Option<AggFunc>, String) {
    for i in 0..head.len() {
        for (marker, func) in AGG_MARKERS {
            if marker.len() <= head.len() - i {
                let is_match = marker
                    .iter()
                    .enumerate()
                    .all(|(j, mw)| head[i + j].word() == Some(mw));
                if is_match {
                    let rest = words_of(&head[i + marker.len()..]);
                    return (Some(*func), rest);
                }
            }
        }
    }
    // No aggregate: the measure phrase follows the first "of" (".. a scatter
    // plot of salary against age").
    if let Some(pos) = head.iter().position(|t| t.word() == Some("of")) {
        (None, words_of(&head[pos + 1..]))
    } else {
        (None, words_of(head))
    }
}

/// Relation phrases inside filter segments, longest-first.
const REL_MARKERS: &[(&[&str], CmpOp)] = &[
    (&["is", "greater", "than"], CmpOp::Gt),
    (&["is", "more", "than"], CmpOp::Gt),
    (&["is", "no", "less", "than"], CmpOp::Ge),
    (&["is", "at", "least"], CmpOp::Ge),
    (&["is", "less", "than"], CmpOp::Lt),
    (&["is", "no", "more", "than"], CmpOp::Le),
    (&["is", "at", "most"], CmpOp::Le),
    (&["is", "over"], CmpOp::Gt),
    (&["is", "under"], CmpOp::Lt),
    (&["is", "below"], CmpOp::Lt),
    (&["exceeds"], CmpOp::Gt),
    (&["is", "not"], CmpOp::Ne),
    (&["differs", "from"], CmpOp::Ne),
    (&["excludes"], CmpOp::Ne),
    (&["is", "exactly"], CmpOp::Eq),
    (&["equals"], CmpOp::Eq),
    (&["is"], CmpOp::Eq),
];

fn parse_filter_segment(toks: &[QTok], intent: &mut Intent) {
    // Subquery patterns: `<col> has no matching <child> entry [cond]` and
    // `<col> appears among the <child> entries [cond]`.
    let phrase = words_of(toks);
    if let Some((col, rest)) = phrase.split_once(" has no matching ") {
        let child = rest
            .split(" entry")
            .next()
            .unwrap_or(rest)
            .trim()
            .to_string();
        let inner = rest
            .split_once(" entry ")
            .and_then(|(_, tail)| parse_atom_text(tail));
        intent.subquery = Some(SubqueryIntent {
            col_phrase: col.to_string(),
            negated: true,
            child_phrase: child,
            inner,
        });
        return;
    }
    if let Some((col, rest)) = phrase.split_once(" appears among the ") {
        let child = rest
            .split(" entries")
            .next()
            .unwrap_or(rest)
            .trim()
            .to_string();
        let inner = rest
            .split_once(" entries ")
            .and_then(|(_, tail)| parse_atom_text(tail));
        intent.subquery = Some(SubqueryIntent {
            col_phrase: col.to_string(),
            negated: false,
            child_phrase: child,
            inner,
        });
        return;
    }

    // Plain atoms joined by and/or.
    let mut connective: Option<bool> = None;
    let mut current: Vec<QTok> = Vec::new();
    let flush = |current: &mut Vec<QTok>, connective: Option<bool>, intent: &mut Intent| {
        if let Some(mut atom) = parse_atom(current) {
            atom.and_with_previous = connective;
            intent.filters.push(atom);
        }
        current.clear();
    };
    for t in toks {
        match t.word() {
            Some("and") => {
                flush(&mut current, connective, intent);
                connective = Some(true);
            }
            Some("or") => {
                flush(&mut current, connective, intent);
                connective = Some(false);
            }
            _ => current.push(t.clone()),
        }
    }
    flush(&mut current, connective, intent);
}

fn parse_atom_text(text: &str) -> Option<FilterAtom> {
    parse_atom(&question_tokens(text))
}

fn parse_atom(toks: &[QTok]) -> Option<FilterAtom> {
    // Find the relation marker; everything before is the column phrase,
    // the literal follows.
    for i in 0..toks.len() {
        for (marker, op) in REL_MARKERS {
            if marker.len() <= toks.len() - i {
                let is_match = marker
                    .iter()
                    .enumerate()
                    .all(|(j, mw)| toks[i + j].word() == Some(mw));
                if is_match {
                    let col_phrase = words_of(&toks[..i]);
                    let value = literal_of(&toks[i + marker.len()..])?;
                    return Some(FilterAtom {
                        col_phrase,
                        op: *op,
                        value,
                        and_with_previous: None,
                    });
                }
            }
        }
    }
    None
}

fn literal_of(toks: &[QTok]) -> Option<Literal> {
    for t in toks {
        match t {
            QTok::Quoted(s) => {
                return Some(match Date::parse(s) {
                    Some(d) => Literal::Date(d),
                    None => Literal::Text(s.clone()),
                })
            }
            QTok::Num(n) => {
                return Some(if n.fract() == 0.0 {
                    Literal::Int(*n as i64)
                } else {
                    Literal::Float(*n)
                })
            }
            QTok::DateTok(d) => return Some(Literal::Date(*d)),
            QTok::Word(w) if w == "true" => return Some(Literal::Bool(true)),
            QTok::Word(w) if w == "false" => return Some(Literal::Bool(false)),
            _ => {}
        }
    }
    None
}

fn parse_order(toks: &[QTok], explicit_x: bool) -> Option<(OrderIntent, SortDir)> {
    let phrase = words_of(toks);
    let dir = if phrase.contains("descending")
        || phrase.contains("decreasing")
        || phrase.contains("largest to smallest")
    {
        SortDir::Desc
    } else {
        SortDir::Asc
    };
    if explicit_x {
        return Some((OrderIntent::X, dir));
    }
    let target_phrase = phrase
        .split(" in ")
        .next()
        .unwrap_or(&phrase)
        .trim()
        .to_string();
    if ["the value", "the y axis", "the measure"].contains(&target_phrase.as_str()) {
        Some((OrderIntent::Y, dir))
    } else {
        Some((OrderIntent::Col(target_phrase), dir))
    }
}

/// How risky each part of the grounding was; drives the error model.
#[derive(Debug, Clone, Default)]
pub struct GroundingRisk {
    /// The x phrase did not link (a fallback column was guessed).
    pub x_unlinked: bool,
    /// The y phrase did not link.
    pub y_unlinked: bool,
    /// Filter column phrases that failed to link.
    pub filters_unlinked: usize,
    /// Join keys were guessed without foreign-key evidence.
    pub join_guessed: bool,
    /// Column↔table attribution was unavailable (flat `Schema` prompt).
    pub unattributed: bool,
    /// Links that needed synonym knowledge.
    pub synonyms_used: usize,
    /// Column types were unavailable in the prompt.
    pub types_unknown: bool,
}

/// Which axis a link was for (error-flag routing).
#[derive(Debug, Clone, Copy)]
enum AxisSlot {
    X,
    Y,
}

/// A grounded query plus its risk diagnostics.
#[derive(Debug, Clone)]
pub struct Grounding {
    /// The assembled query.
    pub query: VqlQuery,
    /// Risk diagnostics.
    pub risk: GroundingRisk,
}

/// Grounds an intent against a recovered schema. `knows` gates synonym
/// lookups (see [`crate::link`]).
pub fn ground(
    intent: &Intent,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
) -> Option<Grounding> {
    if schema.tables.is_empty() && schema.unattributed_columns.is_empty() {
        return None;
    }
    let mut risk = GroundingRisk {
        unattributed: !schema.attributed,
        types_unknown: schema
            .tables
            .iter()
            .all(|t| t.columns.iter().all(|(_, ty)| ty.is_none())),
        ..Default::default()
    };

    // Links a phrase to a column; a phrase that instead names a *table*
    // ("the number of technicians") resolves to that table's label column,
    // which is what the user is counting.
    let link_axis = |phrase: &str, risk: &mut GroundingRisk, slot: AxisSlot| -> Option<Link> {
        let col = link_column(phrase, schema, knows);
        // A strong column match wins outright.
        if let Some(l) = &col {
            if l.score >= 0.75 {
                if l.via_synonym {
                    risk.synonyms_used += 1;
                }
                return col;
            }
        }
        // A phrase naming a *table* ("the number of technicians") means that
        // table's label column; prefer it over a weak partial column match
        // (which is usually the table's `_id` key).
        if let Some(table) = link_table_with(phrase, schema, knows) {
            if let Some(column) = label_column(schema, &table) {
                return Some(Link {
                    column,
                    table: Some(table),
                    score: 0.7,
                    via_synonym: false,
                });
            }
        }
        if let Some(l) = col {
            if l.via_synonym {
                risk.synonyms_used += 1;
            }
            return Some(l);
        }
        match slot {
            AxisSlot::X => risk.x_unlinked = true,
            AxisSlot::Y => risk.y_unlinked = true,
        }
        None
    };

    // X column.
    let x_link = intent
        .x_phrase
        .as_deref()
        .and_then(|p| link_axis(p, &mut risk, AxisSlot::X));

    // Y column.
    let y_link = if intent.y_phrase.is_empty() {
        None
    } else {
        link_axis(&intent.y_phrase, &mut risk, AxisSlot::Y)
    };

    // Source table.
    let source_table = intent
        .source_phrase
        .as_deref()
        .and_then(|p| link_table(p, schema))
        .or_else(|| {
            intent
                .join_phrases
                .as_ref()
                .and_then(|(a, _)| link_table(a, schema))
        });

    let fallback_table = || -> Option<String> {
        source_table
            .clone()
            .or_else(|| x_link.as_ref().and_then(|l| l.table.clone()))
            .or_else(|| y_link.as_ref().and_then(|l| l.table.clone()))
            .or_else(|| schema.tables.first().map(|t| t.name.clone()))
    };
    let mut from = fallback_table()?;

    // Join: explicit phrase, or axes living in different tables.
    let joined_table: Option<String> = if let Some((_, b)) = &intent.join_phrases {
        link_table(b, schema)
    } else {
        let xt = x_link.as_ref().and_then(|l| l.table.as_deref());
        let yt = y_link.as_ref().and_then(|l| l.table.as_deref());
        match (xt, yt) {
            (Some(a), Some(b)) if !a.eq_ignore_ascii_case(b) => {
                // Keep the FROM on one side, join the other.
                if a.eq_ignore_ascii_case(&from) {
                    Some(b.to_string())
                } else if b.eq_ignore_ascii_case(&from) {
                    Some(a.to_string())
                } else {
                    from = a.to_string();
                    Some(b.to_string())
                }
            }
            _ => None,
        }
    };

    // Orient the join at the foreign-key child (the referencing table),
    // matching the convention of every gold query and demonstration.
    let mut joined_table = joined_table;
    if let Some(jt) = &joined_table {
        let fk_child = schema.fks.iter().find_map(|(ft, _, tt, _)| {
            if ft.eq_ignore_ascii_case(&from) && tt.eq_ignore_ascii_case(jt) {
                Some(from.clone())
            } else if ft.eq_ignore_ascii_case(jt) && tt.eq_ignore_ascii_case(&from) {
                Some(jt.clone())
            } else {
                None
            }
        });
        if let Some(child) = fk_child {
            if !child.eq_ignore_ascii_case(&from) {
                let parent = std::mem::replace(&mut from, child);
                joined_table = Some(parent);
            }
        }
    }

    let join = match &joined_table {
        Some(jt) if !jt.eq_ignore_ascii_case(&from) => match find_join(schema, &from, jt) {
            Some((left, right, confident)) => {
                if !confident {
                    risk.join_guessed = true;
                }
                Some(Join {
                    table: jt.clone(),
                    left: ColumnRef::qualified(from.clone(), left),
                    right: ColumnRef::qualified(jt.clone(), right),
                })
            }
            None => {
                risk.join_guessed = true;
                None
            }
        },
        _ => None,
    };
    let has_join = join.is_some();

    // Column refs qualified when joining (mirrors the gold style).
    let colref = |l: &Link| -> ColumnRef {
        if has_join {
            match &l.table {
                Some(t) => ColumnRef::qualified(t.clone(), l.column.clone()),
                None => ColumnRef::new(l.column.clone()),
            }
        } else {
            ColumnRef::new(l.column.clone())
        }
    };

    // Assemble x.
    let x_col = match (&x_link, &y_link) {
        (Some(x), _) => colref(x),
        // No x phrase (e.g. pure count question): fall back to the y link.
        (None, Some(y)) => colref(y),
        (None, None) => {
            risk.x_unlinked = true;
            // Guess the first non-id column of the FROM table.
            let guess = schema
                .tables
                .iter()
                .find(|t| t.name.eq_ignore_ascii_case(&from))
                .and_then(|t| {
                    t.columns
                        .iter()
                        .find(|(c, _)| !c.ends_with("_id") && c != "id")
                        .map(|(c, _)| c.clone())
                })
                .or_else(|| schema.all_columns().first().map(|c| c.to_string()))?;
            ColumnRef::new(guess)
        }
    };

    // Assemble y.
    let y_expr = match intent.agg {
        Some(AggFunc::Count) => {
            let arg = y_link
                .as_ref()
                .map(&colref)
                .unwrap_or_else(|| x_col.clone());
            SelectExpr::Agg {
                func: AggFunc::Count,
                arg: Some(arg),
            }
        }
        Some(func) => {
            let arg = match &y_link {
                Some(l) => colref(l),
                None => x_col.clone(),
            };
            SelectExpr::Agg {
                func,
                arg: Some(arg),
            }
        }
        None => match &y_link {
            Some(l) => SelectExpr::Column(colref(l)),
            None => {
                risk.y_unlinked = true;
                SelectExpr::Column(x_col.clone())
            }
        },
    };

    // A requested temporal bin forces a temporal x: when the linked x is
    // not a date (or no x was named — "the number of orders per month"),
    // re-target the FROM table's date column. Only typed prompt formats can
    // make this correction.
    let mut x_col = x_col;
    if intent.bin.is_some()
        && schema.type_of(&x_col.column) != Some(nl2vis_data::value::DataType::Date)
    {
        let date_col = schema
            .tables
            .iter()
            .filter(|t| t.name.eq_ignore_ascii_case(&from))
            .chain(schema.tables.iter())
            .flat_map(|t| t.columns.iter().map(move |(c, ty)| (t.name.clone(), c, ty)))
            .find(|(_, _, ty)| **ty == Some(nl2vis_data::value::DataType::Date));
        if let Some((table, c, _)) = date_col {
            x_col = if has_join {
                ColumnRef::qualified(table, c.clone())
            } else {
                ColumnRef::new(c.clone())
            };
        }
    }

    let chart = intent.chart.unwrap_or(ChartType::Bar);
    let mut q = VqlQuery::new(
        chart,
        SelectExpr::Column(x_col.clone()),
        y_expr,
        from.clone(),
    );
    q.join = join;

    // In-scope tables: filters and order targets reference the tables the
    // query already reads.
    let scope: Vec<String> = std::iter::once(from.clone())
        .chain(q.join.as_ref().map(|j| j.table.clone()))
        .collect();
    let link_scoped = |phrase: &str| -> Option<Link> {
        crate::link::link_column_in(phrase, schema, knows, Some(&scope))
            .or_else(|| link_column(phrase, schema, knows))
    };

    // Filters. Type-aware: when the prompt format carried column types, a
    // literal that clashes with the linked column's type (comparing a key
    // column to a quoted string, say) redirects the link to the table's
    // label column — the kind of correction only typed formats permit.
    let literal_type = |lit: &Literal| match lit {
        Literal::Int(_) | Literal::Float(_) => Some(nl2vis_data::value::DataType::Int),
        Literal::Text(_) => Some(nl2vis_data::value::DataType::Text),
        Literal::Bool(_) => Some(nl2vis_data::value::DataType::Bool),
        Literal::Date(_) => Some(nl2vis_data::value::DataType::Date),
    };
    let compatible = |col_ty: nl2vis_data::value::DataType, lit: &Literal| match lit {
        Literal::Int(_) | Literal::Float(_) => col_ty.is_numeric(),
        Literal::Text(_) => col_ty == nl2vis_data::value::DataType::Text,
        Literal::Bool(_) => col_ty == nl2vis_data::value::DataType::Bool,
        Literal::Date(_) => col_ty == nl2vis_data::value::DataType::Date,
    };
    let mut predicate: Option<Predicate> = None;
    for atom in &intent.filters {
        let col = match link_scoped(&atom.col_phrase) {
            Some(l) => {
                if l.via_synonym {
                    risk.synonyms_used += 1;
                }
                let clash = schema
                    .type_of(&l.column)
                    .is_some_and(|ty| !compatible(ty, &atom.value));
                if clash && literal_type(&atom.value) == Some(nl2vis_data::value::DataType::Text) {
                    // Redirect to the label column of the same table.
                    let redirected = l
                        .table
                        .as_deref()
                        .and_then(|t| label_column(schema, t))
                        .map(|column| Link {
                            column,
                            ..l.clone()
                        });
                    colref(&redirected.unwrap_or(l))
                } else {
                    colref(&l)
                }
            }
            None => {
                risk.filters_unlinked += 1;
                continue;
            }
        };
        let p = Predicate::Cmp {
            col,
            op: atom.op,
            value: atom.value.clone(),
        };
        predicate = Some(match predicate {
            None => p,
            Some(prev) => {
                if atom.and_with_previous.unwrap_or(true) {
                    Predicate::And(Box::new(prev), Box::new(p))
                } else {
                    Predicate::Or(Box::new(prev), Box::new(p))
                }
            }
        });
    }
    if let Some(sq) = &intent.subquery {
        let col = match link_column(&sq.col_phrase, schema, knows) {
            Some(l) => ColumnRef::new(l.column),
            None => {
                risk.filters_unlinked += 1;
                // Guess the FROM table's primary key.
                let pk = schema
                    .tables
                    .iter()
                    .find(|t| t.name.eq_ignore_ascii_case(&from))
                    .and_then(|t| t.primary_key.clone())
                    .unwrap_or_else(|| x_col.column.clone());
                ColumnRef::new(pk)
            }
        };
        if let Some(child) = link_table(&sq.child_phrase, schema) {
            let inner = sq.inner.as_ref().and_then(|atom| {
                let l = link_column(&atom.col_phrase, schema, knows)?;
                Some(Box::new(Predicate::Cmp {
                    col: ColumnRef::new(l.column),
                    op: atom.op,
                    value: atom.value.clone(),
                }))
            });
            let p = Predicate::InSubquery {
                col: col.clone(),
                negated: sq.negated,
                subquery: SubQuery {
                    select: col.clone(),
                    from: child,
                    filter: inner,
                },
            };
            predicate = Some(match predicate {
                None => p,
                Some(prev) => Predicate::And(Box::new(prev), Box::new(p)),
            });
        } else {
            risk.filters_unlinked += 1;
        }
    }
    q.filter = predicate;

    // Bin.
    if let Some(unit) = intent.bin {
        q.bin = Some(Bin {
            column: x_col.clone(),
            unit,
        });
    }

    // Grouping: aggregate queries group by x; a color adds the series key.
    let color_link = intent.color_phrase.as_deref().and_then(&link_scoped);
    if q.y.is_aggregate() || color_link.is_some() {
        q.group_by.push(x_col.clone());
    }
    if let Some(c) = &color_link {
        q.group_by.push(colref(c));
    }

    // Ordering.
    if let Some((target, dir)) = &intent.order {
        let t = match target {
            OrderIntent::X => OrderTarget::Column(x_col.clone()),
            OrderIntent::Y => OrderTarget::Y,
            OrderIntent::Col(p) => match link_scoped(p) {
                // A weak key-column match for a phrase that names a table
                // ("ordered by employee") means the entity axis.
                Some(l) if l.score < 0.75 && link_table_with(p, schema, knows).is_some() => {
                    let column = l
                        .table
                        .as_deref()
                        .and_then(|t| label_column(schema, t))
                        .unwrap_or(l.column);
                    OrderTarget::Column(ColumnRef::new(column))
                }
                Some(l) => OrderTarget::Column(ColumnRef::new(l.column)),
                None => OrderTarget::Column(x_col.clone()),
            },
        };
        q.order = Some(OrderBy {
            target: t,
            dir: *dir,
        });
    }

    Some(Grounding { query: q, risk })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;
    use nl2vis_corpus::domains::all_domains;
    use nl2vis_corpus::generate::instantiate;
    use nl2vis_data::Rng;
    use nl2vis_prompt::PromptFormat;

    const KNOW_ALL: fn(&str) -> bool = |_| true;

    fn schema() -> RecoveredSchema {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        recover(&PromptFormat::Table2Sql.serialize(&db, "q"))
    }

    #[test]
    fn tokenizer_preserves_literals() {
        let toks =
            question_tokens("where pay is over 42.5 and team is not \"NYY\" after 2020-01-06");
        assert!(toks.contains(&QTok::Num(42.5)));
        assert!(toks.contains(&QTok::Quoted("NYY".into())));
        assert!(toks.contains(&QTok::DateTok(Date::new(2020, 1, 6).unwrap())));
    }

    #[test]
    fn parses_basic_bar_count() {
        let i = parse_question(
            "Show a bar chart of the number of team for each team from the technician table.",
        );
        assert_eq!(i.chart, Some(ChartType::Bar));
        assert_eq!(i.agg, Some(AggFunc::Count));
        assert_eq!(i.x_phrase.as_deref(), Some("team"));
        assert!(i.source_phrase.as_deref().unwrap().contains("technician"));
    }

    #[test]
    fn parses_filter_and_order() {
        let i = parse_question(
            "Plot bars of the average salary per team where age is greater than 30 sorted by team in descending order.",
        );
        assert_eq!(i.agg, Some(AggFunc::Avg));
        assert_eq!(i.filters.len(), 1);
        assert_eq!(i.filters[0].op, CmpOp::Gt);
        assert_eq!(i.filters[0].value, Literal::Int(30));
        let (target, dir) = i.order.unwrap();
        assert_eq!(target, OrderIntent::Col("team".into()));
        assert_eq!(dir, SortDir::Desc);
    }

    #[test]
    fn parses_compound_filters() {
        let i = parse_question(
            "Show bars of the number of name per team where team is \"BOS\" or age is under 30.",
        );
        assert_eq!(i.filters.len(), 2);
        assert_eq!(i.filters[1].and_with_previous, Some(false));
        assert_eq!(i.filters[1].op, CmpOp::Lt);
    }

    #[test]
    fn parses_bin_and_color() {
        let i = parse_question(
            "Draw a line chart of the number of hire date for each hire date binned by month colored by team.",
        );
        assert_eq!(i.bin, Some(BinUnit::Month));
        assert_eq!(i.color_phrase.as_deref(), Some("team"));
    }

    #[test]
    fn per_unit_is_bin_not_x() {
        let i = parse_question("Plot a line chart of the number of hired for each hired per year.");
        assert_eq!(i.bin, Some(BinUnit::Year));
        assert_eq!(i.x_phrase.as_deref(), Some("hired"));
    }

    #[test]
    fn parses_subquery_phrases() {
        let i = parse_question(
            "Show bars of the number of name per team where tech id has no matching machine entry.",
        );
        let sq = i.subquery.unwrap();
        assert!(sq.negated);
        assert_eq!(sq.child_phrase, "machine");
        let i = parse_question(
            "Show bars of the number of name per team where tech id appears among the machine entries value is over 50.",
        );
        let sq = i.subquery.unwrap();
        assert!(!sq.negated);
        assert_eq!(sq.inner.unwrap().op, CmpOp::Gt);
    }

    #[test]
    fn grounds_full_query() {
        let s = schema();
        let i = parse_question(
            "Show a bar chart of the number of team for each team from the technician table where pay is greater than 50000 sorted by team in ascending order.",
        );
        let g = ground(&i, &s, &KNOW_ALL).unwrap();
        let printed = nl2vis_query::printer::print(&g.query);
        assert!(printed.contains("VISUALIZE bar"));
        assert!(printed.contains("COUNT(team)"));
        assert!(printed.contains("FROM technician"));
        assert!(printed.contains("salary > 50000"), "{printed}");
        assert!(printed.contains("GROUP BY team"));
        assert!(printed.contains("ORDER BY team ASC"));
        assert_eq!(g.risk.synonyms_used, 1); // "pay" -> salary
        assert!(!g.risk.x_unlinked);
    }

    #[test]
    fn grounds_join_when_axes_span_tables() {
        let s = schema();
        let i = parse_question(
            "Show a bar chart of the total value for each team combining the machine table with the technician records.",
        );
        let g = ground(&i, &s, &KNOW_ALL).unwrap();
        let j = g.query.join.as_ref().expect("join expected");
        assert_eq!(j.table, "technician");
        assert_eq!(g.query.from, "machine");
        assert!(!g.risk.join_guessed); // SQL format carries the FK
    }

    #[test]
    fn join_guessed_flag_for_fkless_format() {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        let s = recover(&PromptFormat::Chat2Vis.serialize(&db, "q"));
        let i = parse_question(
            "Show a bar chart of the total value for each team combining the machine table with the technician records.",
        );
        let g = ground(&i, &s, &KNOW_ALL).unwrap();
        assert!(g.risk.join_guessed);
    }

    #[test]
    fn unattributed_schema_still_grounds() {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        let s = recover(&PromptFormat::Schema.serialize(&db, "q"));
        let i = parse_question("Show a bar chart of the number of team for each team.");
        let g = ground(&i, &s, &KNOW_ALL).unwrap();
        assert!(g.risk.unattributed);
        // FROM falls back to the first listed table.
        assert!(!g.query.from.is_empty());
    }

    #[test]
    fn scatter_against() {
        let s = schema();
        let i =
            parse_question("Display a scatter plot of salary against age in the technician table.");
        let g = ground(&i, &s, &KNOW_ALL).unwrap();
        assert_eq!(g.query.chart, ChartType::Scatter);
        assert_eq!(g.query.x, SelectExpr::Column(ColumnRef::new("age")));
        assert_eq!(g.query.y, SelectExpr::Column(ColumnRef::new("salary")));
        assert!(g.query.group_by.is_empty());
    }
}
