//! Capability profiles for the simulated inference-only LLMs.
//!
//! Each profile is a small set of mechanistic knobs — *not* per-benchmark
//! accuracy numbers. Accuracies emerge from how the knobs interact with the
//! prompt: `world_knowledge` gates synonym linking, `context_tokens` bounds
//! how many demonstrations fit, `icl_halflife` sets how quickly
//! demonstrations suppress generation errors, and `grammar_discipline`
//! controls zero-shot output well-formedness.

/// A simulated model's capability profile.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// API-style model name.
    pub name: &'static str,
    /// Parameter count as reported in Table 4 of the paper.
    pub params: &'static str,
    /// Reported artifact size (Table 4).
    pub model_size: &'static str,
    /// Context window in tokens (bounds the ICL budget).
    pub context_tokens: usize,
    /// Total per-query corruption budget at zero effective demonstrations in
    /// a cross-domain setting. Lower is better.
    pub base_error: f64,
    /// Probability of knowing any given alias→word synonym (pretraining
    /// world knowledge).
    pub world_knowledge: f64,
    /// Number of demonstrations that halves the *suppressible* part of the
    /// corruption budget.
    pub icl_halflife: f64,
    /// Fraction of the corruption budget demonstrations cannot remove (the
    /// asymptote of the ICL curve in Fig. 7).
    pub icl_floor: f64,
    /// Multiplier applied when the test schema was seen inside a
    /// demonstration (the in-domain advantage). Chat-tuned models exploit it
    /// poorly — the paper's gpt-3.5-turbo-16k barely improves in-domain.
    pub schema_seen_factor: f64,
    /// Probability of reusing a near-duplicate demonstration's answer when
    /// one is present (completion-tuned models echo demonstrations; chat
    /// models re-derive, which is why gpt-3.5-turbo barely benefits from
    /// the in-domain setting in Table 3).
    pub demo_copy: f64,
    /// Probability of emitting grammatical VQL with no demonstrations.
    pub grammar_discipline: f64,
    /// Simulated decoding latency (ms per output token) for the Table 4
    /// cost model.
    pub ms_per_token: f64,
}

impl ModelProfile {
    /// `text-davinci-002`: supervised instruction tuning, solid but the
    /// weakest of the GPT-3.5 family in the paper.
    pub fn davinci_002() -> ModelProfile {
        ModelProfile {
            name: "text-davinci-002",
            params: "1.5B",
            model_size: "1GB",
            context_tokens: 4096,
            base_error: 0.70,
            world_knowledge: 0.80,
            icl_halflife: 4.5,
            icl_floor: 0.51,
            schema_seen_factor: 0.26,
            demo_copy: 0.86,
            grammar_discipline: 0.90,
            ms_per_token: 24.0,
        }
    }

    /// `text-davinci-003`: RLHF-tuned; the workhorse model of the paper.
    pub fn davinci_003() -> ModelProfile {
        ModelProfile {
            name: "text-davinci-003",
            params: "1.5B",
            model_size: "1GB",
            context_tokens: 4096,
            base_error: 0.66,
            world_knowledge: 0.86,
            icl_halflife: 4.0,
            icl_floor: 0.57,
            schema_seen_factor: 0.22,
            demo_copy: 0.90,
            grammar_discipline: 0.94,
            ms_per_token: 24.0,
        }
    }

    /// `gpt-3.5-turbo-16k`: chat-tuned with a 16k window; the paper found it
    /// *worse* than davinci-003 on this task (chat tuning hurts strict
    /// output formatting), despite the larger window.
    pub fn turbo_16k() -> ModelProfile {
        ModelProfile {
            name: "gpt-3.5-turbo-16k",
            params: "4B",
            model_size: "2GB",
            context_tokens: 16384,
            base_error: 0.72,
            world_knowledge: 0.84,
            icl_halflife: 5.5,
            icl_floor: 0.52,
            schema_seen_factor: 0.87,
            demo_copy: 0.25,
            grammar_discipline: 0.86,
            ms_per_token: 9.0,
        }
    }

    /// `gpt-4`: the strongest profile on every axis except window size.
    pub fn gpt_4() -> ModelProfile {
        ModelProfile {
            name: "gpt-4",
            params: "-",
            model_size: "-",
            context_tokens: 8192,
            base_error: 0.58,
            world_knowledge: 0.94,
            icl_halflife: 4.0,
            icl_floor: 0.62,
            schema_seen_factor: 0.30,
            demo_copy: 0.80,
            grammar_discipline: 0.97,
            ms_per_token: 38.0,
        }
    }

    /// All inference-only profiles evaluated in Table 3.
    pub fn all_inference() -> Vec<ModelProfile> {
        vec![
            ModelProfile::davinci_002(),
            ModelProfile::davinci_003(),
            ModelProfile::turbo_16k(),
            ModelProfile::gpt_4(),
        ]
    }

    /// Profile by API name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        ModelProfile::all_inference()
            .into_iter()
            .find(|p| p.name == name)
    }

    /// Abstract cost units charged per request to this model, for the
    /// tiered router's budget accounting. Derived from the Table 4 cost
    /// model: decoding latency is the dominant per-token cost, so a tier's
    /// weight is its `ms_per_token` rounded up — `gpt-3.5-turbo-16k` is
    /// the cheap tier (9), `gpt-4` the expensive one (38).
    pub fn cost_units(&self) -> u64 {
        self.ms_per_token.ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelProfile::by_name("gpt-4").unwrap().name, "gpt-4");
        assert!(ModelProfile::by_name("claude-3").is_none());
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        let d2 = ModelProfile::davinci_002();
        let d3 = ModelProfile::davinci_003();
        let g4 = ModelProfile::gpt_4();
        let t16 = ModelProfile::turbo_16k();
        assert!(d3.base_error < d2.base_error);
        assert!(g4.base_error < d3.base_error);
        assert!(g4.world_knowledge > d2.world_knowledge);
        // The paper's surprising finding: turbo-16k underperforms davinci-003.
        assert!(t16.base_error > d3.base_error);
        assert!(t16.context_tokens > d3.context_tokens);
        // Cost ordering for the tiered router: turbo is the cheap tier,
        // gpt-4 the expensive quality floor.
        assert!(t16.cost_units() < d3.cost_units());
        assert!(d3.cost_units() < g4.cost_units());
    }

    #[test]
    fn knob_ranges_valid() {
        for p in ModelProfile::all_inference() {
            assert!((0.0..=1.0).contains(&p.base_error), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.world_knowledge));
            assert!((0.0..=1.0).contains(&p.grammar_discipline));
            assert!((0.0..=1.0).contains(&p.icl_floor));
            assert!((0.0..=1.0).contains(&p.schema_seen_factor));
            assert!(p.icl_halflife > 0.0);
            assert!(p.context_tokens >= 2048);
        }
    }
}
