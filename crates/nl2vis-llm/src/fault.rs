//! Deterministic fault injection for the completion server.
//!
//! Testing the transport's resilience (deadlines, retries, typed failure
//! attribution) offline requires a server that misbehaves *on demand and
//! reproducibly*. A [`FaultInjector`] decides, per completion request, to
//! serve normally, stall before responding (to trip client read deadlines),
//! drop the connection without a response, or answer `500`. Decisions come
//! from either a fixed script (exact control in tests) or a seeded random
//! plan (rate-based chaos for whole eval runs) — never from ambient
//! entropy, so every run replays bit-identically.

use nl2vis_data::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injected misbehavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve the request normally.
    None,
    /// Sleep this long before responding (long enough stalls trip the
    /// client's read deadline).
    Stall(Duration),
    /// Close the connection without sending any response.
    Drop,
    /// Respond `500 Internal Server Error`.
    Http500,
}

impl Fault {
    /// Metric suffix for the `server.fault.<label>` counter.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Stall(_) => "stall",
            Fault::Drop => "drop",
            Fault::Http500 => "http500",
        }
    }
}

/// How faults are scheduled over the request sequence.
#[derive(Debug, Clone)]
enum FaultPlan {
    /// Request `n` gets `faults[n]`; requests past the end serve normally.
    Script(Vec<Fault>),
    /// Independent per-request draws at fixed rates from a seeded stream.
    Random {
        seed: u64,
        drop: f64,
        http500: f64,
        stall: f64,
        stall_for: Duration,
        /// Rare heavy-tail stall, drawn before the base stall: models the
        /// p99 outliers (GC pause, page fault, noisy neighbor) that a
        /// hedged client exists to route around.
        tail: f64,
        tail_for: Duration,
    },
}

/// A per-request fault decider shared by all server connection threads.
///
/// The injector is positional: an atomic counter assigns each completion
/// request the next index in the plan, so concurrent connections cannot
/// change *which* faults fire, only which client observes them. Retries
/// advance the counter too — a scripted `[Drop]` therefore kills exactly
/// one request and lets its retry through, which is exactly the shape the
/// recovery tests need.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires.
    pub fn none() -> FaultInjector {
        FaultInjector::script(Vec::new())
    }

    /// Plays the given faults in request order, then serves normally.
    pub fn script(faults: Vec<Fault>) -> FaultInjector {
        FaultInjector {
            plan: FaultPlan::Script(faults),
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Independent per-request draws: `drop`, `http500` and `stall` are
    /// probabilities in `[0, 1]`, tried in that order; `stall_for` is the
    /// injected stall length.
    pub fn random(
        seed: u64,
        drop: f64,
        http500: f64,
        stall: f64,
        stall_for: Duration,
    ) -> FaultInjector {
        FaultInjector::random_with_tail(seed, drop, http500, stall, stall_for, 0.0, Duration::ZERO)
    }

    /// [`FaultInjector::random`] plus a rare *heavy-tail* stall: with
    /// probability `tail` the request stalls `tail_for` instead of the
    /// base `stall_for`. The tail draw comes first, so `stall=1.0` with a
    /// small base keeps a uniform service time whose outliers are the
    /// tail — the latency shape hedged requests are measured against.
    #[allow(clippy::too_many_arguments)]
    pub fn random_with_tail(
        seed: u64,
        drop: f64,
        http500: f64,
        stall: f64,
        stall_for: Duration,
        tail: f64,
        tail_for: Duration,
    ) -> FaultInjector {
        FaultInjector {
            plan: FaultPlan::Random {
                seed,
                drop,
                http500,
                stall,
                stall_for,
                tail,
                tail_for,
            },
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Parses a CLI fault spec: comma-separated `key=value` pairs with keys
    /// `drop`, `500`, `stall` (probabilities), `stall_ms` (stall length,
    /// default 200) and `seed` (default 0). `"off"` or the empty string
    /// yield an injector that never fires.
    ///
    /// Example: `drop=0.2,500=0.1,stall=0.05,stall_ms=50,seed=7`.
    pub fn parse(spec: &str) -> Result<FaultInjector, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" {
            return Ok(FaultInjector::none());
        }
        let (mut drop, mut http500, mut stall) = (0.0f64, 0.0f64, 0.0f64);
        let mut stall_ms = 200u64;
        let mut seed = 0u64;
        for pair in spec.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{pair}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault probability `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability `{v}` outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "drop" => drop = prob(value)?,
                "500" | "http500" => http500 = prob(value)?,
                "stall" => stall = prob(value)?,
                "stall_ms" => {
                    stall_ms = value
                        .parse()
                        .map_err(|_| format!("stall_ms `{value}` is not an integer"))?
                }
                "seed" => {
                    seed = value
                        .parse()
                        .map_err(|_| format!("seed `{value}` is not an integer"))?
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(FaultInjector::random(
            seed,
            drop,
            http500,
            stall,
            Duration::from_millis(stall_ms),
        ))
    }

    /// Decides the fault for the next request and advances the sequence.
    pub fn next(&self) -> Fault {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let fault = match &self.plan {
            FaultPlan::Script(faults) => faults.get(n as usize).copied().unwrap_or(Fault::None),
            FaultPlan::Random {
                seed,
                drop,
                http500,
                stall,
                stall_for,
                tail,
                tail_for,
            } => {
                // One independent stream per request index: concurrency
                // cannot reorder the draws a given index observes.
                let mut rng = Rng::new(seed ^ (n.wrapping_add(1)).wrapping_mul(0x9E37_79B9));
                if rng.chance(*drop) {
                    Fault::Drop
                } else if rng.chance(*http500) {
                    Fault::Http500
                } else if rng.chance(*tail) {
                    Fault::Stall(*tail_for)
                } else if rng.chance(*stall) {
                    Fault::Stall(*stall_for)
                } else {
                    Fault::None
                }
            }
        };
        if fault != Fault::None {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Requests seen so far.
    pub fn requests(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Faults injected so far (requests that did not serve normally).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_plays_in_order_then_goes_quiet() {
        let inj = FaultInjector::script(vec![Fault::Drop, Fault::Http500]);
        assert_eq!(inj.next(), Fault::Drop);
        assert_eq!(inj.next(), Fault::Http500);
        assert_eq!(inj.next(), Fault::None);
        assert_eq!(inj.next(), Fault::None);
        assert_eq!(inj.requests(), 4);
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let a = FaultInjector::random(7, 0.3, 0.2, 0.1, Duration::from_millis(50));
        let b = FaultInjector::random(7, 0.3, 0.2, 0.1, Duration::from_millis(50));
        let seq_a: Vec<Fault> = (0..200).map(|_| a.next()).collect();
        let seq_b: Vec<Fault> = (0..200).map(|_| b.next()).collect();
        assert_eq!(seq_a, seq_b);
        // The rates actually fire.
        assert!(seq_a.contains(&Fault::Drop));
        assert!(seq_a.contains(&Fault::Http500));
        assert!(seq_a.iter().any(|f| matches!(f, Fault::Stall(_))));
        assert!(seq_a.contains(&Fault::None));
        // A different seed reorders the sequence.
        let c = FaultInjector::random(8, 0.3, 0.2, 0.1, Duration::from_millis(50));
        let seq_c: Vec<Fault> = (0..200).map(|_| c.next()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn tail_stalls_mix_with_base_stalls() {
        let inj = FaultInjector::random_with_tail(
            11,
            0.0,
            0.0,
            1.0,
            Duration::from_millis(2),
            0.1,
            Duration::from_millis(50),
        );
        let draws: Vec<Fault> = (0..500).map(|_| inj.next()).collect();
        let base = draws
            .iter()
            .filter(|f| **f == Fault::Stall(Duration::from_millis(2)))
            .count();
        let tail = draws
            .iter()
            .filter(|f| **f == Fault::Stall(Duration::from_millis(50)))
            .count();
        assert_eq!(base + tail, 500, "stall=1.0 leaves no un-stalled request");
        assert!(
            (20..100).contains(&tail),
            "a 10% tail should fire ~50/500 times, got {tail}"
        );
    }

    #[test]
    fn zero_rates_never_fire() {
        let inj = FaultInjector::random(1, 0.0, 0.0, 0.0, Duration::from_millis(1));
        assert!((0..100).all(|_| inj.next() == Fault::None));
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn spec_parsing_roundtrip_and_errors() {
        let inj = FaultInjector::parse("drop=1.0,stall_ms=5,seed=3").unwrap();
        assert_eq!(inj.next(), Fault::Drop);
        let inj = FaultInjector::parse("stall=1.0,stall_ms=25").unwrap();
        assert_eq!(inj.next(), Fault::Stall(Duration::from_millis(25)));
        let inj = FaultInjector::parse("500=1.0").unwrap();
        assert_eq!(inj.next(), Fault::Http500);
        assert_eq!(FaultInjector::parse("off").unwrap().next(), Fault::None);
        assert_eq!(FaultInjector::parse("").unwrap().next(), Fault::None);
        assert!(FaultInjector::parse("drop=2.0").is_err());
        assert!(FaultInjector::parse("drop").is_err());
        assert!(FaultInjector::parse("banana=0.5").is_err());
        assert!(FaultInjector::parse("stall_ms=abc").is_err());
    }
}
