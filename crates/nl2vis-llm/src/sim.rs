//! The simulated LLM: prompt in, VQL text out.
//!
//! Generation runs the mechanistic pipeline described in DESIGN.md:
//!
//! 1. **Read the prompt** ([`crate::prompt_parse`]): recover the schema from
//!    whatever serialization format the prompt used, with format-dependent
//!    fidelity, and collect the demonstrations.
//! 2. **Understand the question** ([`crate::understand`]): parse the intent
//!    and ground it against the recovered schema, using synonym knowledge
//!    gated by the model profile.
//! 3. **Learn from demonstrations**: count effective shots, detect whether
//!    the test schema was *seen* in a demonstration (the in-domain
//!    advantage), measure sketch support and demonstration diversity.
//! 4. **Inject errors**: a per-query corruption budget — shaped by the
//!    profile, the shot count, the grounding risk and the query hardness —
//!    is distributed over query components with weights mirroring the
//!    paper's failure taxonomy (Fig. 11).
//!
//! Every stochastic choice is a pure function of (prompt, model seed,
//! attempt), so experiments are exactly reproducible.

use crate::profile::ModelProfile;
use crate::prompt_parse::{parse_prompt, PromptView};
use crate::recover::RecoveredSchema;
use crate::understand::{ground, parse_question, Grounding};
use nl2vis_data::value::Date;
use nl2vis_data::Rng;
use nl2vis_query::ast::*;
use nl2vis_query::printer::{print, print_sketch};
use std::collections::HashSet;

/// Per-call generation options; defined in `nl2vis-service` (the layered
/// stack threads them through every middleware) and re-exported here for
/// the pre-refactor import path.
pub use nl2vis_service::GenOptions;

/// The simulated LLM.
#[derive(Debug, Clone)]
pub struct SimLlm {
    /// Capability profile.
    pub profile: ModelProfile,
    /// Model seed (fixes the "weights": synonym knowledge and sampling).
    pub seed: u64,
}

impl SimLlm {
    /// Creates a simulated model.
    pub fn new(profile: ModelProfile, seed: u64) -> SimLlm {
        SimLlm { profile, seed }
    }

    /// Completes a prompt (the `/v1/completions` surface).
    pub fn complete(&self, prompt: &str) -> String {
        self.complete_with(prompt, &GenOptions::default())
    }

    /// Completes a batch of prompts sharing one set of generation options,
    /// as the server's request-batching path does. Generation is
    /// deterministic per `(prompt, opts)`, so identical prompts in the
    /// batch are computed once and the memoized output reused — output `i`
    /// is byte-identical to `complete_with(prompts[i], opts)` in every
    /// case. This is where batching pays: under hot-key skew most of a
    /// saturated queue is a handful of prompts, and the prompt parse that
    /// dominates completion CPU runs once per distinct prompt instead of
    /// once per request.
    pub fn complete_batch(&self, prompts: &[&str], opts: &GenOptions) -> Vec<String> {
        let mut memo: std::collections::HashMap<&str, String> = std::collections::HashMap::new();
        prompts
            .iter()
            .map(|&prompt| {
                memo.entry(prompt)
                    .or_insert_with(|| self.complete_with(prompt, opts))
                    .clone()
            })
            .collect()
    }

    /// Completes a prompt with explicit generation options.
    pub fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        let Some(view) = parse_prompt(prompt) else {
            return "I could not find a question in the request.".to_string();
        };
        // Two sampling streams. *Decisions* (does this query get a slip, and
        // on which component) are a function of the question and the test
        // context only — a real model's failures are systematic: re-asking
        // the same thing mostly reproduces the same mistake. *Details* (which
        // wrong column, how a literal drifts) vary with the whole prompt and
        // the attempt, so retries and different demonstrations change the
        // specifics. The decision threshold is uniform, so lowering the
        // error budget (more shots, a repair strategy) deterministically
        // rescues the borderline queries first.
        // No model seed in the decision stream: which queries are hard is a
        // property of the query and of what the serialization exposed,
        // shared across models and prompt dressings — model capability moves
        // the *threshold* (the error budget), not the difficulty draw.
        // Failure sets therefore nest across models, which is why
        // re-prompting a failed case through another model rescues only the
        // borderline ones (the paper's modest CoT/role-play gains).
        let mut decision_rng =
            Rng::new(fnv1a(&view.question) ^ schema_digest(&view.test_schema) ^ 0x5EED_D1FF);
        let mut rng =
            Rng::new(fnv1a(prompt) ^ self.seed.rotate_left(17) ^ opts.attempt.wrapping_mul(0x9E37));

        // Grammar discipline: with no demonstrations the model sometimes
        // answers in the wrong formalism entirely.
        let discipline =
            1.0 - (1.0 - self.profile.grammar_discipline) / (1.0 + view.demos.len() as f64);
        if !rng.chance(discipline) {
            return format!(
                "SELECT * FROM {} -- here is a SQL query answering the question",
                view.test_schema
                    .tables
                    .first()
                    .map(|t| t.name.as_str())
                    .unwrap_or("data")
            );
        }

        // Demonstration echo: when a demonstration over the *same* schema
        // asks (nearly) the same question, completion-tuned models reuse its
        // answer outright. This is the dominant in-domain behaviour: the
        // similarity selector almost always surfaces a paraphrase sibling.
        if rng.chance(self.profile.demo_copy) {
            if let Some(text) = copyable_demo(&view) {
                return if view.chain_of_thought {
                    match nl2vis_query::parse(&text) {
                        Ok(q) => format!("Sketch: {}\nVQL: {}", print_sketch(&q), text),
                        Err(_) => text,
                    }
                } else {
                    text
                };
            }
        }

        let knows = self.knowledge_gate();
        let intent = parse_question(&view.question);
        let Some(mut grounding) = ground(&intent, &view.test_schema, &knows) else {
            return "VISUALIZE bar SELECT unknown , COUNT(unknown) FROM unknown".to_string();
        };

        let budget = self.error_budget(&view, &grounding, opts);
        corrupt_query_with(
            &mut grounding.query,
            &view.test_schema,
            budget,
            opts.structural_scale,
            &mut decision_rng,
            &mut rng,
        );

        if view.vega_output {
            // Direct Vega-Lite generation (the paper's §6.2 setting): emit
            // the hierarchical JSON form. Long nested output is harder to
            // produce flawlessly than a flat keyword sequence — brackets get
            // dropped near the end of long generations.
            let json = nl2vis_vega::spec::to_vega_lite_named(&grounding.query).to_compact();
            let malform = (1.0 - self.profile.grammar_discipline) * 2.2
                / (1.0 + view.demos.len() as f64 * 0.5);
            if rng.chance(malform) {
                let cut = json.len().saturating_sub(1 + rng.below_usize(8));
                return json[..cut].to_string();
            }
            return json;
        }
        if view.chain_of_thought {
            format!(
                "Sketch: {}\nVQL: {}",
                print_sketch(&grounding.query),
                print(&grounding.query)
            )
        } else {
            print(&grounding.query)
        }
    }

    /// The deterministic synonym-knowledge gate for this model.
    pub fn knowledge_gate(&self) -> impl Fn(&str) -> bool + '_ {
        let seed = self.seed;
        let wk = self.profile.world_knowledge;
        move |alias: &str| {
            let h = fnv1a(alias) ^ seed.rotate_left(31);
            (h % 10_000) as f64 / 10_000.0 < wk
        }
    }

    /// Computes the per-query corruption budget from the prompt context.
    fn error_budget(&self, view: &PromptView, grounding: &Grounding, opts: &GenOptions) -> f64 {
        let demos = view.demos.len() as f64;
        let mut err = self.profile.base_error * opts.error_scale;

        // In-context learning: demonstrations suppress the suppressible part
        // of the error with diminishing returns; the floor is what no amount
        // of demonstrations can teach (Fig. 7's asymptote).
        let h = self.profile.icl_halflife;
        let floor = self.profile.icl_floor;
        err *= floor + (1.0 - floor) * h / (h + demos);

        // The in-domain advantage: the test schema was visible inside a
        // demonstration, so linking and value formats were effectively seen.
        if schema_seen_in_demos(view) {
            err *= self.profile.schema_seen_factor;
        }

        // Demonstration diversity (Fig. 8): distinct databases expose more
        // query patterns than repeats from one database.
        let distinct_dbs = distinct_demo_schemas(view);
        if distinct_dbs > 1 {
            err *= 1.0 - 0.035 * ((distinct_dbs - 1).min(4) as f64);
        }

        // Sketch support: demonstrations whose VQL shape matches the one we
        // are about to emit teach the output grammar for this query class.
        let target_sketch = print_sketch(&grounding.query);
        let support = view
            .demos
            .iter()
            .filter(|d| {
                nl2vis_query::parse(&d.vql)
                    .map(|q| print_sketch(&q) == target_sketch)
                    .unwrap_or(false)
            })
            .count();
        if support > 0 {
            err *= 0.85;
        }

        // Harder queries accumulate more chances to slip.
        err *= 1.0 + 0.06 * grounding.query.hardness_score() as f64;

        // Grounding risk converts missing prompt structure into error mass.
        let risk = &grounding.risk;
        if risk.unattributed {
            err += 0.22;
        }
        if risk.join_guessed {
            err += 0.18;
        }
        if risk.types_unknown && grounding.query.y.is_aggregate() {
            err += 0.05;
        }
        err += 0.04 * risk.synonyms_used as f64;
        err += 0.10 * risk.filters_unlinked as f64;
        if risk.x_unlinked {
            err += 0.25;
        }
        if risk.y_unlinked {
            err += 0.12;
        }

        err.clamp(0.02, 0.96)
    }
}

/// Applies the failure-taxonomy-shaped corruption plan to a query. Public
/// because the fine-tuned baselines share the same decoder-slip model.
/// Weights mirror the paper's Fig. 11 failure distribution;
/// `structural_scale` dampens the structural slips (chart/group/bin) the
/// chain-of-thought pass suppresses.
pub fn corrupt_query(
    q: &mut VqlQuery,
    schema: &RecoveredSchema,
    budget: f64,
    structural_scale: f64,
    rng: &mut Rng,
) {
    let mut detail = rng.fork(0xDE7A);
    corrupt_query_with(q, schema, budget, structural_scale, rng, &mut detail);
}

/// [`corrupt_query`] with separate decision and detail streams (see
/// [`SimLlm::complete_with`] for the systematic-failure rationale).
pub fn corrupt_query_with(
    q: &mut VqlQuery,
    schema: &RecoveredSchema,
    budget: f64,
    structural_scale: f64,
    decision_rng: &mut Rng,
    detail_rng: &mut Rng,
) {
    /// (Fig. 11 weight, structural?, corruption operator).
    type PlanEntry = (
        f64,
        bool,
        fn(&mut VqlQuery, &RecoveredSchema, &mut Rng) -> bool,
    );
    let plan: [PlanEntry; 9] = [
        (0.38, false, corrupt_cond),
        (0.08, false, corrupt_y),
        (0.04, false, corrupt_x),
        (0.05, true, corrupt_chart),
        (0.15, true, corrupt_group),
        (0.11, true, corrupt_bin),
        (0.10, false, corrupt_join),
        (0.02, false, corrupt_table),
        (0.07, false, corrupt_nested),
    ];
    // The budget is the expected number of slips: each whole unit is one
    // guaranteed slip, the fractional remainder one more with that
    // probability. Slips pick a component by the Fig. 11 weights, with
    // structural components damped by `structural_scale`.
    let weights: Vec<f64> = plan
        .iter()
        .map(|(w, structural, _)| w * if *structural { structural_scale } else { 1.0 })
        .collect();
    let mut remaining = budget;
    while remaining > 0.0 {
        if decision_rng.chance(remaining.min(1.0)) {
            let idx = decision_rng.pick_weighted(&weights);
            // A slip always lands somewhere: when the targeted clause is
            // absent the mistake surfaces in the dominant buckets instead
            // (a wrong condition or a wrong measure).
            let changed = plan[idx].2(q, schema, detail_rng) || corrupt_cond(q, schema, detail_rng);
            if !changed {
                corrupt_y(q, schema, detail_rng);
            }
        }
        remaining -= 1.0;
    }
}

fn corrupt_chart(q: &mut VqlQuery, _schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    q.chart = match q.chart {
        ChartType::Bar => {
            if rng.chance(0.5) {
                ChartType::Pie
            } else {
                ChartType::Line
            }
        }
        ChartType::Pie => ChartType::Bar,
        ChartType::Line => ChartType::Bar,
        ChartType::Scatter => ChartType::Line,
    };
    true
}

fn corrupt_x(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    if let Some(other) = other_column(schema, &q.from, &x_column_name(q), rng) {
        let had_qualifier = matches!(&q.x, SelectExpr::Column(c) if c.table.is_some());
        let new = if had_qualifier {
            ColumnRef::qualified(q.from.clone(), other)
        } else {
            ColumnRef::new(other)
        };
        q.x = SelectExpr::Column(new);
        true
    } else {
        false
    }
}

fn corrupt_y(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    match &mut q.y {
        SelectExpr::Agg { func, arg } => {
            if rng.chance(0.6) || arg.is_none() {
                // Wrong aggregate function.
                let alternatives: Vec<AggFunc> = [
                    AggFunc::Count,
                    AggFunc::Sum,
                    AggFunc::Avg,
                    AggFunc::Max,
                    AggFunc::Min,
                ]
                .into_iter()
                .filter(|f| f != func)
                .collect();
                *func = *rng.pick(&alternatives);
                true
            } else if let Some(a) = arg {
                match other_column(schema, &q.from, &a.column, rng) {
                    Some(other) => {
                        a.column = other;
                        true
                    }
                    None => false,
                }
            } else {
                false
            }
        }
        SelectExpr::Column(c) => match other_column(schema, &q.from, &c.column, rng) {
            Some(other) => {
                c.column = other;
                true
            }
            None => false,
        },
    }
}

fn corrupt_cond(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    if q.filter.is_some() && rng.chance(0.7) {
        match rng.below(3) {
            0 => {
                q.filter = None; // dropped condition
            }
            1 => {
                if let Some(f) = &mut q.filter {
                    perturb_literal(f, rng);
                }
            }
            _ => {
                if let Some(f) = &mut q.filter {
                    flip_op(f);
                }
            }
        }
    } else {
        // Ordering slips: wrong direction, dropped, or spurious.
        match (&mut q.order, rng.below(3)) {
            (Some(o), 0) => {
                o.dir = match o.dir {
                    SortDir::Asc => SortDir::Desc,
                    SortDir::Desc => SortDir::Asc,
                };
            }
            (Some(_), 1) => q.order = None,
            (None, _) => {
                // A spurious ordering: by the x column when one exists, else
                // by the y axis (x may be `COUNT(*)`).
                let target = match q.x.column() {
                    Some(xc) => OrderTarget::Column(xc.clone()),
                    None => OrderTarget::Y,
                };
                q.order = Some(OrderBy {
                    target,
                    dir: if rng.chance(0.5) {
                        SortDir::Asc
                    } else {
                        SortDir::Desc
                    },
                });
            }
            (Some(o), _) => {
                o.target = OrderTarget::Y;
            }
        }
    }
    let _ = schema;
    true
}

fn corrupt_group(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    if q.group_by.len() > 1 && rng.chance(0.6) {
        q.group_by.truncate(1); // dropped color series
        true
    } else if q.group_by.len() == 1 && rng.chance(0.4) {
        match other_column(schema, &q.from, &x_column_name(q), rng) {
            Some(other) => {
                q.group_by.push(ColumnRef::new(other)); // spurious series
                true
            }
            None => false,
        }
    } else if !q.group_by.is_empty() {
        q.group_by.clear(); // dropped grouping entirely
        true
    } else {
        false
    }
}

fn corrupt_bin(q: &mut VqlQuery, _schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    if let Some(bin) = &mut q.bin {
        if rng.chance(0.6) {
            let alternatives: Vec<BinUnit> = BinUnit::all()
                .into_iter()
                .filter(|u| *u != bin.unit)
                .collect();
            bin.unit = *rng.pick(&alternatives);
        } else {
            q.bin = None;
        }
        true
    } else {
        false
    }
}

fn corrupt_join(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    if let Some(join) = &mut q.join {
        if rng.chance(0.5) {
            // Wrong join key.
            match other_column(schema, &join.table, &join.right.column, rng) {
                Some(other) => {
                    join.right.column = other;
                    true
                }
                None => false,
            }
        } else {
            q.join = None;
            true
        }
    } else {
        false
    }
}

fn corrupt_table(q: &mut VqlQuery, schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    let others: Vec<&str> = schema
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .filter(|n| !n.eq_ignore_ascii_case(&q.from))
        .collect();
    if !others.is_empty() {
        q.from = rng.pick(&others).to_string();
        true
    } else {
        false
    }
}

fn corrupt_nested(q: &mut VqlQuery, _schema: &RecoveredSchema, rng: &mut Rng) -> bool {
    match &mut q.filter {
        Some(f) if f.has_subquery() => {
            flip_nested(f, rng);
            true
        }
        _ => false,
    }
}

fn x_column_name(q: &VqlQuery) -> String {
    q.x.column().map(|c| c.column.clone()).unwrap_or_default()
}

/// Picks a different column of the named table (or any table when the named
/// one is unknown).
fn other_column(
    schema: &RecoveredSchema,
    table: &str,
    current: &str,
    rng: &mut Rng,
) -> Option<String> {
    let candidates: Vec<String> = match schema
        .tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(table))
    {
        Some(t) => t
            .columns
            .iter()
            .map(|(c, _)| c.clone())
            .filter(|c| !c.eq_ignore_ascii_case(current))
            .collect(),
        None => schema
            .all_columns()
            .into_iter()
            .filter(|c| !c.eq_ignore_ascii_case(current))
            .map(str::to_string)
            .collect(),
    };
    if candidates.is_empty() {
        None
    } else {
        Some(rng.pick(&candidates).clone())
    }
}

fn perturb_literal(p: &mut Predicate, rng: &mut Rng) {
    match p {
        Predicate::Cmp { value, .. } => match value {
            Literal::Int(i) => *i += rng.range_i64(1, 10) * if rng.chance(0.5) { 1 } else { -1 },
            Literal::Float(f) => *f *= if rng.chance(0.5) { 1.25 } else { 0.8 },
            Literal::Text(s) => s.push('s'),
            Literal::Bool(b) => *b = !*b,
            Literal::Date(d) => {
                let year = d.year + if rng.chance(0.5) { 1 } else { -1 };
                if let Some(nd) = Date::new(year, d.month, d.day.min(28)) {
                    *d = nd;
                }
            }
        },
        Predicate::And(a, _) | Predicate::Or(a, _) => perturb_literal(a, rng),
        Predicate::InSubquery { subquery, .. } => {
            if let Some(inner) = &mut subquery.filter {
                perturb_literal(inner, rng);
            }
        }
    }
}

fn flip_op(p: &mut Predicate) {
    match p {
        Predicate::Cmp { op, .. } => {
            *op = match op {
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
                CmpOp::Gt => CmpOp::Ge,
                CmpOp::Ge => CmpOp::Lt,
                CmpOp::Lt => CmpOp::Le,
                CmpOp::Le => CmpOp::Gt,
            };
        }
        Predicate::And(a, _) | Predicate::Or(a, _) => flip_op(a),
        Predicate::InSubquery { negated, .. } => *negated = !*negated,
    }
}

fn flip_nested(p: &mut Predicate, rng: &mut Rng) {
    match p {
        Predicate::InSubquery {
            negated, subquery, ..
        } => {
            if rng.chance(0.5) {
                *negated = !*negated;
            } else {
                subquery.filter = None;
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            flip_nested(a, rng);
            flip_nested(b, rng);
        }
        Predicate::Cmp { .. } => {}
    }
}

/// The gold VQL of a near-duplicate demonstration over the same table set,
/// if one exists: the candidate a completion model echoes.
pub fn copyable_demo(view: &PromptView) -> Option<String> {
    let test_tables: HashSet<&str> = view
        .test_schema
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    if test_tables.is_empty() {
        return None;
    }
    let mut best: Option<(f64, &str)> = None;
    for d in &view.demos {
        let demo_tables: HashSet<&str> = d.schema.tables.iter().map(|t| t.name.as_str()).collect();
        if demo_tables != test_tables {
            continue;
        }
        let sim = nl2vis_data::text::jaccard(&view.question, &d.question);
        if sim >= 0.62 && best.as_ref().is_none_or(|(s, _)| sim > *s) {
            best = Some((sim, d.vql.as_str()));
        }
    }
    best.map(|(_, vql)| vql.to_string())
}

/// Did any demonstration show the same table set as the test schema?
pub fn schema_seen_in_demos(view: &PromptView) -> bool {
    let test_tables: HashSet<&str> = view
        .test_schema
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    if test_tables.is_empty() {
        return false;
    }
    view.demos.iter().any(|d| {
        let demo_tables: HashSet<&str> = d.schema.tables.iter().map(|t| t.name.as_str()).collect();
        demo_tables == test_tables
    })
}

/// Number of distinct demonstration schemas (by table-name sets).
pub fn distinct_demo_schemas(view: &PromptView) -> usize {
    let mut seen: HashSet<Vec<&str>> = HashSet::new();
    for d in &view.demos {
        let mut names: Vec<&str> = d.schema.tables.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        seen.insert(names);
    }
    seen.len()
}

// Re-exported from the query crate (it moved next to the parser it feeds,
// so the serving-stack validation gate shares the same extraction rule).
pub use nl2vis_query::extract_vql;

/// A stable digest of a recovered schema (names, attribution, keys) — the
/// information content the difficulty draw conditions on.
pub fn schema_digest(schema: &RecoveredSchema) -> u64 {
    let mut h: u64 = 0x9E37_79B9;
    for t in &schema.tables {
        h ^= fnv1a(&t.name).rotate_left(7);
        for (c, ty) in &t.columns {
            h = h.wrapping_mul(31).wrapping_add(fnv1a(c));
            if let Some(ty) = ty {
                h ^= fnv1a(ty.name());
            }
        }
    }
    for c in &schema.unattributed_columns {
        h = h.wrapping_mul(37).wrapping_add(fnv1a(c));
    }
    for (a, b, c, d) in &schema.fks {
        h ^= fnv1a(a)
            ^ fnv1a(b).rotate_left(13)
            ^ fnv1a(c).rotate_left(27)
            ^ fnv1a(d).rotate_left(41);
    }
    h
}

/// FNV-1a hash for deterministic seeding from strings.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::{Corpus, CorpusConfig, Example};
    use nl2vis_prompt::{build_prompt, PromptOptions};

    fn fixture() -> Corpus {
        Corpus::build(&CorpusConfig::small(23))
    }

    fn prompt_for(c: &Corpus, id: usize, demos: &[&Example], cot: bool) -> String {
        let e = c.example(id).unwrap();
        let db = c.catalog.database(&e.db).unwrap();
        let o = PromptOptions {
            chain_of_thought: cot,
            token_budget: 60_000,
            ..Default::default()
        };
        build_prompt(&o, db, &e.nl, demos, |d| c.catalog.database(&d.db).unwrap()).text
    }

    #[test]
    fn completion_is_parseable_vql_with_demos() {
        let c = fixture();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(5).collect();
        let llm = SimLlm::new(ModelProfile::gpt_4(), 7);
        let out = llm.complete(&prompt_for(&c, 0, &demos, false));
        let vql = extract_vql(&out).unwrap_or_else(|| panic!("no VQL in: {out}"));
        nl2vis_query::parse(vql).unwrap_or_else(|e| panic!("unparseable `{vql}`: {e}"));
    }

    #[test]
    fn deterministic_completions() {
        let c = fixture();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(3).collect();
        let llm = SimLlm::new(ModelProfile::davinci_003(), 11);
        let p = prompt_for(&c, 0, &demos, false);
        assert_eq!(llm.complete(&p), llm.complete(&p));
    }

    #[test]
    fn attempts_resample() {
        let c = fixture();
        let llm = SimLlm::new(ModelProfile::davinci_002(), 3);
        let p = prompt_for(&c, 0, &[], false);
        let outs: HashSet<String> = (0..12)
            .map(|a| {
                llm.complete_with(
                    &p,
                    &GenOptions {
                        attempt: a,
                        ..Default::default()
                    },
                )
            })
            .collect();
        assert!(outs.len() > 1, "attempts should vary the output");
    }

    #[test]
    fn cot_produces_sketch_then_vql() {
        let c = fixture();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(2).collect();
        let llm = SimLlm::new(ModelProfile::gpt_4(), 5);
        let out = llm.complete(&prompt_for(&c, 0, &demos, true));
        assert!(out.starts_with("Sketch: VISUALIZE["), "{out}");
        assert!(out.contains("\nVQL: VISUALIZE "), "{out}");
        let vql = extract_vql(&out).unwrap();
        nl2vis_query::parse(vql).unwrap();
    }

    #[test]
    fn more_demos_means_fewer_errors_on_average() {
        let c = fixture();
        let llm = SimLlm::new(ModelProfile::davinci_003(), 13);
        let pool: Vec<&Example> = c.examples.iter().collect();
        let n = 60.min(c.examples.len());
        let mut correct = [0usize; 2];
        for (bucket, k) in [(0usize, 0usize), (1, 10)] {
            for e in c.examples.iter().take(n) {
                let demos: Vec<&Example> =
                    nl2vis_prompt::select::select_by_similarity(&pool, &e.nl, k + 1)
                        .into_iter()
                        .filter(|d| d.id != e.id)
                        .take(k)
                        .collect();
                let db = c.catalog.database(&e.db).unwrap();
                let o = PromptOptions {
                    token_budget: 60_000,
                    ..Default::default()
                };
                let p = build_prompt(&o, db, &e.nl, &demos, |d| {
                    c.catalog.database(&d.db).unwrap()
                });
                if let Some(vql) = extract_vql(&llm.complete(&p.text)) {
                    if let Ok(pred) = nl2vis_query::parse(vql) {
                        if nl2vis_query::canon::exact_match(&pred, &e.vql) {
                            correct[bucket] += 1;
                        }
                    }
                }
            }
        }
        assert!(
            correct[1] > correct[0],
            "10-shot ({}) should beat 0-shot ({})",
            correct[1],
            correct[0]
        );
    }

    #[test]
    fn vega_output_mode_emits_importable_json() {
        let c = fixture();
        let e = c.example(0).unwrap();
        let db = c.catalog.database(&e.db).unwrap();
        let demos: Vec<&Example> = c.examples.iter().skip(1).take(6).collect();
        let o = PromptOptions {
            answer: nl2vis_prompt::AnswerFormat::VegaLite,
            token_budget: 60_000,
            ..Default::default()
        };
        let p = build_prompt(&o, db, &e.nl, &demos, |d| {
            c.catalog.database(&d.db).unwrap()
        });
        let llm = SimLlm::new(ModelProfile::gpt_4(), 7);
        let out = llm.complete(&p.text);
        assert!(
            out.trim_start().starts_with('{'),
            "expected JSON, got: {out}"
        );
        // Well-formed outputs import back into VQL.
        if let Ok(q) = nl2vis_vega::import::from_vega_lite_text(&out) {
            assert!(!q.from.is_empty());
        }
    }

    #[test]
    fn extract_vql_variants() {
        assert_eq!(
            extract_vql("VQL: VISUALIZE bar SELECT a , b FROM t"),
            Some("VISUALIZE bar SELECT a , b FROM t")
        );
        assert_eq!(
            extract_vql("Sketch: ...\nVQL: VISUALIZE pie SELECT a , b FROM t"),
            Some("VISUALIZE pie SELECT a , b FROM t")
        );
        assert_eq!(
            extract_vql("  visualize bar SELECT a , b FROM t  "),
            Some("visualize bar SELECT a , b FROM t")
        );
        assert_eq!(extract_vql("no query here"), None);
    }

    #[test]
    fn garbage_prompt_yields_non_vql() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let out = llm.complete("hello");
        assert!(extract_vql(&out).is_none());
    }

    #[test]
    fn knowledge_gate_is_deterministic_and_calibrated() {
        let strong = SimLlm::new(ModelProfile::gpt_4(), 42);
        let gate = strong.knowledge_gate();
        let aliases: Vec<&str> = nl2vis_corpus::pools::SYNONYMS
            .iter()
            .map(|(a, _)| *a)
            .collect();
        let known = aliases.iter().filter(|a| gate(a)).count();
        let rate = known as f64 / aliases.len() as f64;
        assert!(rate > 0.80, "gpt-4 should know most synonyms, got {rate}");
        // Deterministic.
        assert_eq!(gate("pay"), gate("pay"));
    }
}
