//! Conversational NL2VIS (the paper's §6.2 "support of conversational
//! NL2VIS" future-work direction): interpreting *follow-up* utterances that
//! revise the previous visualization instead of specifying a new one from
//! scratch.
//!
//! A follow-up is parsed into an [`Edit`] against the previous query:
//! `"make it a pie chart"`, `"only the BOS team"`, `"sort by the value
//! descending"`, `"by month instead"`, `"split it by region"`, `"drop the
//! filter"`, `"switch to the average"`. Edits are grounded with the same
//! linker the single-turn path uses.

use crate::link::{link_column_in, Link};
use crate::recover::RecoveredSchema;
use crate::understand::{question_tokens, QTok};
use nl2vis_data::value::Date;
use nl2vis_query::ast::*;

/// A revision of the previous query.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Change the chart type.
    Chart(ChartType),
    /// Add (AND) a filter.
    AddFilter(Predicate),
    /// Remove all filters.
    ClearFilter,
    /// Replace the ordering.
    Order(OrderBy),
    /// Remove the ordering.
    ClearOrder,
    /// Change the aggregate function (and optionally its measure column,
    /// when the utterance names one: "switch to the average salary").
    Agg(AggFunc, Option<ColumnRef>),
    /// Change the temporal bin unit.
    Bin(BinUnit),
    /// Add a color/series grouping.
    Color(ColumnRef),
    /// Remove the color/series grouping.
    ClearColor,
}

impl Edit {
    /// Applies the edit to a query, producing the revised query.
    pub fn apply(&self, prev: &VqlQuery) -> VqlQuery {
        let mut q = prev.clone();
        match self {
            Edit::Chart(c) => q.chart = *c,
            Edit::AddFilter(p) => {
                q.filter = Some(match q.filter.take() {
                    Some(existing) => Predicate::And(Box::new(existing), Box::new(p.clone())),
                    None => p.clone(),
                });
            }
            Edit::ClearFilter => q.filter = None,
            Edit::Order(o) => q.order = Some(o.clone()),
            Edit::ClearOrder => q.order = None,
            Edit::Agg(func, target) => match &mut q.y {
                SelectExpr::Agg { func: f, arg } => {
                    *f = *func;
                    if let Some(t) = target {
                        *arg = Some(t.clone());
                    }
                }
                SelectExpr::Column(c) => {
                    let arg = target.clone().unwrap_or_else(|| c.clone());
                    q.y = SelectExpr::Agg {
                        func: *func,
                        arg: Some(arg),
                    };
                    if q.group_by.is_empty() {
                        if let Some(xc) = q.x.column() {
                            q.group_by.push(xc.clone());
                        }
                    }
                }
            },
            Edit::Bin(unit) => match &mut q.bin {
                Some(b) => b.unit = *unit,
                None => {
                    if let Some(xc) = q.x.column() {
                        q.bin = Some(Bin {
                            column: xc.clone(),
                            unit: *unit,
                        });
                    }
                }
            },
            Edit::Color(c) => {
                if q.group_by.is_empty() {
                    if let Some(xc) = q.x.column() {
                        q.group_by.push(xc.clone());
                    }
                }
                q.group_by.truncate(1);
                q.group_by.push(c.clone());
            }
            Edit::ClearColor => q.group_by.truncate(1),
        }
        q
    }
}

/// Parses a follow-up utterance against the previous query and schema.
/// Returns the edits it expresses (empty when the utterance is not a
/// recognizable follow-up — callers should fall back to the single-turn
/// path).
pub fn parse_follow_up(
    text: &str,
    prev: &VqlQuery,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
) -> Vec<Edit> {
    let lower = text.to_ascii_lowercase();
    // Tokenize the original text: quoted literals must keep their case.
    let toks = question_tokens(text);
    let mut edits = Vec::new();

    // Chart change: "make it a pie chart", "as bars", "switch to a line".
    if lower.contains("make it")
        || lower.contains("as a")
        || lower.contains("switch to")
        || lower.contains("instead")
        || lower.contains("turn it into")
        || lower.contains("show it as")
    {
        for t in &toks {
            if let QTok::Word(w) = t {
                let chart = match w.as_str() {
                    "bar" | "bars" | "histogram" => Some(ChartType::Bar),
                    "pie" | "donut" => Some(ChartType::Pie),
                    "line" | "trend" => Some(ChartType::Line),
                    "scatter" => Some(ChartType::Scatter),
                    _ => None,
                };
                if let Some(c) = chart {
                    if c != prev.chart {
                        edits.push(Edit::Chart(c));
                    }
                }
            }
        }
    }

    // Aggregate change: "use the average instead", "switch to the total
    // salary" (a named measure re-links the aggregate's target column).
    for (word, func) in [
        ("average", AggFunc::Avg),
        ("mean", AggFunc::Avg),
        ("total", AggFunc::Sum),
        ("sum", AggFunc::Sum),
        ("count", AggFunc::Count),
        ("minimum", AggFunc::Min),
        ("maximum", AggFunc::Max),
    ] {
        if (lower.contains("switch to") || lower.contains("use the") || lower.contains("show the"))
            && lower.contains(word)
        {
            let scope: Vec<String> = std::iter::once(prev.from.clone())
                .chain(prev.join.as_ref().map(|j| j.table.clone()))
                .collect();
            let target = lower
                .split_once(word)
                .map(|(_, rest)| rest.trim_end_matches('.').trim())
                .filter(|rest| !rest.is_empty())
                .and_then(|rest| link_column_in(rest, schema, knows, Some(&scope)))
                .map(|l| column_ref_for(prev, &l));
            edits.push(Edit::Agg(func, target));
            break;
        }
    }

    // Bin change: "by month instead", "bin by quarter".
    if lower.contains("instead") || lower.contains("bin") {
        for unit in BinUnit::all() {
            if lower.contains(unit.keyword()) && prev.bin.as_ref().map(|b| b.unit) != Some(unit) {
                edits.push(Edit::Bin(unit));
                break;
            }
        }
    }

    // Clear clauses: "drop the filter", "remove the sorting", "no colors".
    if lower.contains("drop the filter")
        || lower.contains("remove the filter")
        || lower.contains("without the filter")
        || lower.contains("clear the filter")
    {
        edits.push(Edit::ClearFilter);
    }
    if lower.contains("remove the sort")
        || lower.contains("drop the sort")
        || lower.contains("unsorted")
    {
        edits.push(Edit::ClearOrder);
    }
    if lower.contains("remove the split")
        || lower.contains("no split")
        || lower.contains("remove the color")
        || lower.contains("single series")
    {
        edits.push(Edit::ClearColor);
    }

    // Ordering: "sort by the value descending", "sort ascending".
    if lower.contains("sort") || lower.contains("order it") || lower.contains("rank") {
        let dir =
            if lower.contains("desc") || lower.contains("largest") || lower.contains("decreas") {
                SortDir::Desc
            } else {
                SortDir::Asc
            };
        let target =
            if lower.contains("value") || lower.contains("y axis") || lower.contains("measure") {
                OrderTarget::Y
            } else if let Some(xc) = prev.x.column() {
                OrderTarget::Column(xc.clone())
            } else {
                OrderTarget::X
            };
        edits.push(Edit::Order(OrderBy { target, dir }));
    }

    // Color/series: "split it by region", "color by team".
    for marker in [
        "split it by ",
        "split by ",
        "color by ",
        "colored by ",
        "stack by ",
        "break it down by ",
    ] {
        if let Some(pos) = lower.find(marker) {
            let phrase = lower[pos + marker.len()..]
                .trim_end_matches('.')
                .to_string();
            let scope: Vec<String> = std::iter::once(prev.from.clone())
                .chain(prev.join.as_ref().map(|j| j.table.clone()))
                .collect();
            if let Some(link) = link_column_in(&phrase, schema, knows, Some(&scope))
                .or_else(|| link_column_in(&phrase, schema, knows, None))
            {
                edits.push(Edit::Color(column_ref_for(prev, &link)));
            }
            break;
        }
    }

    // Narrowing filters: "only the BOS team", "just Economics",
    // "keep only rows over 30".
    if lower.starts_with("only") || lower.contains(" only ") || lower.starts_with("just ") {
        if let Some(p) = parse_narrowing(&toks, prev, schema, knows) {
            edits.push(Edit::AddFilter(p));
        }
    }

    edits
}

/// Parses "only <value phrase>" into an equality (or range) filter, linking
/// the column either from an explicit mention or by finding which in-scope
/// column plausibly holds the value.
fn parse_narrowing(
    toks: &[QTok],
    prev: &VqlQuery,
    schema: &RecoveredSchema,
    knows: &dyn Fn(&str) -> bool,
) -> Option<Predicate> {
    // Literal: first quoted / numeric / date token, else the last
    // capitalizable word is unavailable post-lowercasing — require an
    // explicit literal or a column mention with a quoted value.
    let mut literal: Option<Literal> = None;
    let mut comparison = CmpOp::Eq;
    for (i, t) in toks.iter().enumerate() {
        match t {
            QTok::Quoted(s) => {
                literal = Some(match Date::parse(s) {
                    Some(d) => Literal::Date(d),
                    None => Literal::Text(s.clone()),
                });
                break;
            }
            QTok::Num(n) => {
                // "only rows over 30" / "only under 10".
                let preceding: Vec<&str> = toks[..i]
                    .iter()
                    .filter_map(|t| match t {
                        QTok::Word(w) => Some(w.as_str()),
                        _ => None,
                    })
                    .collect();
                comparison = if preceding
                    .iter()
                    .any(|w| ["over", "above", "more"].contains(w))
                {
                    CmpOp::Gt
                } else if preceding
                    .iter()
                    .any(|w| ["under", "below", "less"].contains(w))
                {
                    CmpOp::Lt
                } else {
                    CmpOp::Eq
                };
                literal = Some(if n.fract() == 0.0 {
                    Literal::Int(*n as i64)
                } else {
                    Literal::Float(*n)
                });
                break;
            }
            QTok::DateTok(d) => {
                literal = Some(Literal::Date(*d));
                break;
            }
            QTok::Word(_) => {}
        }
    }
    let literal = literal?;

    // Column: an explicitly mentioned column wins; else the x column (for
    // text values over a categorical x) or the first in-scope column whose
    // sample value matches.
    let scope: Vec<String> = std::iter::once(prev.from.clone())
        .chain(prev.join.as_ref().map(|j| j.table.clone()))
        .collect();
    let words: Vec<String> = toks
        .iter()
        .filter_map(|t| match t {
            QTok::Word(w) => Some(w.clone()),
            _ => None,
        })
        .collect();
    let mention = words
        .iter()
        .filter(|w| {
            ![
                "only", "the", "just", "rows", "keep", "show", "over", "above", "under", "below",
                "more", "less", "than",
            ]
            .contains(&w.as_str())
        })
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    let link: Option<Link> = if mention.is_empty() {
        None
    } else {
        link_column_in(&mention, schema, knows, Some(&scope))
    };
    let col = match link {
        Some(l) => column_ref_for(prev, &l),
        None => prev.x.column()?.clone(),
    };
    Some(Predicate::Cmp {
        col,
        op: comparison,
        value: literal,
    })
}

/// Qualifies a linked column the way the previous query's references are
/// qualified (qualified when joining, bare otherwise).
fn column_ref_for(prev: &VqlQuery, link: &Link) -> ColumnRef {
    if prev.join.is_some() {
        match &link.table {
            Some(t) => ColumnRef::qualified(t.clone(), link.column.clone()),
            None => ColumnRef::new(link.column.clone()),
        }
    } else {
        ColumnRef::new(link.column.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nl2vis_corpus::domains::all_domains;
    use nl2vis_corpus::generate::instantiate;
    use nl2vis_data::Rng;
    use nl2vis_query::parse;

    const KNOW_ALL: fn(&str) -> bool = |_| true;

    fn setup() -> (VqlQuery, RecoveredSchema) {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        let schema = RecoveredSchema::from_database(&db);
        let q =
            parse("VISUALIZE bar SELECT team , COUNT(name) FROM technician GROUP BY team").unwrap();
        (q, schema)
    }

    #[test]
    fn chart_change() {
        let (q, s) = setup();
        let edits = parse_follow_up("make it a pie chart", &q, &s, &KNOW_ALL);
        assert_eq!(edits, vec![Edit::Chart(ChartType::Pie)]);
        let revised = edits[0].apply(&q);
        assert_eq!(revised.chart, ChartType::Pie);
        assert_eq!(revised.from, q.from);
    }

    #[test]
    fn narrowing_filter_on_x() {
        let (q, s) = setup();
        let edits = parse_follow_up("only the \"BOS\" team", &q, &s, &KNOW_ALL);
        assert_eq!(edits.len(), 1);
        let revised = edits[0].apply(&q);
        match revised.filter.unwrap() {
            Predicate::Cmp { col, op, value } => {
                assert_eq!(col.column, "team");
                assert_eq!(op, CmpOp::Eq);
                assert_eq!(value, Literal::Text("BOS".into()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn numeric_narrowing_with_range() {
        let (q, s) = setup();
        let edits = parse_follow_up("only technicians with age over 30", &q, &s, &KNOW_ALL);
        assert_eq!(edits.len(), 1);
        match &edits[0] {
            Edit::AddFilter(Predicate::Cmp { col, op, value }) => {
                assert_eq!(col.column, "age");
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(*value, Literal::Int(30));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn filters_accumulate_with_and() {
        let (q, s) = setup();
        let first = parse_follow_up("only the \"BOS\" team", &q, &s, &KNOW_ALL)[0].apply(&q);
        let second = parse_follow_up("only technicians with age over 30", &first, &s, &KNOW_ALL)[0]
            .apply(&first);
        assert!(matches!(second.filter, Some(Predicate::And(_, _))));
    }

    #[test]
    fn clear_filter() {
        let (q, s) = setup();
        let filtered = parse_follow_up("only the \"BOS\" team", &q, &s, &KNOW_ALL)[0].apply(&q);
        let edits = parse_follow_up("drop the filter", &filtered, &s, &KNOW_ALL);
        assert_eq!(edits, vec![Edit::ClearFilter]);
        assert!(edits[0].apply(&filtered).filter.is_none());
    }

    #[test]
    fn sort_follow_up() {
        let (q, s) = setup();
        let edits = parse_follow_up("sort by the value descending", &q, &s, &KNOW_ALL);
        assert_eq!(
            edits,
            vec![Edit::Order(OrderBy {
                target: OrderTarget::Y,
                dir: SortDir::Desc
            })]
        );
    }

    #[test]
    fn agg_change() {
        let (q, s) = setup();
        let edits = parse_follow_up("switch to the average salary", &q, &s, &KNOW_ALL);
        assert_eq!(
            edits,
            vec![Edit::Agg(AggFunc::Avg, Some(ColumnRef::new("salary")))]
        );
        let revised = edits[0].apply(&q);
        assert_eq!(
            revised.y,
            SelectExpr::Agg {
                func: AggFunc::Avg,
                arg: Some(ColumnRef::new("salary"))
            }
        );
    }

    #[test]
    fn color_split() {
        let (q, s) = setup();
        let edits = parse_follow_up("split it by squad", &q, &s, &KNOW_ALL);
        assert_eq!(edits, vec![Edit::Color(ColumnRef::new("team"))]); // squad -> team
        let revised = edits[0].apply(&q);
        assert_eq!(revised.group_by.len(), 2);
        // Clearing works.
        let cleared = Edit::ClearColor.apply(&revised);
        assert_eq!(cleared.group_by.len(), 1);
    }

    #[test]
    fn bin_change_on_temporal_query() {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        let s = RecoveredSchema::from_database(&db);
        let q = parse(
            "VISUALIZE line SELECT hire_date , COUNT(hire_date) FROM technician BIN hire_date BY year GROUP BY hire_date",
        )
        .unwrap();
        let edits = parse_follow_up("by month instead", &q, &s, &KNOW_ALL);
        assert_eq!(edits, vec![Edit::Bin(BinUnit::Month)]);
        assert_eq!(edits[0].apply(&q).bin.unwrap().unit, BinUnit::Month);
    }

    #[test]
    fn non_follow_up_yields_no_edits() {
        let (q, s) = setup();
        let edits = parse_follow_up(
            "Show a bar chart of the number of machines per series.",
            &q,
            &s,
            &KNOW_ALL,
        );
        assert!(edits.is_empty());
    }

    #[test]
    fn edits_execute_on_the_database() {
        let db = instantiate(&all_domains()[0], 0, &mut Rng::new(2));
        let s = RecoveredSchema::from_database(&db);
        let q =
            parse("VISUALIZE bar SELECT team , COUNT(name) FROM technician GROUP BY team").unwrap();
        let base_rows = nl2vis_query::execute(&q, &db).unwrap().rows.len();
        for text in [
            "make it a pie chart",
            "sort by the value descending",
            "only technicians with age over 30",
            "split it by machine series", // cross-table link falls back gracefully
        ] {
            let edits = parse_follow_up(text, &q, &s, &KNOW_ALL);
            let mut revised = q.clone();
            for e in &edits {
                revised = e.apply(&revised);
            }
            if nl2vis_query::bind::bind(&revised, &db).is_ok() {
                let r = nl2vis_query::execute(&revised, &db).unwrap();
                assert!(r.rows.len() <= base_rows.max(1) * 4);
            }
        }
    }
}
