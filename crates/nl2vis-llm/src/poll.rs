//! Readiness notification for the event-driven server core.
//!
//! The poller threads in [`crate::event`] own hundreds of nonblocking
//! sockets each and need one cheap question answered: *which of these can
//! make progress right now?* On Linux (with the default `epoll` feature)
//! that question goes to the kernel through a thin `extern "C"` shim over
//! the epoll syscalls — the symbols live in the libc every Rust binary
//! already links, so no new crate is involved. Everywhere else a portable
//! fallback scans every registered socket with nonblocking reads and an
//! adaptive sleep; correct on any platform `std::net` supports, just not
//! O(ready) like epoll.
//!
//! Wakeups (a worker finished a response, the accept thread handed over a
//! connection, shutdown began) ride a loopback TCP socket pair registered
//! like any other connection — the std-only stand-in for an `eventfd`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Token the poller assigns to its wake socket. Connection tokens start
/// at 1, so 0 is never ambiguous.
pub const WAKE_TOKEN: u64 = 0;

#[cfg(all(target_os = "linux", feature = "epoll"))]
mod sys {
    //! The four epoll syscalls, declared against the already-linked libc.

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Matches the kernel's `struct epoll_event`, which x86-64 declares
    /// packed (the 64-bit `data` field sits at offset 4).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// One poller's readiness source.
pub enum Poller {
    /// Kernel-backed: `wait` returns exactly the ready tokens.
    #[cfg(all(target_os = "linux", feature = "epoll"))]
    Epoll { epfd: i32 },
    /// Portable fallback: `wait` sleeps briefly and reports nothing; the
    /// event loop must scan every connection it owns.
    Scan,
}

impl Default for Poller {
    fn default() -> Poller {
        Poller::new()
    }
}

impl Poller {
    /// Opens the best available readiness source.
    pub fn new() -> Poller {
        #[cfg(all(target_os = "linux", feature = "epoll"))]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Poller::Epoll { epfd };
            }
        }
        Poller::Scan
    }

    /// Does `wait` report readiness, or must the caller scan?
    pub fn is_edge_informed(&self) -> bool {
        #[cfg(all(target_os = "linux", feature = "epoll"))]
        if matches!(self, Poller::Epoll { .. }) {
            return true;
        }
        false
    }

    /// Starts watching `stream` for readable bytes (and peer hangups)
    /// under `token`. A no-op in scan mode.
    pub fn register(&self, stream: &TcpStream, token: u64) {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll { epfd } => {
                use std::os::fd::AsRawFd;
                let mut ev = sys::EpollEvent {
                    events: sys::EPOLLIN | sys::EPOLLRDHUP,
                    data: token,
                };
                unsafe {
                    sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, stream.as_raw_fd(), &mut ev);
                }
            }
            Poller::Scan => {
                let _ = (stream, token);
            }
        }
    }

    /// Stops watching `stream`. Must be called before a worker takes over
    /// the socket, so a level-triggered kernel does not keep reporting
    /// bytes the poller is no longer allowed to read.
    pub fn deregister(&self, stream: &TcpStream) {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll { epfd } => {
                use std::os::fd::AsRawFd;
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                unsafe {
                    sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, stream.as_raw_fd(), &mut ev);
                }
            }
            Poller::Scan => {}
        }
    }

    /// Blocks until something registered is readable or `timeout` passes.
    /// Appends the ready tokens to `out` (possibly none on timeout). In
    /// scan mode this only sleeps: the caller scans its whole connection
    /// table afterwards.
    pub fn wait(&self, out: &mut Vec<u64>, timeout: Duration) {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll { epfd } => {
                let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
                let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
                let n =
                    unsafe { sys::epoll_wait(*epfd, events.as_mut_ptr(), events.len() as i32, ms) };
                for ev in events.iter().take(n.max(0) as usize) {
                    // `data` may be misaligned in the packed layout; copy it
                    // out through a local.
                    let token = ev.data;
                    out.push(token);
                }
            }
            Poller::Scan => {
                if !timeout.is_zero() {
                    std::thread::park_timeout(timeout);
                }
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        match self {
            #[cfg(all(target_os = "linux", feature = "epoll"))]
            Poller::Epoll { epfd } => unsafe {
                sys::close(*epfd);
            },
            Poller::Scan => {}
        }
    }
}

/// A loopback socket pair carrying wakeups into a poller's `wait`.
///
/// The receiving half is registered under [`WAKE_TOKEN`]; any thread with
/// the sending half writes one byte to interrupt the poller's sleep. In
/// scan mode the sender instead unparks the poller thread directly.
pub struct WakePair {
    /// Nonblocking receiving half, registered with the poller.
    pub rx: TcpStream,
    tx: TcpStream,
    thread: std::sync::Mutex<Option<std::thread::Thread>>,
}

impl WakePair {
    /// Builds the pair over an ephemeral loopback listener.
    pub fn new() -> std::io::Result<WakePair> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok(WakePair {
            rx,
            tx,
            thread: std::sync::Mutex::new(None),
        })
    }

    /// Tells the pair which thread to unpark when the poller runs in scan
    /// mode (where nothing watches the socket).
    pub fn set_thread(&self, thread: std::thread::Thread) {
        *self.thread.lock().expect("wake thread slot") = Some(thread);
    }

    /// Wakes the owning poller. Cheap enough to call per event; write
    /// errors are ignored because a full pipe already guarantees a pending
    /// wakeup and a closed one means the poller is gone.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
        if let Some(thread) = self.thread.lock().expect("wake thread slot").as_ref() {
            thread.unpark();
        }
    }

    /// Drains queued wake bytes so the next `wait` can block again.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }
}
