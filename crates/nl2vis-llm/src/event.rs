//! The event-driven server core: sharded pollers, a request queue, and a
//! batching worker pool.
//!
//! The original runtime was thread-per-connection: a connection held a
//! worker for its whole life, so a few hundred idle keep-alive clients
//! starved the pool. This core decouples the two populations. A small,
//! fixed set of *poller* threads owns every accepted socket in nonblocking
//! mode and does the byte-level work — reading, incremental HTTP parsing,
//! request-level admission control — while the bounded *worker* pool only
//! ever sees complete parsed requests. Thread count is
//! `pollers + max_inflight` regardless of connection count.
//!
//! Sockets move between the two sides with a mode switch rather than a
//! write-readiness state machine: when a poller finishes parsing a request
//! it deregisters the socket, marks the connection busy, and enqueues the
//! request with a cloned handle; the worker flips the socket to blocking,
//! writes the whole response, flips it back, and posts a `Done` to the
//! owning poller, which re-registers the socket and resumes parsing any
//! pipelined leftovers. The `busy` flag serializes a connection's
//! requests, so responses can never interleave.
//!
//! On top of the queue sits **server-side batching**: a worker that
//! dequeues a completion request also drains every queued completion
//! sharing its `(model, GenOptions)` key — and optionally lingers for
//! [`crate::http::ServerTuning::batch_window`] — serving the whole group
//! with a single [`SimLlm`] invocation that deduplicates identical
//! prompts. Under a skewed (Zipf) workload most of a saturated queue is a
//! handful of hot prompts, so one invocation amortizes the prompt/schema
//! parse that dominates completion CPU.

use crate::fault::{Fault, FaultInjector};
use crate::http::{
    completion_json, connection_keeps_alive, header_value, render_response, respond, route,
    BadRequest, Request, ServerConfig, ServerTuning, JSON, MAX_BODY_BYTES, SERVER_IO_TIMEOUT,
    SERVER_KEEPALIVE_IDLE,
};
use crate::poll::{Poller, WakePair, WAKE_TOKEN};
use crate::sim::{GenOptions, SimLlm};
use nl2vis_data::Json;
use nl2vis_obs as obs;
use nl2vis_obs::{MetricsRegistry, WindowedRegistry};
use nl2vis_service::CompletionService;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Header bytes a single request may occupy before parsing gives up; far
/// above any legitimate request line + headers, far below a memory threat.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// How long an epoll-backed poller sleeps with nothing ready; bounds the
/// latency of idle sweeps and drain checks, not of request handling
/// (readiness interrupts the wait).
const POLL_TICK: Duration = Duration::from_millis(100);

/// Scan-mode fallback tick: the cost of not having epoll is at most this
/// much added latency per read.
const SCAN_TICK: Duration = Duration::from_millis(1);

/// During drain, how long a connection with no complete request gets to
/// finish sending one before the poller closes it.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Deadline for poller-side response writes (sheds, parse errors). A shed
/// exists to protect the workers; it must never park a poller on a slow
/// peer.
const POLLER_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

/// What the server completes against: the simulated model it has always
/// hosted, or any layered [`CompletionService`] stack — which is how a
/// [`TieredService`](nl2vis_service::TieredService) is hosted natively.
///
/// The split matters on the worker side: server-side batching relies on
/// [`SimLlm::complete_batch`]'s prompt deduplication, so it only engages
/// for the `Sim` backend; a `Service` backend serves requests one at a
/// time (a tier router's escalation decisions are per-request anyway).
pub(crate) enum Backend {
    /// The simulated model, with batching.
    Sim(Arc<SimLlm>),
    /// A composed completion stack, served request-at-a-time.
    Service(Arc<dyn CompletionService + Send + Sync>),
}

impl Backend {
    /// The model name this backend answers as (`/v1/models`, `/healthz`,
    /// completion bodies, and the `model` field of request classification).
    pub(crate) fn model(&self) -> &str {
        match self {
            Backend::Sim(llm) => llm.profile.name,
            Backend::Service(svc) => svc.model(),
        }
    }

    /// The simulated model, when that is what this backend is.
    fn sim(&self) -> Option<&Arc<SimLlm>> {
        match self {
            Backend::Sim(llm) => Some(llm),
            Backend::Service(_) => None,
        }
    }
}

/// The completion request pre-parsed by the poller, so workers can form
/// batches without re-reading JSON under the queue lock.
pub(crate) enum CompletionParse {
    /// Well-formed request for the hosted model.
    Call(CompletionCall),
    /// Well-formed JSON naming a model this server does not host.
    BadModel(String),
    /// Body that does not parse as JSON; carries the parser's message.
    BadJson(String),
}

/// A parsed completion call: the batching unit.
pub(crate) struct CompletionCall {
    pub prompt: String,
    pub opts: GenOptions,
}

/// The batch key: completions coalesce only when every generation option
/// matches bit-for-bit (floats compared by bits, so `-0.0 != 0.0` — the
/// safe direction).
fn opts_key(opts: &GenOptions) -> (u64, u64, u64) {
    (
        opts.attempt,
        opts.error_scale.to_bits(),
        opts.structural_scale.to_bits(),
    )
}

/// One parsed request traveling from a poller to a worker.
pub(crate) struct Work {
    /// Token of the owning connection, scoped to `poller`.
    conn: u64,
    /// Index of the poller shard that owns the connection.
    poller: usize,
    /// Cloned socket handle the worker writes the response to.
    stream: TcpStream,
    request: Request,
    /// `Some` exactly when the request is `POST /v1/completions`.
    parse: Option<CompletionParse>,
    /// When the poller finished parsing; request latency counts queue wait.
    received: Instant,
}

fn batch_key(work: &Work) -> Option<(u64, u64, u64)> {
    match &work.parse {
        Some(CompletionParse::Call(call)) => Some(opts_key(&call.opts)),
        _ => None,
    }
}

fn call_of(work: &Work) -> &CompletionCall {
    match &work.parse {
        Some(CompletionParse::Call(call)) => call,
        _ => unreachable!("batch members are parsed completion calls"),
    }
}

/// State shared by pollers, workers, and the accept thread.
pub(crate) struct Shared {
    /// Complete parsed requests waiting for a worker.
    queue: Mutex<VecDeque<Work>>,
    /// Signals workers that the queue has work (or that draining began).
    ready: Condvar,
    /// Set at shutdown *after* the pollers exit: workers drain the queue,
    /// then exit.
    draining: AtomicBool,
    config: ServerConfig,
    tuning: ServerTuning,
    backend: Backend,
    registry: Arc<MetricsRegistry>,
    windowed: Arc<WindowedRegistry>,
    faults: Arc<FaultInjector>,
}

/// A `Done` posted by a worker when a response has been written (or the
/// connection was fault-dropped).
struct Done {
    conn: u64,
    /// Keep the connection registered for more requests?
    keep: bool,
}

/// One poller shard's mailbox: new connections from the accept thread,
/// completions from workers, and the drain signal.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    dones: Vec<Done>,
    drain: bool,
}

/// The cross-thread handle to one poller shard.
pub(crate) struct PollerShared {
    inbox: Mutex<Inbox>,
    wake: WakePair,
}

/// Hands an accepted connection to a poller shard, round-robin.
pub(crate) fn hand_off(pollers: &[Arc<PollerShared>], rr: &AtomicUsize, stream: TcpStream) {
    let i = rr.fetch_add(1, Ordering::Relaxed) % pollers.len();
    pollers[i]
        .inbox
        .lock()
        .expect("poller inbox")
        .conns
        .push(stream);
    pollers[i].wake.wake();
}

/// The running core: poller shards plus the worker pool.
pub(crate) struct Core {
    pub pollers: Vec<Arc<PollerShared>>,
    poller_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Core {
    pub fn start(
        backend: Backend,
        registry: Arc<MetricsRegistry>,
        windowed: Arc<WindowedRegistry>,
        faults: Arc<FaultInjector>,
        config: ServerConfig,
        tuning: ServerTuning,
    ) -> std::io::Result<Core> {
        let pollers = tuning.pollers.max(1);
        let workers = config.max_inflight.max(1);
        registry
            .gauge("server.serving_threads")
            .set((pollers + workers) as i64);
        registry.gauge("server.poller.shards").set(pollers as i64);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
            tuning,
            backend,
            registry,
            windowed,
            faults,
        });
        let poller_shared: Vec<Arc<PollerShared>> = (0..pollers)
            .map(|_| {
                Ok(Arc::new(PollerShared {
                    inbox: Mutex::new(Inbox::default()),
                    wake: WakePair::new()?,
                }))
            })
            .collect::<std::io::Result<_>>()?;
        let poller_handles = poller_shared
            .iter()
            .enumerate()
            .map(|(index, me)| {
                let shared = Arc::clone(&shared);
                let me = Arc::clone(me);
                std::thread::spawn(move || {
                    PollerThread {
                        index,
                        shared,
                        me,
                        poller: Poller::new(),
                        conns: HashMap::new(),
                        next_token: WAKE_TOKEN + 1,
                        draining: false,
                        drain_deadline: None,
                    }
                    .run()
                })
            })
            .collect();
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let pollers = poller_shared.clone();
                std::thread::spawn(move || worker_loop(&shared, &pollers))
            })
            .collect();
        Ok(Core {
            pollers: poller_shared,
            poller_handles,
            worker_handles,
            shared,
        })
    }

    /// Two-phase drain. Phase A tells the pollers to quiesce: they parse
    /// and dispatch what has already arrived (fresh connections get
    /// [`DRAIN_GRACE`] to finish a request in flight), close everything
    /// else, wait for in-flight responses, and exit — so by the time they
    /// are joined, no new work can appear. Phase B then drains the worker
    /// pool: workers serve the queue to empty and exit. Every request the
    /// pollers dispatched is therefore served before shutdown completes.
    pub fn shutdown(mut self) {
        for p in &self.pollers {
            p.inbox.lock().expect("poller inbox").drain = true;
            p.wake.wake();
        }
        for h in self.poller_handles.drain(..) {
            let _ = h.join();
        }
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.ready.notify_all();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One nonblocking connection owned by a poller.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a request.
    buf: Vec<u8>,
    /// Responses completed on this connection.
    served: u64,
    /// A request is dispatched and its response not yet written; the
    /// poller neither reads nor closes a busy connection.
    busy: bool,
    /// Peer sent EOF while a response was in flight; close after it.
    peer_closed: bool,
    last_activity: Instant,
}

struct PollerThread {
    index: usize,
    shared: Arc<Shared>,
    me: Arc<PollerShared>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

impl PollerThread {
    fn run(mut self) {
        self.me.wake.set_thread(std::thread::current());
        self.poller.register(&self.me.wake.rx, WAKE_TOKEN);
        let wakeups = self.shared.registry.counter("server.poller.wakeups_total");
        let mut ready: Vec<u64> = Vec::new();
        loop {
            let progressed = self.handle_inbox();
            if self.draining {
                self.drain_tick();
                if self.conns.is_empty() {
                    return;
                }
            } else {
                self.sweep_idle();
            }
            ready.clear();
            let timeout = if self.poller.is_edge_informed() {
                POLL_TICK
            } else if progressed {
                Duration::ZERO
            } else {
                SCAN_TICK
            };
            self.poller.wait(&mut ready, timeout);
            if self.poller.is_edge_informed() {
                if !ready.is_empty() {
                    wakeups.inc();
                }
                if ready.contains(&WAKE_TOKEN) {
                    self.me.wake.drain();
                }
                let tokens: Vec<u64> = ready.iter().copied().filter(|&t| t != WAKE_TOKEN).collect();
                for token in tokens {
                    self.read_conn(token);
                }
            } else {
                self.me.wake.drain();
                let tokens: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.busy)
                    .map(|(&t, _)| t)
                    .collect();
                for token in tokens {
                    self.read_conn(token);
                }
            }
        }
    }

    /// Drains the mailbox; returns whether anything was processed.
    fn handle_inbox(&mut self) -> bool {
        let (conns, dones, drain) = {
            let mut inbox = self.me.inbox.lock().expect("poller inbox");
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.dones),
                inbox.drain,
            )
        };
        if drain && !self.draining {
            self.draining = true;
            self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        }
        let progressed = !conns.is_empty() || !dones.is_empty();
        for stream in conns {
            self.adopt(stream);
        }
        for done in dones {
            self.handle_done(done);
        }
        progressed
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Responses are complete messages; never let Nagle hold one back
        // waiting for a delayed ACK. The write deadline covers worker-side
        // blocking writes (the flag lives on the shared file description).
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(SERVER_IO_TIMEOUT));
        let token = self.next_token;
        self.next_token += 1;
        self.shared
            .registry
            .counter("server.connections_total")
            .inc();
        self.shared
            .registry
            .gauge("server.poller.open_connections")
            .add(1);
        self.poller.register(&stream, token);
        self.conns.insert(
            token,
            Conn {
                stream,
                buf: Vec::new(),
                served: 0,
                busy: false,
                peer_closed: false,
                last_activity: Instant::now(),
            },
        );
        // The client usually writes its request before we finish
        // registering; read immediately instead of waiting for an event.
        self.read_conn(token);
    }

    fn handle_done(&mut self, done: Done) {
        let Some(conn) = self.conns.get_mut(&done.conn) else {
            return;
        };
        conn.busy = false;
        conn.last_activity = Instant::now();
        if !done.keep || conn.peer_closed || self.draining {
            self.close(done.conn);
            return;
        }
        conn.served += 1;
        // Pipelined bytes may already hold the next request.
        self.advance(done.conn);
        if let Some(conn) = self.conns.get(&done.conn) {
            if !conn.busy {
                self.poller.register(&conn.stream, done.conn);
            }
        }
    }

    /// Nonblocking read burst, then parse. EOF and read errors resolve the
    /// connection's fate afterwards, so a complete request followed by FIN
    /// in the same burst is still served.
    fn read_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.busy {
            return;
        }
        let mut chunk = [0u8; 8192];
        let mut got_bytes = false;
        let mut eof = false;
        let mut error: Option<std::io::Error> = None;
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    got_bytes = true;
                    if conn.buf.len() > MAX_BODY_BYTES + MAX_HEADER_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        if got_bytes {
            conn.last_activity = Instant::now();
            self.advance(token);
        }
        if eof || error.is_some() {
            self.connection_ended(token, error);
        }
    }

    /// Parses as many complete requests as the buffer holds, shedding or
    /// dispatching each. Stops at the first dispatch (the `busy` flag
    /// serializes pipelined requests) or when bytes run out.
    fn advance(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy {
                return;
            }
            match try_parse(&mut conn.buf) {
                Parse::NeedMore => return,
                Parse::Bad(bad) => {
                    self.fail(token, bad);
                    return;
                }
                Parse::Ok(request) => {
                    if conn.served > 0 {
                        self.shared
                            .registry
                            .counter("server.requests_on_reused_conn")
                            .inc();
                    }
                    // Debug/health GETs bypass admission control: they are
                    // cheap, their volume is bounded by the connection
                    // count, and overload is exactly when `/stats` and
                    // `/metrics` must stay answerable.
                    let sheddable = request.method == "POST";
                    let queue_full = sheddable
                        && self.shared.queue.lock().expect("work queue").len()
                            >= self.shared.config.queue_depth;
                    if queue_full {
                        if !self.shed(token, &request) {
                            return;
                        }
                        // Connection kept: the buffer may hold another
                        // pipelined request; keep parsing.
                    } else {
                        self.dispatch(token, request);
                        return;
                    }
                }
            }
        }
    }

    /// Request-level admission control: `429` + `Retry-After`, written by
    /// the poller under a short deadline. Unlike the old connection-level
    /// shed this happens *after* the request is fully read, so the
    /// connection can stay open when the client asked for keep-alive — a
    /// retrying client rides the same socket instead of reconnecting.
    /// Returns whether the connection survived.
    fn shed(&mut self, token: u64, request: &Request) -> bool {
        let registry = &self.shared.registry;
        registry.counter("server.shed_total").inc();
        registry.counter("llm.status_429").inc();
        self.shared.windowed.counter("server.shed_total").inc();
        let keep = request.keep_alive && !self.draining;
        let body = r#"{"error":"server overloaded, retry later"}"#;
        let raw = render_response(429, body, JSON, keep, Some(self.shared.config.retry_after));
        let conn = self.conns.get_mut(&token).expect("shed target");
        let ok = write_now(&conn.stream, raw.as_bytes());
        if keep && ok {
            conn.served += 1;
            conn.last_activity = Instant::now();
            true
        } else {
            self.close(token);
            false
        }
    }

    /// Responds to an unreadable request and closes the connection,
    /// mirroring the old blocking runtime's counters and bodies.
    fn fail(&mut self, token: u64, bad: BadRequest) {
        let registry = &self.shared.registry;
        registry.counter("server.bad_requests_total").inc();
        registry
            .counter(&format!("llm.status_{}", bad.status))
            .inc();
        let body = Json::object(vec![("error", Json::from(bad.message.as_str()))]).to_compact();
        let raw = render_response(bad.status, &body, JSON, false, None);
        if let Some(conn) = self.conns.get(&token) {
            // Best-effort: the peer may already be gone.
            write_now(&conn.stream, raw.as_bytes());
        }
        self.close(token);
    }

    fn dispatch(&mut self, token: u64, request: Request) {
        let conn = self.conns.get_mut(&token).expect("dispatch target");
        let Ok(clone) = conn.stream.try_clone() else {
            self.close(token);
            return;
        };
        conn.busy = true;
        // Deregister while a worker owns the socket: a level-triggered
        // kernel would otherwise report the body bytes of the *next*
        // pipelined request forever.
        self.poller.deregister(&conn.stream);
        let parse = classify(&request, self.shared.backend.model());
        let work = Work {
            conn: token,
            poller: self.index,
            stream: clone,
            request,
            parse,
            received: Instant::now(),
        };
        self.shared
            .queue
            .lock()
            .expect("work queue")
            .push_back(work);
        self.shared.ready.notify_one();
    }

    /// The peer hung up (or the socket failed) with no response owed.
    fn connection_ended(&mut self, token: u64, error: Option<std::io::Error>) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.busy {
            // Half-close while a response is in flight: the worker can
            // still deliver it. Close right after.
            conn.peer_closed = true;
            return;
        }
        if conn.served > 0 {
            // A kept-alive connection going quiet is the normal end of its
            // life, not an error.
            self.close(token);
            return;
        }
        let message = match error {
            Some(e) => format!("request read failed: {e}"),
            None if conn.buf.is_empty() => "empty request".to_string(),
            None => "request read failed: connection closed mid-request".to_string(),
        };
        self.fail(token, BadRequest::new(400, message));
    }

    /// Applies the idle deadlines the blocking runtime enforced with
    /// socket timeouts: a kept-alive connection sitting quiet *between*
    /// requests past [`SERVER_KEEPALIVE_IDLE`] closes silently; a
    /// connection with a request in progress — buffered-but-incomplete
    /// bytes, or a fresh connection that never produced one — gets the full
    /// [`SERVER_IO_TIMEOUT`] and then the best-effort `400` a stalled
    /// blocking read used to produce. The buffer check matters: a slow
    /// writer mid-request on a kept-alive connection is not "idle", and
    /// closing it silently would eat a request the client already started.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let expired: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy)
            .filter_map(|(&t, c)| {
                let idle = now.duration_since(c.last_activity);
                if c.buf.is_empty() && c.served > 0 {
                    (idle > SERVER_KEEPALIVE_IDLE).then_some((t, false))
                } else {
                    (idle > SERVER_IO_TIMEOUT).then_some((t, true))
                }
            })
            .collect();
        for (token, timed_out) in expired {
            if timed_out {
                self.fail(
                    token,
                    BadRequest::new(400, "request read failed: read timed out"),
                );
            } else {
                self.close(token);
            }
        }
    }

    /// Drain policy: serve what has arrived, then leave. Connections that
    /// finished their life (served, empty buffer) close immediately; busy
    /// ones close right after their in-flight response; anything still
    /// assembling a request gets [`DRAIN_GRACE`], then closes.
    fn drain_tick(&mut self) {
        let grace_over = self
            .drain_deadline
            .map(|d| Instant::now() >= d)
            .unwrap_or(true);
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && (grace_over || (c.served > 0 && c.buf.is_empty())))
            .map(|(&t, _)| t)
            .collect();
        for token in doomed {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(&conn.stream);
            self.shared
                .registry
                .gauge("server.poller.open_connections")
                .add(-1);
        }
    }
}

/// Classifies a request for the worker side: `Some` for completion POSTs
/// (with the JSON pre-parsed into the batching key), `None` for everything
/// `route` handles.
fn classify(request: &Request, model: &str) -> Option<CompletionParse> {
    if request.method != "POST" || request.path != "/v1/completions" {
        return None;
    }
    Some(match Json::parse(&request.body) {
        Err(e) => CompletionParse::BadJson(e.to_string()),
        Ok(json) => {
            let requested = json
                .get("model")
                .and_then(Json::as_str)
                .unwrap_or(model)
                .to_string();
            if requested != model {
                CompletionParse::BadModel(requested)
            } else {
                let prompt = json
                    .get("prompt")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                CompletionParse::Call(CompletionCall {
                    prompt,
                    opts: parse_gen_options(&json),
                })
            }
        }
    })
}

/// Reads the optional `options` object off a completion request. Absent or
/// partially-specified options fall back to defaults field-by-field, like
/// the client-side [`GenOptions::default`] they mirror.
fn parse_gen_options(request: &Json) -> GenOptions {
    let mut opts = GenOptions::default();
    if let Some(o) = request.get("options") {
        if let Some(a) = o.get("attempt").and_then(Json::as_f64) {
            opts.attempt = a as u64;
        }
        if let Some(s) = o.get("error_scale").and_then(Json::as_f64) {
            opts.error_scale = s;
        }
        if let Some(s) = o.get("structural_scale").and_then(Json::as_f64) {
            opts.structural_scale = s;
        }
    }
    opts
}

/// Result of one incremental parse attempt.
enum Parse {
    /// The buffer does not hold a complete request yet.
    NeedMore,
    Bad(BadRequest),
    Ok(Request),
}

/// Finds the end of the header block: byte offsets (one past the blank
/// line, start of body). Tolerates bare-LF line endings like the
/// `read_line`-based parser did.
fn find_header_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        if buf.len() > i + 1 && buf[i + 1] == b'\n' {
            return Some((i + 1, i + 2));
        }
        if buf.len() > i + 2 && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
            return Some((i + 1, i + 3));
        }
    }
    None
}

/// Incrementally parses one HTTP/1.1 request off the front of `buf`,
/// consuming its bytes only when complete. Header *names* match
/// case-insensitively while values keep their original bytes
/// ([`header_value`]), `Connection` is matched token-wise, and duplicate
/// `Content-Length` headers that disagree are rejected outright — the
/// request-smuggling-safe reading.
fn try_parse(buf: &mut Vec<u8>) -> Parse {
    let Some((head_end, body_start)) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad(BadRequest::new(
                400,
                format!("header block exceeds the {MAX_HEADER_BYTES}-byte limit"),
            ));
        }
        return Parse::NeedMore;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.split('\n').map(|l| l.trim_end());
    let request_line = lines.next().unwrap_or("");
    if request_line.is_empty() {
        return Parse::Bad(BadRequest::ended("empty request"));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    let mut content_length: Option<usize> = None;
    let mut keep_alive = false;
    let mut trace_id: Option<String> = None;
    let mut parent_span: Option<String> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some(v) = header_value(line, "content-length") {
            // A Content-Length we cannot parse means we cannot know where
            // the body ends: reject, never silently assume an empty body.
            let Ok(parsed) = v.parse::<usize>() else {
                return Parse::Bad(BadRequest::new(
                    400,
                    format!("malformed content-length: `{v}`"),
                ));
            };
            if content_length.is_some_and(|prev| prev != parsed) {
                return Parse::Bad(BadRequest::new(
                    400,
                    "conflicting duplicate content-length headers",
                ));
            }
            content_length = Some(parsed);
        }
        if let Some(v) = header_value(line, "connection") {
            keep_alive = connection_keeps_alive(v);
        }
        if let Some(v) = header_value(line, "x-nl2vis-trace-id") {
            trace_id = Some(v.to_string());
        }
        if let Some(v) = header_value(line, "x-nl2vis-parent-span") {
            parent_span = Some(v.to_string());
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        // Reject from the untrusted header alone — allocating
        // `content_length` bytes first would let one request OOM the
        // server.
        return Parse::Bad(BadRequest::new(
            413,
            format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        ));
    }
    if buf.len() < body_start + content_length {
        return Parse::NeedMore;
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).to_string();
    buf.drain(..body_start + content_length);
    Parse::Ok(Request {
        method,
        path,
        body,
        keep_alive,
        trace: obs::TraceContext::from_headers(trace_id.as_deref(), parent_span.as_deref()),
    })
}

/// Poller-side response write: flips the (registered, nonblocking) socket
/// to blocking under a short deadline, writes, flips back. Only sheds and
/// error responses go through here; real responses are written by workers.
fn write_now(stream: &TcpStream, raw: &[u8]) -> bool {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(POLLER_WRITE_TIMEOUT));
    let ok = {
        let mut s = stream;
        s.write_all(raw).and_then(|_| s.flush()).is_ok()
    };
    let _ = stream.set_write_timeout(Some(SERVER_IO_TIMEOUT));
    let _ = stream.set_nonblocking(true);
    ok
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared, pollers: &[Arc<PollerShared>]) {
    while let Some(batch) = next_batch(shared) {
        let registry = &shared.registry;
        let active = registry.gauge("server.active_connections");
        let now_active = active.add(1);
        registry.gauge("server.concurrent_peak").set_max(now_active);
        if batch.len() == 1 {
            let work = batch.into_iter().next().expect("singleton batch");
            serve_single(shared, pollers, work);
        } else {
            serve_batch(shared, pollers, batch);
        }
        active.add(-1);
    }
}

/// Blocks for the next unit of work: the oldest queued request plus — when
/// it is a batchable completion — every queued completion sharing its
/// options key, up to `batch_max`. With a nonzero `batch_window` the
/// worker lingers that long for more matches before serving.
fn next_batch(shared: &Shared) -> Option<Vec<Work>> {
    let mut queue = shared.queue.lock().expect("work queue");
    let first = loop {
        if let Some(work) = queue.pop_front() {
            break work;
        }
        // Check draining only with an empty queue, so every dispatched
        // request is served before shutdown completes.
        if shared.draining.load(Ordering::Relaxed) {
            return None;
        }
        queue = shared.ready.wait(queue).expect("work queue");
    };
    let mut batch = vec![first];
    if shared.backend.sim().is_none() {
        // Batching amortizes SimLlm's prompt parse via complete_batch; a
        // composed service backend has no batch entry point (and a tier
        // router escalates per-request), so it serves singletons.
        return Some(batch);
    }
    let Some(key) = batch_key(&batch[0]) else {
        return Some(batch);
    };
    let max = shared.tuning.batch_max.max(1);
    collect_matching(&mut queue, &mut batch, key, max);
    if batch.len() < max && !shared.tuning.batch_window.is_zero() {
        let deadline = Instant::now() + shared.tuning.batch_window;
        while batch.len() < max && !shared.draining.load(Ordering::Relaxed) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (q, _) = shared
                .ready
                .wait_timeout(queue, deadline - now)
                .expect("work queue");
            queue = q;
            collect_matching(&mut queue, &mut batch, key, max);
            // This worker may have consumed a wakeup meant for an idle
            // peer; pass it along so non-matching work is not starved for
            // the length of the window.
            if !queue.is_empty() {
                shared.ready.notify_one();
            }
        }
    }
    Some(batch)
}

/// Moves every queued completion matching `key` into `batch` (preserving
/// arrival order of the rest), bounded by `max`.
fn collect_matching(
    queue: &mut VecDeque<Work>,
    batch: &mut Vec<Work>,
    key: (u64, u64, u64),
    max: usize,
) {
    let mut i = 0;
    while i < queue.len() && batch.len() < max {
        if batch_key(&queue[i]) == Some(key) {
            batch.push(queue.remove(i).expect("indexed element"));
        } else {
            i += 1;
        }
    }
}

/// Response written, connection handed back to its poller.
fn finish(pollers: &[Arc<PollerShared>], conn: u64, poller: usize, stream: TcpStream, keep: bool) {
    // Drop our socket clone first: after the poller processes the Done it
    // may close the connection, and a surviving duplicate fd would keep
    // the kernel registration (and the peer's connection) alive.
    drop(stream);
    let p = &pollers[poller];
    p.inbox
        .lock()
        .expect("poller inbox")
        .dones
        .push(Done { conn, keep });
    p.wake.wake();
}

/// Worker-side response write on the cloned socket: blocking with the
/// [`SERVER_IO_TIMEOUT`] write deadline, restored to nonblocking before
/// the poller takes the connection back.
fn blocking_respond(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    content_type: &'static str,
    keep_alive: bool,
) -> bool {
    let _ = stream.set_nonblocking(false);
    let ok = respond(stream, status, body, content_type, keep_alive).is_ok();
    let _ = stream.set_nonblocking(true);
    ok
}

/// The shared per-request accounting: status counters, completion
/// latency (measured from parse completion, so queue wait counts), and
/// the access log line.
fn record_request(
    shared: &Shared,
    request: &Request,
    status: u16,
    body_len: usize,
    received: Instant,
    trace: u64,
    is_completion: bool,
) {
    let registry = &shared.registry;
    registry.counter("server.http_requests_total").inc();
    registry.counter(&format!("llm.status_{status}")).inc();
    let elapsed = received.elapsed();
    if is_completion {
        registry.counter("llm.requests_total").inc();
        registry
            .histogram("llm.request_latency_us")
            .record_duration_traced(elapsed, trace);
        shared.windowed.counter("llm.requests_total").inc();
        shared
            .windowed
            .histogram("llm.request_latency_us")
            .record_duration(elapsed);
    }
    obs::log("llm", "access", || {
        vec![
            ("method".to_string(), request.method.clone()),
            ("path".to_string(), request.path.clone()),
            ("status".to_string(), status.to_string()),
            ("bytes".to_string(), body_len.to_string()),
            ("duration_us".to_string(), elapsed.as_micros().to_string()),
        ]
    });
}

/// Serves one request — the path every non-completion and every unbatched
/// completion takes, mirroring the old blocking runtime request-for-
/// request (spans, fault handling, counters, response).
fn serve_single(shared: &Shared, pollers: &[Arc<PollerShared>], work: Work) {
    let Work {
        conn,
        poller,
        mut stream,
        request,
        parse,
        received,
    } = work;
    let registry = &shared.registry;
    let is_completion = parse.is_some();
    // Join the caller's trace when it propagated one; otherwise only
    // completions get a span of their own (tracing every /metrics poll
    // would flood the flight recorder with noise).
    let span = match request.trace {
        Some(ctx) => Some(obs::Span::enter_with("server.handle", ctx)),
        None if is_completion => Some(obs::Span::enter("server.handle")),
        None => None,
    };
    if let Some(span) = &span {
        span.annotate("path", &request.path);
    }
    let trace = span.as_ref().map(|s| s.trace()).unwrap_or(0);
    let fault = if is_completion {
        shared.faults.next()
    } else {
        Fault::None
    };
    if fault != Fault::None {
        registry.counter("server.faults_injected_total").inc();
        registry
            .counter(&format!("server.fault.{}", fault.label()))
            .inc();
        if let Some(span) = &span {
            span.annotate("fault", fault.label());
        }
    }
    if let Fault::Stall(pause) = fault {
        std::thread::sleep(pause);
    }
    if fault == Fault::Drop {
        // Close without a response: the client sees a clean EOF (and a
        // pooled client exercises its stale-retry path).
        drop(span);
        finish(pollers, conn, poller, stream, false);
        return;
    }

    let (status, response_body, content_type) = if fault == Fault::Http500 {
        (
            500,
            Json::object(vec![("error", Json::from("injected server error"))]).to_compact(),
            JSON,
        )
    } else {
        match &parse {
            Some(CompletionParse::Call(call)) => {
                registry.counter("server.batch.batches_total").inc();
                registry.counter("server.batch.requests_total").inc();
                registry.counter("server.batch.invocations_total").inc();
                registry.histogram("server.batch.size").record(1);
                match &shared.backend {
                    Backend::Sim(llm) => {
                        let completion = llm.complete_with(&call.prompt, &call.opts);
                        (
                            200,
                            completion_json(shared.backend.model(), &completion),
                            JSON,
                        )
                    }
                    Backend::Service(svc) => match svc.call(&call.prompt, &call.opts) {
                        Ok(completion) => (
                            200,
                            completion_json(shared.backend.model(), &completion),
                            JSON,
                        ),
                        Err(e) => {
                            // The stack exhausted its tiers/retries: surface
                            // a gateway error, never fabricated model text.
                            registry.counter("server.backend_errors_total").inc();
                            let body = Json::object(vec![(
                                "error",
                                Json::from(format!("backend failed: {e}").as_str()),
                            )]);
                            (502, body.to_compact(), JSON)
                        }
                    },
                }
            }
            Some(CompletionParse::BadModel(requested)) => {
                let err = Json::object(vec![(
                    "error",
                    Json::from(format!("model `{requested}` not hosted here").as_str()),
                )]);
                (400, err.to_compact(), JSON)
            }
            Some(CompletionParse::BadJson(message)) => (
                400,
                Json::object(vec![("error", Json::from(message.as_str()))]).to_compact(),
                JSON,
            ),
            None => route(
                &request.method,
                &request.path,
                &request.body,
                shared.backend.model(),
                registry,
                &shared.windowed,
            ),
        }
    };

    record_request(
        shared,
        &request,
        status,
        response_body.len(),
        received,
        trace,
        is_completion,
    );
    if let Some(span) = &span {
        span.annotate("status", &status.to_string());
    }
    // Close the handling span before the response goes out: by the time
    // the client reads the body, its side of the trace is consistent.
    drop(span);

    let keep = request.keep_alive && !shared.draining.load(Ordering::Relaxed);
    let ok = blocking_respond(&mut stream, status, &response_body, content_type, keep);
    finish(pollers, conn, poller, stream, keep && ok);
}

/// Serves a coalesced batch: one `server.batch` span, one fault draw per
/// member (in arrival order, preserving scripted-injector semantics), one
/// stall (the max drawn — a shared invocation stalls once), and one
/// deduplicated [`SimLlm::complete_batch`] invocation. Every member still
/// gets its own `server.handle` span (linked to the batch by annotation
/// and, for untraced requests, by parentage), counters, log line, and
/// byte-identical response.
fn serve_batch(shared: &Shared, pollers: &[Arc<PollerShared>], works: Vec<Work>) {
    let registry = &shared.registry;
    let n = works.len();
    let llm = shared
        .backend
        .sim()
        .expect("batches form only for the Sim backend");
    let batch_span = obs::Span::enter_root("server.batch");
    batch_span.annotate("size", &n.to_string());
    batch_span.annotate("model", llm.profile.name);
    let batch_trace = batch_span.trace().to_string();
    registry.counter("server.batch.batches_total").inc();
    registry
        .counter("server.batch.requests_total")
        .add(n as u64);
    registry.histogram("server.batch.size").record(n as u64);

    let faults: Vec<Fault> = works.iter().map(|_| shared.faults.next()).collect();
    for fault in &faults {
        if *fault != Fault::None {
            registry.counter("server.faults_injected_total").inc();
            registry
                .counter(&format!("server.fault.{}", fault.label()))
                .inc();
        }
    }
    let stall = faults
        .iter()
        .filter_map(|f| match f {
            Fault::Stall(pause) => Some(*pause),
            _ => None,
        })
        .max();
    if let Some(pause) = stall {
        batch_span.annotate("stall_ms", &pause.as_millis().to_string());
        std::thread::sleep(pause);
    }

    let live: Vec<usize> = (0..n)
        .filter(|&i| !matches!(faults[i], Fault::Drop | Fault::Http500))
        .collect();
    let completions: HashMap<usize, String> = if live.is_empty() {
        HashMap::new()
    } else {
        let opts = call_of(&works[live[0]]).opts.clone();
        let prompts: Vec<&str> = live
            .iter()
            .map(|&i| call_of(&works[i]).prompt.as_str())
            .collect();
        let unique: HashSet<&str> = prompts.iter().copied().collect();
        registry
            .counter("server.batch.invocations_total")
            .add(unique.len() as u64);
        registry
            .counter("server.batch.dedup_hits_total")
            .add((prompts.len() - unique.len()) as u64);
        let outputs = llm.complete_batch(&prompts, &opts);
        live.iter().copied().zip(outputs).collect()
    };

    for (i, mut work) in works.into_iter().enumerate() {
        let fault = faults[i];
        // Traced requests join their caller's trace; untraced ones nest
        // under the batch span — either way the annotation names the
        // shared batch.
        let span = match work.request.trace {
            Some(ctx) => obs::Span::enter_with("server.handle", ctx),
            None => obs::Span::enter("server.handle"),
        };
        span.annotate("path", &work.request.path);
        span.annotate("batch", &batch_trace);
        if fault != Fault::None {
            span.annotate("fault", fault.label());
        }
        let trace = span.trace();
        if fault == Fault::Drop {
            drop(span);
            finish(pollers, work.conn, work.poller, work.stream, false);
            continue;
        }
        let (status, response_body) = if fault == Fault::Http500 {
            (
                500,
                Json::object(vec![("error", Json::from("injected server error"))]).to_compact(),
            )
        } else {
            (200, completion_json(llm.profile.name, &completions[&i]))
        };
        record_request(
            shared,
            &work.request,
            status,
            response_body.len(),
            work.received,
            trace,
            true,
        );
        span.annotate("status", &status.to_string());
        drop(span);
        let keep = work.request.keep_alive && !shared.draining.load(Ordering::Relaxed);
        let ok = blocking_respond(&mut work.stream, status, &response_body, JSON, keep);
        finish(pollers, work.conn, work.poller, work.stream, keep && ok);
    }
}
