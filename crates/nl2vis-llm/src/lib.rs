//! The (simulated) large-language-model layer.
//!
//! The paper's subject models — `text-davinci-002/003`,
//! `gpt-3.5-turbo-16k`, `gpt-4` — are replaced by a *mechanistic simulated
//! LLM* (see DESIGN.md §1 for the substitution argument): the phenomena the
//! paper studies (prompt-format sensitivity, in-context-learning scaling,
//! the in-domain/cross-domain gap, the failure taxonomy) all arise from how
//! much task-relevant structure a model can recover from its prompt, and
//! this crate implements those mechanisms literally:
//!
//! - [`recover`]: per-format prompt parsers with format-dependent fidelity;
//! - [`prompt_parse`]: decomposition of the full ICL prompt;
//! - [`link`]: lexicon-based schema linking with gated synonym knowledge;
//! - [`understand`]: question-intent parsing and grounding;
//! - [`profile`]: capability profiles for the four model families;
//! - [`sim`]: the generation engine with a failure-taxonomy-shaped seeded
//!   error model;
//! - [`http`] / [`client`]: an OpenAI-compatible HTTP transport (client and
//!   local server) behind a uniform [`client::LlmClient`] trait, with
//!   connect/read/write deadlines on both sides; the server runs on a
//!   bounded worker pool with `429` load shedding and graceful drain;
//! - [`resilient`]: a [`resilient::RetryPolicy`] (bounded attempts, capped
//!   exponential backoff, deterministic jitter, server-directed
//!   `Retry-After`) distinguishing transient transport faults from
//!   semantic rejections — now a shim over the `nl2vis-service` layered
//!   stack, with [`client::ClientService`] / [`client::ServiceClient`]
//!   adapting between the trait and service worlds;
//! - [`fault`]: a deterministic [`fault::FaultInjector`] for the server —
//!   stalls, dropped connections and injected 500s, scripted or seeded —
//!   so the resilience layer is testable entirely offline.
//!
//! Transport failures travel as the typed
//! [`client::TransportError`] (the error arm of
//! [`client::CompletionOutcome`]) and are counted under
//! `llm.error.transport`; they must never be scored as model output.

pub mod client;
pub(crate) mod event;
pub mod fault;
pub mod followup;
pub mod http;
pub mod link;
pub mod poll;
pub mod profile;
pub mod prompt_parse;
pub mod recover;
pub mod resilient;
pub mod sim;
pub mod understand;

pub use client::{
    ClientService, CompletionOutcome, LlmClient, ServiceClient, TransportError, TransportErrorKind,
};
pub use fault::{Fault, FaultInjector};
pub use http::{ServerConfig, ServerTuning};
pub use profile::ModelProfile;
pub use resilient::{ResilientLlmClient, RetryPolicy};
pub use sim::{corrupt_query, extract_vql, GenOptions, SimLlm};
