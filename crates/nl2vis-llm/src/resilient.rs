//! Retry with bounded, deterministic backoff around the HTTP transport.
//!
//! Transient infrastructure faults (a refused connect, a dropped
//! connection, a tripped deadline, a 5xx) deserve another attempt;
//! semantic rejections (4xx: wrong model, malformed request) do not — the
//! server will say the same thing again. [`RetryPolicy`] encodes that
//! split plus a capped exponential backoff whose jitter comes from a
//! seeded [`Rng`], so a retried eval run replays its exact sleep schedule.
//! [`ResilientLlmClient`] wraps [`HttpLlmClient`] with the policy and
//! surfaces the final verdict as the typed [`CompletionOutcome`] —
//! transport failures stay attributable and never leak into scoreable
//! completion text.

use crate::client::{CompletionOutcome, LlmClient, TransportError};
use crate::http::{HttpError, HttpLlmClient};
use crate::sim::GenOptions;
use nl2vis_data::Rng;
use nl2vis_obs as obs;
use std::time::Duration;

/// Bounded retry with capped exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff (applied before jitter halving).
    pub max_backoff: Duration,
    /// Seed for the jitter stream; same seed, same sleep schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, typed error on failure).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// A policy with `max_attempts` attempts and default backoff shape.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// The backoff before retry number `retry` (0-based: the sleep after
    /// the first failure is `backoff(0)`). Exponential with a cap, jittered
    /// into `[cap/2, cap]` by the seeded stream — decorrelating concurrent
    /// clients without sacrificing replayability.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(20))
            .min(self.max_backoff);
        let half = exp / 2;
        if half.is_zero() {
            return exp;
        }
        let mut rng = Rng::new(self.jitter_seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9));
        half + Duration::from_nanos(rng.below(half.as_nanos().min(u128::from(u64::MAX)) as u64))
    }

    /// Whether a failure is worth retrying: connectivity loss, deadlines
    /// and 5xx are transient; 4xx and protocol violations are semantic and
    /// deterministic, so retrying them only burns the attempt budget.
    pub fn is_transient(error: &HttpError) -> bool {
        match error {
            HttpError::Timeout(_) | HttpError::Closed => true,
            HttpError::Status(code, _) => *code >= 500,
            HttpError::Protocol(_) => false,
            HttpError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
        }
    }
}

/// An [`HttpLlmClient`] wrapped in a [`RetryPolicy`].
///
/// Each retry is visible on the `llm.retries_total` counter; a request
/// that exhausts its attempts (or fails permanently) lands on
/// `llm.error.transport` and returns the typed [`TransportError`].
pub struct ResilientLlmClient {
    inner: HttpLlmClient,
    policy: RetryPolicy,
}

impl ResilientLlmClient {
    /// Wraps a client in a retry policy.
    pub fn new(inner: HttpLlmClient, policy: RetryPolicy) -> ResilientLlmClient {
        ResilientLlmClient { inner, policy }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Completes a prompt, retrying transient transport faults under the
    /// policy. Returns the typed outcome; never folds a failure into text.
    /// The whole attempt loop runs under one `llm.request` span, so a
    /// retried request shows up in the flight recorder as one span with
    /// its `llm.attempt` children rather than unrelated fragments.
    pub fn try_complete(&self, prompt: &str) -> Result<String, TransportError> {
        let span = obs::span!("llm.request");
        let attempts = self.policy.max_attempts.max(1);
        let mut last: Option<HttpError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                obs::count("llm.retries_total", 1);
                span.annotate("retry", &attempt.to_string());
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            match self.inner.complete_http(prompt) {
                Ok(text) => {
                    if attempt > 0 {
                        obs::count("llm.retry_success_total", 1);
                        span.annotate("retry_outcome", "recovered");
                    }
                    return Ok(text);
                }
                Err(e) if RetryPolicy::is_transient(&e) => last = Some(e),
                Err(e) => return Err(e.into_transport_error(attempt + 1)),
            }
        }
        span.annotate("retry_outcome", "exhausted");
        let final_error = last.expect("at least one attempt ran");
        Err(final_error.into_transport_error(attempts))
    }
}

impl LlmClient for ResilientLlmClient {
    /// Display-only surface; see [`HttpLlmClient::complete`] for the
    /// marker-string contract. Scoring paths use `try_complete_with`.
    fn complete(&self, prompt: &str) -> String {
        match self.try_complete(prompt) {
            Ok(text) => text,
            Err(e) => format!("[{e}]"),
        }
    }

    fn name(&self) -> &str {
        &self.inner.model
    }

    fn try_complete_with(&self, prompt: &str, _opts: &GenOptions) -> CompletionOutcome {
        self.try_complete(prompt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter_seed: 42,
        };
        // Jitter keeps each backoff in [exp/2, exp]; exp doubles then caps.
        let expected_exp = [10u64, 20, 40, 80, 80, 80];
        for (retry, exp_ms) in expected_exp.iter().enumerate() {
            let b = policy.backoff(retry as u32);
            let exp = Duration::from_millis(*exp_ms);
            assert!(b >= exp / 2, "retry {retry}: {b:?} < {:?}", exp / 2);
            assert!(b <= exp, "retry {retry}: {b:?} > {exp:?}");
        }
        // Same seed, same schedule; different seed, (almost surely) not.
        let again = policy;
        assert_eq!(policy.backoff(2), again.backoff(2));
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy
        };
        assert_ne!(policy.backoff(2), other.backoff(2));
    }

    #[test]
    fn giant_retry_index_does_not_overflow() {
        let policy = RetryPolicy::default();
        let b = policy.backoff(u32::MAX);
        assert!(b <= policy.max_backoff);
    }

    #[test]
    fn transience_classification() {
        use std::io::{Error, ErrorKind};
        assert!(RetryPolicy::is_transient(&HttpError::Timeout(
            "read".to_string()
        )));
        assert!(RetryPolicy::is_transient(&HttpError::Closed));
        assert!(RetryPolicy::is_transient(&HttpError::Status(
            500,
            String::new()
        )));
        assert!(RetryPolicy::is_transient(&HttpError::Status(
            503,
            String::new()
        )));
        assert!(RetryPolicy::is_transient(&HttpError::Io(Error::new(
            ErrorKind::ConnectionRefused,
            "refused"
        ))));
        // Semantic failures are deterministic: retrying cannot help.
        assert!(!RetryPolicy::is_transient(&HttpError::Status(
            400,
            String::new()
        )));
        assert!(!RetryPolicy::is_transient(&HttpError::Status(
            404,
            String::new()
        )));
        assert!(!RetryPolicy::is_transient(&HttpError::Protocol(
            "bad body".to_string()
        )));
    }

    #[test]
    fn refused_connection_exhausts_attempts_with_typed_error() {
        // Bind then drop a listener: the port refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 1,
        };
        let client = ResilientLlmClient::new(HttpLlmClient::new(addr, "gpt-4"), policy);
        let retries_before = obs::global().counter("llm.retries_total").get();
        let err = client.try_complete("Q: hello\nVQL:").unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(
            matches!(
                err.kind,
                crate::client::TransportErrorKind::Connect | crate::client::TransportErrorKind::Io
            ),
            "{err}"
        );
        assert!(obs::global().counter("llm.retries_total").get() >= retries_before + 2);
    }
}
