//! Back-compat shim: [`ResilientLlmClient`] as a pre-composed layered
//! stack.
//!
//! The retry machinery itself now lives in `nl2vis-service`
//! ([`RetryPolicy`], `RetryLayer`) and composes with any
//! [`CompletionService`]; this module keeps the pre-refactor construction
//! site — "wrap an [`HttpLlmClient`] in a policy" — compiling unchanged by
//! building the canonical `Trace(Metrics(Retry(http)))` stack internally.
//! Spans, counters and error attribution are byte-identical to the old
//! hand-rolled loop: one `llm.request` span per request,
//! `llm.retries_total` / `llm.retry_success_total` per retry, and exactly
//! one `llm.error.transport` on a request whose final outcome is a
//! transport failure.

use crate::client::{CompletionOutcome, LlmClient, TransportError};
use crate::http::HttpLlmClient;
use crate::sim::GenOptions;
use nl2vis_service::{
    CompletionService, Layer, Metrics, MetricsLayer, Retry, RetryLayer, Trace, TraceLayer,
};

pub use nl2vis_service::RetryPolicy;

/// An [`HttpLlmClient`] wrapped in the canonical resilience stack:
/// `Trace(Metrics(Retry(http)))`.
///
/// Each retry is visible on the `llm.retries_total` counter; a request
/// that exhausts its attempts (or fails permanently) lands on
/// `llm.error.transport` and returns the typed [`TransportError`]. A `429`
/// shed by the server's admission control is the one retryable 4xx, and a
/// `Retry-After` it advertises overrides the policy's own backoff.
pub struct ResilientLlmClient {
    stack: Trace<Metrics<Retry<HttpLlmClient>>>,
    policy: RetryPolicy,
}

impl ResilientLlmClient {
    /// Wraps a client in a retry policy.
    pub fn new(inner: HttpLlmClient, policy: RetryPolicy) -> ResilientLlmClient {
        let stack = TraceLayer::request()
            .layer(MetricsLayer::default().layer(RetryLayer::new(policy).layer(inner)));
        ResilientLlmClient { stack, policy }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Completes a prompt, retrying transient transport faults under the
    /// policy. Returns the typed outcome; never folds a failure into text.
    /// The whole attempt loop runs under one `llm.request` span, so a
    /// retried request shows up in the flight recorder as one span with
    /// its `llm.attempt` children rather than unrelated fragments.
    pub fn try_complete(&self, prompt: &str) -> Result<String, TransportError> {
        self.stack.call(prompt, &GenOptions::default())
    }
}

impl LlmClient for ResilientLlmClient {
    fn name(&self) -> &str {
        self.stack.model()
    }

    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        self.stack.call(prompt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TransportErrorKind;
    use crate::http::HttpError;
    use nl2vis_obs as obs;
    use nl2vis_service::stack_of;
    use std::time::Duration;

    #[test]
    fn transience_classification_via_transport_kinds() {
        // The split the old `is_transient(&HttpError)` encoded, now
        // expressed as HttpError → TransportErrorKind → retryable.
        use std::io::{Error, ErrorKind};
        let policy = RetryPolicy::default();
        let transient = [
            HttpError::Timeout("read".to_string()),
            HttpError::Closed,
            HttpError::Status(500, String::new()),
            HttpError::Status(503, String::new()),
            HttpError::Io(Error::new(ErrorKind::ConnectionRefused, "refused")),
            HttpError::Io(Error::new(ErrorKind::ConnectionReset, "reset")),
            HttpError::Overloaded {
                retry_after: None,
                body: String::new(),
            },
        ];
        for e in transient {
            assert!(policy.retryable(&e.transport_kind()), "{e}");
        }
        // Semantic failures are deterministic: retrying cannot help.
        let permanent = [
            HttpError::Status(400, String::new()),
            HttpError::Status(404, String::new()),
            HttpError::Protocol("bad body".to_string()),
        ];
        for e in permanent {
            assert!(!policy.retryable(&e.transport_kind()), "{e}");
        }
    }

    #[test]
    fn shim_composes_the_canonical_stack() {
        let addr = "127.0.0.1:1".parse().unwrap();
        let client =
            ResilientLlmClient::new(HttpLlmClient::new(addr, "gpt-4"), RetryPolicy::no_retry());
        assert_eq!(client.name(), "gpt-4");
        assert_eq!(
            stack_of(&client.stack),
            vec!["trace", "metrics", "retry", "http"]
        );
        assert_eq!(client.policy().max_attempts, 1);
    }

    #[test]
    fn refused_connection_exhausts_attempts_with_typed_error() {
        // Bind then drop a listener: the port refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            jitter_seed: 1,
        };
        let client = ResilientLlmClient::new(HttpLlmClient::new(addr, "gpt-4"), policy);
        let retries_before = obs::global().counter("llm.retries_total").get();
        let err = client.try_complete("Q: hello\nVQL:").unwrap_err();
        assert_eq!(err.attempts, 3);
        assert!(
            matches!(
                err.kind,
                TransportErrorKind::Connect | TransportErrorKind::Io
            ),
            "{err}"
        );
        assert!(obs::global().counter("llm.retries_total").get() >= retries_before + 2);
    }
}
