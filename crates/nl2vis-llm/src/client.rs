//! The model-client abstraction: everything downstream (evaluation harness,
//! repair strategies, user-study simulator) talks to an [`LlmClient`], so a
//! simulated model, an HTTP-fronted model, or a real remote endpoint are
//! interchangeable.
//!
//! Remote backends can fail for reasons the model is not responsible for —
//! a refused connection, a stalled socket, a 5xx from the serving layer.
//! Those failures must never be scored as model output (the paper's
//! Execution Accuracy and failure taxonomy both assume every scored
//! completion is something the model actually said), so the trait's one
//! required completion method is the *typed* path,
//! [`LlmClient::try_complete_with`], whose error arm is a
//! [`TransportError`]. The infallible `complete` / `complete_with` surface
//! is a pair of final wrappers over it for display-only callers: they fold
//! a transport failure into a `[transport error ...]` marker string that
//! cannot parse as VQL. Scoring code (the eval runner, the pipeline) uses
//! the typed path.
//!
//! The transport vocabulary ([`TransportError`], [`TransportErrorKind`],
//! [`CompletionOutcome`]) is defined in `nl2vis-service` — the bottom of
//! the layered completion stack — and re-exported here unchanged, so
//! pre-refactor imports keep compiling. [`ClientService`] and
//! [`ServiceClient`] adapt between the trait and the layered
//! [`CompletionService`] world in both directions.

use crate::sim::{GenOptions, SimLlm};
use nl2vis_service::CompletionService;

pub use nl2vis_service::{CompletionOutcome, TransportError, TransportErrorKind};

/// A text-completion model.
pub trait LlmClient {
    /// Model identifier.
    fn name(&self) -> &str;

    /// Completes a prompt with generation options, surfacing transport
    /// failures as a typed error instead of folding them into the
    /// completion text. This is the one required method; `complete` and
    /// `complete_with` are wrappers over it.
    ///
    /// Scoring paths (the eval runner, the pipeline) must call this, never
    /// `complete`, so infrastructure failures land in `error.transport`
    /// rather than the model-failure counts.
    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome;

    /// Infallible completion with generation options: a transport failure
    /// folds into a bracketed marker string that cannot parse as VQL. For
    /// display-only callers.
    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        match self.try_complete_with(prompt, opts) {
            Ok(text) => text,
            Err(e) => format!("[{e}]"),
        }
    }

    /// Infallible completion with default options; see
    /// [`LlmClient::complete_with`].
    fn complete(&self, prompt: &str) -> String {
        self.complete_with(prompt, &GenOptions::default())
    }
}

/// Boxed clients forward to their contents, so wrappers generic over
/// `C: LlmClient` (retry, caching) compose with `Box<dyn LlmClient>` too.
impl<T: LlmClient + ?Sized> LlmClient for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        (**self).try_complete_with(prompt, opts)
    }

    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        (**self).complete_with(prompt, opts)
    }

    fn complete(&self, prompt: &str) -> String {
        (**self).complete(prompt)
    }
}

impl LlmClient for SimLlm {
    fn name(&self) -> &str {
        self.profile.name
    }

    /// A local simulated model has no transport to fail.
    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        Ok(SimLlm::complete_with(self, prompt, opts))
    }

    fn complete_with(&self, prompt: &str, opts: &GenOptions) -> String {
        SimLlm::complete_with(self, prompt, opts)
    }

    fn complete(&self, prompt: &str) -> String {
        SimLlm::complete(self, prompt)
    }
}

/// The simulated model as a leaf [`CompletionService`] — the local
/// counterpart of the `HttpLlmClient` leaf.
impl CompletionService for SimLlm {
    fn model(&self) -> &str {
        self.profile.name
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        Ok(SimLlm::complete_with(self, prompt, opts))
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("sim");
    }
}

/// Adapts any [`LlmClient`] into a leaf [`CompletionService`], so clients
/// that predate the layered stack (or test doubles written against the
/// trait) compose under layers.
pub struct ClientService<C> {
    inner: C,
}

impl<C: LlmClient> ClientService<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> ClientService<C> {
        ClientService { inner }
    }

    /// The wrapped client.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: LlmClient> CompletionService for ClientService<C> {
    fn model(&self) -> &str {
        self.inner.name()
    }

    fn call(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        self.inner.try_complete_with(prompt, opts)
    }

    fn describe(&self, stack: &mut Vec<&'static str>) {
        stack.push("client");
    }
}

/// Adapts a composed [`CompletionService`] stack back into an
/// [`LlmClient`], so a layered stack drops into every call site that takes
/// the trait (the pipeline, the eval runner).
pub struct ServiceClient<S> {
    inner: S,
}

impl<S: CompletionService> ServiceClient<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> ServiceClient<S> {
        ServiceClient { inner }
    }

    /// The wrapped service stack.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CompletionService> LlmClient for ServiceClient<S> {
    fn name(&self) -> &str {
        self.inner.model()
    }

    fn try_complete_with(&self, prompt: &str, opts: &GenOptions) -> CompletionOutcome {
        self.inner.call(prompt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelProfile;
    use nl2vis_service::{service_fn, stack_of};

    #[test]
    fn sim_llm_implements_client() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let client: &dyn LlmClient = &llm;
        assert_eq!(client.name(), "gpt-4");
        let out = client.complete("not a prompt");
        assert!(!out.is_empty());
    }

    #[test]
    fn local_backends_never_fail_the_typed_path() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let client: &dyn LlmClient = &llm;
        let out = client
            .try_complete_with("not a prompt", &GenOptions::default())
            .expect("a local model has no transport");
        assert_eq!(out, client.complete("not a prompt"));
    }

    #[test]
    fn default_wrappers_fold_transport_failures_into_markers() {
        struct DeadLlm;
        impl LlmClient for DeadLlm {
            fn name(&self) -> &str {
                "dead"
            }
            fn try_complete_with(&self, _: &str, _: &GenOptions) -> CompletionOutcome {
                Err(TransportError::new(
                    TransportErrorKind::Connect,
                    1,
                    "refused",
                ))
            }
        }
        let out = DeadLlm.complete("Q: hi\nVQL:");
        assert!(out.starts_with("[transport error"), "{out}");
        assert!(out.contains("connect"), "{out}");
    }

    #[test]
    fn sim_llm_is_a_leaf_service() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let svc: &dyn CompletionService = &llm;
        assert_eq!(svc.model(), "gpt-4");
        assert!(svc.call("not a prompt", &GenOptions::default()).is_ok());
        assert_eq!(stack_of(&llm), vec!["sim"]);
    }

    #[test]
    fn adapters_roundtrip_between_trait_and_service() {
        let llm = SimLlm::new(ModelProfile::gpt_4(), 1);
        let expected = llm.complete("not a prompt");
        // Trait → service → trait again, behavior unchanged.
        let stack = ServiceClient::new(ClientService::new(llm));
        assert_eq!(stack.name(), "gpt-4");
        assert_eq!(stack.complete("not a prompt"), expected);
        assert_eq!(stack_of(stack.inner()), vec!["client"]);

        // A raw service slots into an LlmClient call site.
        let as_client = ServiceClient::new(service_fn("echo", |p, _| Ok(p.to_string())));
        assert_eq!(as_client.complete("BAR X"), "BAR X");
    }
}
